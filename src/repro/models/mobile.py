"""Lightweight CNN families: MobileNetV2, RegNetX, EfficientNet, MCUNet.

Each keeps the block structure that defines the family in the paper:

* **MobileNetV2** — inverted residual (expand → depthwise → project) with
  width multipliers 0.5 / 0.75 / 1.0 / 1.4;
* **RegNetX**     — uniform stages of grouped 3×3 bottlenecks;
* **EfficientNet** — MBConv with squeeze-and-excitation, compound width/depth
  scaling across B0–B4;
* **MCUNet**      — an extremely small depthwise net (the paper's 320 KB
  STM32 model, which shows the worst SysNoise robustness).
"""

from __future__ import annotations

import numpy as np

import repro.nn as nn
from repro.nn import Tensor
from repro.nn import functional as F

__all__ = ["InvertedResidual", "MBConvSE", "mobilenet_v2_lite", "regnet_lite",
           "efficientnet_lite", "mcunet_lite"]


def _make_divisible(v: float, divisor: int = 4) -> int:
    return max(divisor, int(v + divisor / 2) // divisor * divisor)


def _conv_bn(cin, cout, k, stride, rng, groups=1):
    return nn.Sequential(
        nn.Conv2d(cin, cout, k, stride=stride, padding=k // 2, groups=groups,
                  bias=False, rng=rng),
        nn.BatchNorm2d(cout))


class InvertedResidual(nn.Module):
    """MobileNetV2 block: pointwise expand, depthwise 3×3, pointwise project."""

    def __init__(self, cin: int, cout: int, stride: int, expand: int, rng):
        super().__init__()
        mid = cin * expand
        self.use_res = stride == 1 and cin == cout
        self.expand = _conv_bn(cin, mid, 1, 1, rng) if expand > 1 else nn.Identity()
        self.depthwise = _conv_bn(mid, mid, 3, stride, rng, groups=mid)
        self.project = _conv_bn(mid, cout, 1, 1, rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.expand(x)
        if not isinstance(self.expand, nn.Identity):
            out = out.relu()
        out = self.depthwise(out).relu()
        out = self.project(out)
        return out + x if self.use_res else out


class SqueezeExcite(nn.Module):
    """Channel attention: GAP → reduce → expand → sigmoid gate."""

    def __init__(self, channels: int, reduction: int = 4, rng=None):
        super().__init__()
        mid = max(channels // reduction, 2)
        self.fc1 = nn.Linear(channels, mid, rng=rng)
        self.fc2 = nn.Linear(mid, channels, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        s = F.global_avg_pool2d(x)          # (N, C)
        s = self.fc2(self.fc1(s).relu()).sigmoid()
        return x * s.reshape(s.shape[0], s.shape[1], 1, 1)


class MBConvSE(nn.Module):
    """EfficientNet block: inverted residual + squeeze-and-excitation."""

    def __init__(self, cin: int, cout: int, stride: int, expand: int, rng):
        super().__init__()
        mid = cin * expand
        self.use_res = stride == 1 and cin == cout
        self.expand = _conv_bn(cin, mid, 1, 1, rng) if expand > 1 else nn.Identity()
        self.depthwise = _conv_bn(mid, mid, 3, stride, rng, groups=mid)
        self.se = SqueezeExcite(mid, rng=rng)
        self.project = _conv_bn(mid, cout, 1, 1, rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.expand(x)
        if not isinstance(self.expand, nn.Identity):
            out = out.relu()
        out = self.depthwise(out).relu()
        out = self.se(out)
        out = self.project(out)
        return out + x if self.use_res else out


class _MobileStyleNet(nn.Module):
    """Shared skeleton: stem conv, block stages, GAP head."""

    def __init__(self, block, stage_cfg, stem_width: int, num_classes: int,
                 seed: int, expand: int = 4):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = _conv_bn(3, stem_width, 3, 2, rng)
        blocks = []
        cin = stem_width
        for width, n_blocks, stride in stage_cfg:
            for b in range(n_blocks):
                blocks.append(block(cin, width, stride if b == 0 else 1,
                                    expand, rng))
                cin = width
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Linear(cin, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x).relu()
        out = self.blocks(out)
        return self.head(F.global_avg_pool2d(out))


def mobilenet_v2_lite(width_mult: float = 1.0, num_classes: int = 10,
                      seed: int = 0) -> _MobileStyleNet:
    """MobileNetV2 with the paper's width multipliers (0.5/0.75/1.0/1.4)."""
    base = [(8, 1, 1), (12, 2, 2), (16, 2, 2)]
    cfg = [(_make_divisible(w * width_mult), n, s) for w, n, s in base]
    stem = _make_divisible(8 * width_mult)
    return _MobileStyleNet(InvertedResidual, cfg, stem, num_classes, seed,
                           expand=3)


class _RegNetBlock(nn.Module):
    """RegNetX bottleneck: 1×1 → grouped 3×3 → 1×1 with shortcut."""

    def __init__(self, cin: int, cout: int, stride: int, groups: int, rng):
        super().__init__()
        self.conv1 = _conv_bn(cin, cout, 1, 1, rng)
        g = max(1, min(groups, cout))
        while cout % g:
            g -= 1
        self.conv2 = _conv_bn(cout, cout, 3, stride, rng, groups=g)
        self.conv3 = _conv_bn(cout, cout, 1, 1, rng)
        self.short = (nn.Identity() if stride == 1 and cin == cout
                      else _conv_bn(cin, cout, 1, stride, rng))

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(x).relu()
        out = self.conv2(out).relu()
        out = self.conv3(out)
        return (out + self.short(x)).relu()


class _RegNet(nn.Module):
    def __init__(self, stage_cfg, num_classes: int, seed: int, groups: int = 4):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = _conv_bn(3, stage_cfg[0][0], 3, 2, rng)
        blocks = []
        cin = stage_cfg[0][0]
        for width, n_blocks in stage_cfg:
            for b in range(n_blocks):
                stride = 2 if b == 0 and width != cin else 1
                blocks.append(_RegNetBlock(cin, width, stride, groups, rng))
                cin = width
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Linear(cin, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x).relu()
        out = self.blocks(out)
        return self.head(F.global_avg_pool2d(out))


_REGNET_CONFIGS = {
    "regnetx-400m": [(8, 1), (16, 1)],
    "regnetx-800m": [(8, 1), (16, 2)],
    "regnetx-1.6g": [(12, 2), (24, 2)],
    "regnetx-3.2g": [(16, 2), (32, 3)],
}


def regnet_lite(name: str, num_classes: int = 10, seed: int = 0) -> _RegNet:
    if name not in _REGNET_CONFIGS:
        raise ValueError(f"unknown regnet variant {name!r}")
    return _RegNet(_REGNET_CONFIGS[name], num_classes, seed)


_EFFNET_CONFIGS = {
    # compound scaling: (width multiplier, depth multiplier)
    "efficientnet-b0": (1.0, 1.0),
    "efficientnet-b1": (1.1, 1.1),
    "efficientnet-b2": (1.2, 1.2),
    "efficientnet-b3": (1.4, 1.4),
    "efficientnet-b4": (1.6, 1.8),
}


def efficientnet_lite(name: str, num_classes: int = 10, seed: int = 0) -> _MobileStyleNet:
    if name not in _EFFNET_CONFIGS:
        raise ValueError(f"unknown efficientnet variant {name!r}")
    wm, dm = _EFFNET_CONFIGS[name]
    base = [(8, 1, 1), (12, 2, 2), (20, 2, 2)]
    cfg = [(_make_divisible(w * wm), max(1, round(n * dm)), s)
           for w, n, s in base]
    return _MobileStyleNet(MBConvSE, cfg, _make_divisible(8 * wm),
                           num_classes, seed, expand=3)


def mcunet_lite(num_classes: int = 10, seed: int = 0) -> _MobileStyleNet:
    """The 320 KB-class microcontroller model: minimal width everywhere."""
    cfg = [(4, 1, 1), (8, 1, 2), (8, 1, 2)]
    return _MobileStyleNet(InvertedResidual, cfg, 4, num_classes, seed, expand=2)
