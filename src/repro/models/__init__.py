"""Tiny faithful model-zoo families matching the paper's Table 2 rows."""

from .mobile import (MBConvSE, InvertedResidual, efficientnet_lite,
                     mcunet_lite, mobilenet_v2_lite, regnet_lite)
from .resnet import BasicBlock, Bottleneck, ResNet, resnet_lite
from .vit import (MultiHeadAttention, PatchEmbed, SwinTransformer,
                  TransformerBlock, VisionTransformer, swin_lite, vit_lite)
from .zoo import MODEL_ZOO, ModelSpec, create_model, family_of, model_names

__all__ = [
    "ResNet", "BasicBlock", "Bottleneck", "resnet_lite",
    "InvertedResidual", "MBConvSE", "mobilenet_v2_lite", "regnet_lite",
    "efficientnet_lite", "mcunet_lite",
    "VisionTransformer", "SwinTransformer", "PatchEmbed", "MultiHeadAttention",
    "TransformerBlock", "vit_lite", "swin_lite",
    "MODEL_ZOO", "ModelSpec", "create_model", "model_names", "family_of",
]
