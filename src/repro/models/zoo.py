"""Model zoo registry: every architecture row of the paper's Table 2.

``create_model(name)`` builds a fresh, seeded model; ``MODEL_ZOO`` lists the
26 names in the paper's row order, with family metadata used by the benchmark
(e.g. only ResNets expose a stride-2 max-pool, so only they get a ceil-mode
column).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mobile import (efficientnet_lite, mcunet_lite, mobilenet_v2_lite,
                     regnet_lite)
from .resnet import resnet_lite
from .vit import swin_lite, vit_lite

__all__ = ["ModelSpec", "MODEL_ZOO", "create_model", "model_names", "family_of"]


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry: paper row name, family tag, builder, capability flags."""

    name: str
    family: str
    has_maxpool: bool        # ceil-mode noise applies only if True


def _entry(name: str, family: str, has_maxpool: bool = False) -> ModelSpec:
    return ModelSpec(name, family, has_maxpool)


#: Paper Table 2 rows, in order.
MODEL_ZOO: list[ModelSpec] = [
    _entry("mcunet-293kb", "mcunet"),
    _entry("resnet18x0.25", "resnet", True),
    _entry("resnet18x0.5", "resnet", True),
    _entry("resnet-18", "resnet", True),
    _entry("resnet-34", "resnet", True),
    _entry("resnet-50", "resnet", True),
    _entry("resnet-101", "resnet", True),
    _entry("mobilenetv2-0.5", "mobilenet"),
    _entry("mobilenetv2-0.75", "mobilenet"),
    _entry("mobilenetv2-1", "mobilenet"),
    _entry("mobilenetv2-1.4", "mobilenet"),
    _entry("regnetx-400m", "regnet"),
    _entry("regnetx-800m", "regnet"),
    _entry("regnetx-1.6g", "regnet"),
    _entry("regnetx-3.2g", "regnet"),
    _entry("efficientnet-b0", "efficientnet"),
    _entry("efficientnet-b1", "efficientnet"),
    _entry("efficientnet-b2", "efficientnet"),
    _entry("efficientnet-b3", "efficientnet"),
    _entry("efficientnet-b4", "efficientnet"),
    _entry("vit-tiny", "vit"),
    _entry("vit-small", "vit"),
    _entry("vit-base", "vit"),
    _entry("swin-tiny", "swin"),
    _entry("swin-small", "swin"),
    _entry("swin-base", "swin"),
]

_SPECS = {spec.name: spec for spec in MODEL_ZOO}

_MOBILENET_MULTS = {"mobilenetv2-0.5": 0.5, "mobilenetv2-0.75": 0.75,
                    "mobilenetv2-1": 1.0, "mobilenetv2-1.4": 1.4}


def model_names() -> list[str]:
    return [s.name for s in MODEL_ZOO]


def family_of(name: str) -> str:
    return _SPECS[name].family


def create_model(name: str, num_classes: int = 10, seed: int = 0):
    """Instantiate a zoo model by its paper row name."""
    if name not in _SPECS:
        raise ValueError(f"unknown model {name!r}; see model_names()")
    family = _SPECS[name].family
    if family == "resnet":
        return resnet_lite(name, num_classes, seed)
    if family == "mobilenet":
        return mobilenet_v2_lite(_MOBILENET_MULTS[name], num_classes, seed)
    if family == "regnet":
        return regnet_lite(name, num_classes, seed)
    if family == "efficientnet":
        return efficientnet_lite(name, num_classes, seed)
    if family == "mcunet":
        return mcunet_lite(num_classes, seed)
    if family == "vit":
        return vit_lite(name, num_classes, seed)
    if family == "swin":
        return swin_lite(name, num_classes, seed)
    raise AssertionError(f"unhandled family {family}")
