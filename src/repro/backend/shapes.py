"""Static shape inference over deployment graphs.

Vendor compilers infer every intermediate shape at import time — both to
plan memory and to reject graphs whose conventions disagree (the ceil-mode
shape mismatch is caught here in real toolchains).  ``infer_shapes`` walks a
validated graph symbolically: the batch dimension is symbolic (``None``),
all other extents are concrete integers.

Uses: ``summary_with_shapes`` for human-readable dumps, early detection of
exporter bugs (every executor-run shape must match the static inference —
tested across the zoo), and the FLOPs/memory model in
:mod:`repro.backend.profile`.
"""

from __future__ import annotations

import math

import numpy as np

from .ir import Graph, GraphError, Node

__all__ = ["infer_shapes", "summary_with_shapes", "ShapeError"]

#: A shape: leading batch dim is None (symbolic), the rest concrete.
Shape = tuple


class ShapeError(GraphError):
    """Raised when a node's operands cannot produce a consistent shape."""


def _pool_out(size: int, k: int, stride: int, pad: int, ceil_mode: bool) -> int:
    if ceil_mode:
        out = math.ceil((size + 2 * pad - k) / stride) + 1
        if (out - 1) * stride >= size + pad:
            out -= 1
        return out
    return (size + 2 * pad - k) // stride + 1


def _conv_out(size: int, k: int, stride: int, pad: int, dilation: int) -> int:
    eff = dilation * (k - 1) + 1
    return (size + 2 * pad - eff) // stride + 1


def _broadcast(a: Shape, b: Shape, node: Node) -> Shape:
    """NumPy broadcasting over symbolic-batch shapes."""
    out = []
    for da, db in zip(_pad(a, len(b)), _pad(b, len(a))):
        if da is None and db in (1, None) or db is None and da in (1, None):
            out.append(None)               # symbolic batch stays symbolic
        elif da == db or db == 1:
            out.append(da)
        elif da == 1:
            out.append(db)
        else:
            raise ShapeError(f"{node.op} node {node.name or node.output!r}: "
                             f"cannot broadcast {a} with {b}")
    return tuple(out)


def _pad(shape: Shape, n: int) -> Shape:
    return (1,) * (n - len(shape)) + tuple(shape)


def _reshape(shape: Shape, target: tuple, node: Node) -> Shape:
    out = []
    known = 1
    minus_one = None
    for i, s in enumerate(target):
        if s == 0:
            if i >= len(shape):
                raise ShapeError(f"reshape {node.name!r}: dim {i} copies a "
                                 f"nonexistent input dim of {shape}")
            out.append(shape[i])
        elif s == -1:
            if minus_one is not None:
                raise ShapeError(f"reshape {node.name!r}: two -1 dims")
            minus_one = i
            out.append(-1)
        else:
            out.append(int(s))
    concrete = [d for d in shape if d is not None]
    symbolic_in = any(d is None for d in shape)
    for d in out:
        if d not in (-1, None) and d is not None:
            known *= d if d else 1
    if minus_one is not None:
        # If the batch is symbolic and consumed by a copied dim, the -1 can
        # only be resolved from the concrete extents.
        total = int(np.prod(concrete)) if concrete else 1
        denom = 1
        for i, d in enumerate(out):
            if i != minus_one and d is not None:
                denom *= d
        if symbolic_in and None in out:
            # batch preserved via 0/None: -1 resolves among concrete dims
            out[minus_one] = total // max(denom, 1)
        elif symbolic_in:
            # batch folded into the -1 (e.g. window partitioning): symbolic
            out[minus_one] = None
        else:
            out[minus_one] = total // max(denom, 1)
    return tuple(out)


def infer_shapes(graph: Graph,
                 input_shape: Shape = (None, 3, 32, 32)) -> dict[str, Shape]:
    """Shape of every value in the graph, keyed by value name.

    ``input_shape`` uses ``None`` for the symbolic batch dimension.  Weight
    initializers contribute their concrete shapes.  Raises
    :class:`ShapeError` on any inconsistency.
    """
    graph.validate()
    shapes: dict[str, Shape] = {graph.input: tuple(input_shape)}
    shapes.update({k: tuple(v.shape) for k, v in graph.initializers.items()})
    for node in graph.nodes:
        shapes[node.output] = _infer_node(node, [shapes[v] for v in node.inputs])
    return shapes


def _infer_node(node: Node, ins: list[Shape]) -> Shape:
    op, a = node.op, node.attrs
    x = ins[0] if ins else ()
    if op in ("conv2d", "qconv2d"):
        n, _, h, w = x
        cout = ins[1][0]
        oh = _conv_out(h, ins[1][2], a["stride"], a["padding"], a["dilation"])
        ow = _conv_out(w, ins[1][3], a["stride"], a["padding"], a["dilation"])
        return (n, cout, oh, ow)
    if op in ("linear", "qlinear"):
        return tuple(x[:-1]) + (ins[1][0],)
    if op in ("batchnorm", "layernorm", "relu", "qrelu", "gelu", "sigmoid",
              "identity", "clip", "quantize_linear", "dequantize_linear",
              "softmax", "scale", "fused_elementwise"):
        return x
    if op in ("add", "mul"):
        return _broadcast(ins[0], ins[1], node)
    if op in ("maxpool", "avgpool"):
        n, c, h, w = x
        oh = _pool_out(h, a["kernel_size"], a["stride"], a["padding"],
                       a["ceil_mode"])
        ow = _pool_out(w, a["kernel_size"], a["stride"], a["padding"],
                       a["ceil_mode"])
        return (n, c, oh, ow)
    if op == "global_avgpool":
        return (x[0], x[1])
    if op == "upsample":
        n, c, h, w = x
        f = a["scale_factor"]
        return (n, c, int(round(h * f)), int(round(w * f)))
    if op == "flatten":
        rest = [d for d in x[1:]]
        if any(d is None for d in rest):
            return (x[0], None)
        return (x[0], int(np.prod(rest)) if rest else 1)
    if op == "reshape":
        return _reshape(x, a["shape"], node)
    if op == "transpose":
        perm = a["perm"]
        if len(perm) != len(x):
            raise ShapeError(f"transpose {node.name!r}: perm {perm} vs "
                             f"rank-{len(x)} input")
        return tuple(x[p] for p in perm)
    if op == "concat":
        axis = a["axis"] % len(x)
        total = 0
        for s in ins:
            if len(s) != len(x):
                raise ShapeError(f"concat {node.name!r}: rank mismatch")
            if s[axis] is None:
                total = None
                break
            total += s[axis]
        return tuple(total if i == axis else d for i, d in enumerate(x))
    if op == "slice":
        axis = a["axis"] % len(x)
        extent = a["stop"] - a["start"]
        return tuple(extent if i == axis else d for i, d in enumerate(x))
    if op == "mean":
        axis = a["axis"] % len(x)
        return tuple(d for i, d in enumerate(x) if i != axis)
    if op == "expand_like":
        return (ins[0][0],) + tuple(ins[1][1:])
    if op == "constant":
        return tuple(np.asarray(a["value"]).shape)
    if op == "matmul":
        b = ins[1]
        bk, bn = (b[-1], b[-2]) if a["transpose_b"] else (b[-2], b[-1])
        if x[-1] is not None and bk is not None and x[-1] != bk:
            raise ShapeError(f"matmul {node.name!r}: contraction mismatch "
                             f"{x} @ {b}")
        lead = _broadcast(x[:-2], b[:-2], node) if len(b) > 2 else x[:-2]
        return tuple(lead) + (x[-2], bn)
    raise ShapeError(f"no shape rule for op {op!r}")


def summary_with_shapes(graph: Graph,
                        input_shape: Shape = (None, 3, 32, 32)) -> str:
    """Graph dump with one inferred shape per line."""
    shapes = infer_shapes(graph, input_shape)

    def fmt(shape: Shape) -> str:
        return "(" + ", ".join("N" if d is None else str(d)
                               for d in shape) + ")"

    lines = [f"graph {graph.name}: {fmt(tuple(input_shape))} -> "
             f"{fmt(shapes[graph.output])}"]
    for node in graph.nodes:
        lines.append(f"  {node.output:24s} {node.op:16s} "
                     f"{fmt(shapes[node.output]):20s} # {node.name}")
    return "\n".join(lines)
