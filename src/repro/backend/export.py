"""Export trained ``repro.nn`` models to the backend :class:`~repro.backend.ir.Graph`.

The exporter plays the ONNX role in the paper's training→deployment pipeline:
the PyTorch-side model is lowered once to a portable graph, and the vendor
backends each execute that *same* graph with their own kernels.

Lowering uses a symbolic registry, exactly like ``torch.onnx``: each module
type registers a handler that emits the corresponding subgraph.  Handlers
exist for every primitive layer in :mod:`repro.nn` and for the composite
blocks of every family in the model zoo: the CNNs (ResNet basic/bottleneck,
MobileNetV2 inverted residual, EfficientNet MBConv+SE, RegNetX bottleneck)
and the transformers (ViT with CLS token and position embeddings, Swin with
shifted-window attention and patch merging — attention lowers to primitive
matmul/softmax/reshape ops, so backend kernel choices apply inside it).
Modules without a handler raise :class:`ExportError` with a clear message.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

import repro.nn as nn

from .ir import Graph, GraphBuilder

__all__ = ["ExportError", "export_module", "export_classifier",
           "register_handler", "supported_module_types"]


class ExportError(NotImplementedError):
    """Raised when a module type has no lowering handler."""


#: module type -> handler(builder, module, input_value, name) -> output_value
_HANDLERS: dict[type, Callable] = {}


def register_handler(module_type: type):
    """Decorator registering a lowering handler for ``module_type``."""
    def deco(fn):
        _HANDLERS[module_type] = fn
        return fn
    return deco


def supported_module_types() -> list[str]:
    return sorted(t.__name__ for t in _HANDLERS)


def _lower(b: GraphBuilder, module: nn.Module, x: str, name: str) -> str:
    """Dispatch a module to its handler (walking the MRO for subclasses)."""
    for klass in type(module).__mro__:
        handler = _HANDLERS.get(klass)
        if handler is not None:
            return handler(b, module, x, name)
    raise ExportError(
        f"no export handler for {type(module).__name__} (at {name!r}); "
        f"supported: {supported_module_types()}")


def export_module(module: nn.Module, name: str = "model") -> Graph:
    """Lower a module tree to a validated graph.

    The module must be a pure feed-forward image model (NCHW in).  Weights
    are *copied* into the graph's initializers, so later training does not
    mutate the exported artefact.
    """
    module.eval()
    b = GraphBuilder(name=name)
    out = _lower(b, module, b.graph.input, name)
    return b.finish(out)


def export_classifier(model: nn.Module, name: str = "classifier") -> Graph:
    """Alias of :func:`export_module` kept for API symmetry with the zoo."""
    return export_module(model, name)


# ---------------------------------------------------------------------------
# Weight helpers
# ---------------------------------------------------------------------------

def _init(b: GraphBuilder, name: str, value: np.ndarray) -> str:
    return b.add_initializer(name, np.asarray(value, dtype=np.float64).copy())


# ---------------------------------------------------------------------------
# Primitive layers
# ---------------------------------------------------------------------------

@register_handler(nn.Conv2d)
def _conv2d(b, mod: nn.Conv2d, x, name):
    ins = [x, _init(b, f"{name}.weight", mod.weight.data)]
    if mod.bias is not None:
        ins.append(_init(b, f"{name}.bias", mod.bias.data))
    return b.emit("conv2d", ins, name=name,
                  attrs=dict(stride=mod.stride, padding=mod.padding,
                             dilation=mod.dilation, groups=mod.groups))


@register_handler(nn.Linear)
def _linear(b, mod: nn.Linear, x, name):
    ins = [x, _init(b, f"{name}.weight", mod.weight.data)]
    if mod.bias is not None:
        ins.append(_init(b, f"{name}.bias", mod.bias.data))
    return b.emit("linear", ins, name=name)


@register_handler(nn.BatchNorm2d)
def _batchnorm(b, mod: nn.BatchNorm2d, x, name):
    ins = [x,
           _init(b, f"{name}.gamma", mod.weight.data),
           _init(b, f"{name}.beta", mod.bias.data),
           _init(b, f"{name}.mean", mod.running_mean),
           _init(b, f"{name}.var", mod.running_var)]
    return b.emit("batchnorm", ins, name=name, attrs=dict(eps=mod.eps))


@register_handler(nn.LayerNorm)
def _layernorm(b, mod: nn.LayerNorm, x, name):
    ins = [x,
           _init(b, f"{name}.gamma", mod.weight.data),
           _init(b, f"{name}.beta", mod.bias.data)]
    return b.emit("layernorm", ins, name=name, attrs=dict(eps=mod.eps))


@register_handler(nn.MaxPool2d)
def _maxpool(b, mod: nn.MaxPool2d, x, name):
    return b.emit("maxpool", [x], name=name,
                  attrs=dict(kernel_size=mod.kernel_size, stride=mod.stride,
                             padding=mod.padding, ceil_mode=mod.ceil_mode))


@register_handler(nn.AvgPool2d)
def _avgpool(b, mod: nn.AvgPool2d, x, name):
    return b.emit("avgpool", [x], name=name,
                  attrs=dict(kernel_size=mod.kernel_size, stride=mod.stride,
                             padding=mod.padding, ceil_mode=mod.ceil_mode))


@register_handler(nn.Upsample)
def _upsample(b, mod: nn.Upsample, x, name):
    if mod.scale_factor is None:
        raise ExportError(f"Upsample at {name!r} uses size=, which the "
                          f"graph IR does not carry; use scale_factor")
    return b.emit("upsample", [x], name=name,
                  attrs=dict(mode=mod.mode, scale_factor=mod.scale_factor))


@register_handler(nn.ReLU)
def _relu(b, mod, x, name):
    return b.emit("relu", [x], name=name)


@register_handler(nn.GELU)
def _gelu(b, mod, x, name):
    return b.emit("gelu", [x], name=name)


@register_handler(nn.Sigmoid)
def _sigmoid(b, mod, x, name):
    return b.emit("sigmoid", [x], name=name)


@register_handler(nn.Identity)
def _identity(b, mod, x, name):
    return b.emit("identity", [x], name=name)


@register_handler(nn.Flatten)
def _flatten(b, mod, x, name):
    return b.emit("flatten", [x], name=name)


@register_handler(nn.Sequential)
def _sequential(b, mod: nn.Sequential, x, name):
    for i, layer in enumerate(mod):
        x = _lower(b, layer, x, f"{name}.{i}")
    return x


# ---------------------------------------------------------------------------
# Zoo composite blocks — these mirror each block's forward() exactly
# ---------------------------------------------------------------------------

def _relu_after(b, x, name):
    return b.emit("relu", [x], name=f"{name}.relu")


def _import_zoo():
    """Deferred import so repro.backend does not hard-depend on repro.models."""
    from repro.models.mobile import (InvertedResidual, MBConvSE, SqueezeExcite,
                                     _MobileStyleNet, _RegNet, _RegNetBlock)
    from repro.models.resnet import BasicBlock, Bottleneck, ResNet
    return dict(BasicBlock=BasicBlock, Bottleneck=Bottleneck, ResNet=ResNet,
                InvertedResidual=InvertedResidual, MBConvSE=MBConvSE,
                SqueezeExcite=SqueezeExcite, MobileStyleNet=_MobileStyleNet,
                RegNet=_RegNet, RegNetBlock=_RegNetBlock)


def _register_zoo_handlers():
    zoo = _import_zoo()

    @register_handler(zoo["BasicBlock"])
    def _basic(b, mod, x, name):
        out = _lower(b, mod.conv1, x, f"{name}.conv1")
        out = _relu_after(b, out, f"{name}.conv1")
        out = _lower(b, mod.conv2, out, f"{name}.conv2")
        short = _lower(b, mod.short, x, f"{name}.short")
        out = b.emit("add", [out, short], name=f"{name}.add")
        return _relu_after(b, out, name)

    @register_handler(zoo["Bottleneck"])
    def _bottleneck(b, mod, x, name):
        out = _lower(b, mod.conv1, x, f"{name}.conv1")
        out = _relu_after(b, out, f"{name}.conv1")
        out = _lower(b, mod.conv2, out, f"{name}.conv2")
        out = _relu_after(b, out, f"{name}.conv2")
        out = _lower(b, mod.conv3, out, f"{name}.conv3")
        short = _lower(b, mod.short, x, f"{name}.short")
        out = b.emit("add", [out, short], name=f"{name}.add")
        return _relu_after(b, out, name)

    @register_handler(zoo["RegNetBlock"])
    def _regnet_block(b, mod, x, name):
        out = _lower(b, mod.conv1, x, f"{name}.conv1")
        out = _relu_after(b, out, f"{name}.conv1")
        out = _lower(b, mod.conv2, out, f"{name}.conv2")
        out = _relu_after(b, out, f"{name}.conv2")
        out = _lower(b, mod.conv3, out, f"{name}.conv3")
        short = _lower(b, mod.short, x, f"{name}.short")
        out = b.emit("add", [out, short], name=f"{name}.add")
        return _relu_after(b, out, name)

    @register_handler(zoo["SqueezeExcite"])
    def _se(b, mod, x, name):
        s = b.emit("global_avgpool", [x], name=f"{name}.gap")
        s = _lower(b, mod.fc1, s, f"{name}.fc1")
        s = b.emit("relu", [s], name=f"{name}.relu")
        s = _lower(b, mod.fc2, s, f"{name}.fc2")
        s = b.emit("sigmoid", [s], name=f"{name}.gate")
        # (N, C) gate -> (N, C, 1, 1) so the mul broadcasts over H, W.
        s = b.emit("reshape", [s], name=f"{name}.reshape",
                   attrs=dict(shape=(0, -1, 1, 1)))
        return b.emit("mul", [x, s], name=f"{name}.scale")

    def _inverted_core(b, mod, x, name, with_se: bool):
        out = x
        if not isinstance(mod.expand, nn.Identity):
            out = _lower(b, mod.expand, out, f"{name}.expand")
            out = _relu_after(b, out, f"{name}.expand")
        out = _lower(b, mod.depthwise, out, f"{name}.depthwise")
        out = _relu_after(b, out, f"{name}.depthwise")
        if with_se:
            out = _lower(b, mod.se, out, f"{name}.se")
        out = _lower(b, mod.project, out, f"{name}.project")
        if mod.use_res:
            out = b.emit("add", [out, x], name=f"{name}.add")
        return out

    @register_handler(zoo["InvertedResidual"])
    def _inverted(b, mod, x, name):
        return _inverted_core(b, mod, x, name, with_se=False)

    @register_handler(zoo["MBConvSE"])
    def _mbconv(b, mod, x, name):
        return _inverted_core(b, mod, x, name, with_se=True)

    @register_handler(zoo["ResNet"])
    def _resnet(b, mod, x, name):
        out = _lower(b, mod.stem, x, f"{name}.stem")
        out = _relu_after(b, out, f"{name}.stem")
        out = _lower(b, mod.pool, out, f"{name}.pool")
        out = _lower(b, mod.stages, out, f"{name}.stages")
        out = b.emit("global_avgpool", [out], name=f"{name}.gap")
        return _lower(b, mod.head, out, f"{name}.head")

    def _mobile_style(b, mod, x, name):
        out = _lower(b, mod.stem, x, f"{name}.stem")
        out = _relu_after(b, out, f"{name}.stem")
        out = _lower(b, mod.blocks, out, f"{name}.blocks")
        out = b.emit("global_avgpool", [out], name=f"{name}.gap")
        return _lower(b, mod.head, out, f"{name}.head")

    register_handler(zoo["MobileStyleNet"])(_mobile_style)
    register_handler(zoo["RegNet"])(_mobile_style)


# ---------------------------------------------------------------------------
# Transformer families (ViT, Swin)
#
# Attention lowers to primitive IR ops (matmul / transpose / reshape /
# softmax / concat / slice), so the vendor backends' matmul accumulation
# order and fast-softmax kernels apply inside attention — the transformer
# analogue of the paper's CNN inference noise.
# ---------------------------------------------------------------------------

def _lower_patch_embed(b: GraphBuilder, mod, x: str, name: str) -> str:
    out = _lower(b, mod.proj, x, f"{name}.proj")       # (B, D, H', W')
    out = b.emit("reshape", [out], name=f"{name}.flatten",
                 attrs=dict(shape=(0, 0, -1)))          # (B, D, N)
    return b.emit("transpose", [out], name=f"{name}.tokens",
                  attrs=dict(perm=(0, 2, 1)))           # (B, N, D)


def _lower_attention(b: GraphBuilder, mod, x: str, name: str) -> str:
    def split(value: str, label: str) -> str:
        v = b.emit("reshape", [value], name=f"{label}.split",
                   attrs=dict(shape=(0, 0, mod.heads, mod.dh)))
        return b.emit("transpose", [v], name=f"{label}.perm",
                      attrs=dict(perm=(0, 2, 1, 3)))    # (B, h, N, dh)

    q = split(_lower(b, mod.q, x, f"{name}.q"), f"{name}.q")
    k = split(_lower(b, mod.k, x, f"{name}.k"), f"{name}.k")
    v = split(_lower(b, mod.v, x, f"{name}.v"), f"{name}.v")
    scores = b.emit("matmul", [q, k], name=f"{name}.scores",
                    attrs=dict(transpose_b=True))
    scores = b.emit("scale", [scores], name=f"{name}.scale",
                    attrs=dict(factor=mod.scale))
    attn = b.emit("softmax", [scores], name=f"{name}.softmax",
                  attrs=dict(axis=-1))
    out = b.emit("matmul", [attn, v], name=f"{name}.context",
                 attrs=dict(transpose_b=False))
    out = b.emit("transpose", [out], name=f"{name}.merge.perm",
                 attrs=dict(perm=(0, 2, 1, 3)))
    out = b.emit("reshape", [out], name=f"{name}.merge",
                 attrs=dict(shape=(0, 0, -1)))          # (B, N, D)
    return _lower(b, mod.proj, out, f"{name}.proj")


def _lower_mlp(b: GraphBuilder, mod, x: str, name: str) -> str:
    """The norm2 → fc1 → gelu → fc2 → residual tail shared by all blocks."""
    out = _lower(b, mod.norm2, x, f"{name}.norm2")
    out = _lower(b, mod.fc1, out, f"{name}.fc1")
    out = b.emit("gelu", [out], name=f"{name}.gelu")
    out = _lower(b, mod.fc2, out, f"{name}.fc2")
    return b.emit("add", [x, out], name=f"{name}.add_mlp")


def _lower_roll(b: GraphBuilder, x: str, shift: int, axis: int, size: int,
                name: str) -> str:
    """Cyclic shift via slice + concat, mirroring vit._roll exactly."""
    shift = shift % size
    if shift == 0:
        return x
    head = b.emit("slice", [x], name=f"{name}.wrap",
                  attrs=dict(axis=axis, start=size - shift, stop=size))
    tail = b.emit("slice", [x], name=f"{name}.body",
                  attrs=dict(axis=axis, start=0, stop=size - shift))
    return b.emit("concat", [head, tail], name=f"{name}.roll",
                  attrs=dict(axis=axis))


def _register_transformer_handlers():
    from repro.models.vit import (MultiHeadAttention, PatchEmbed,
                                  PatchMerging, SwinBlock, SwinTransformer,
                                  TransformerBlock, VisionTransformer)

    register_handler(PatchEmbed)(_lower_patch_embed)
    register_handler(MultiHeadAttention)(_lower_attention)

    @register_handler(TransformerBlock)
    def _block(b, mod, x, name):
        out = _lower(b, mod.norm1, x, f"{name}.norm1")
        out = _lower(b, mod.attn, out, f"{name}.attn")
        out = b.emit("add", [x, out], name=f"{name}.add_attn")
        return _lower_mlp(b, mod, out, name)

    @register_handler(VisionTransformer)
    def _vit(b, mod, x, name):
        tokens = _lower(b, mod.embed, x, f"{name}.embed")
        cls_init = _init(b, f"{name}.cls_token", mod.cls_token.data)
        cls = b.emit("expand_like", [tokens, cls_init], name=f"{name}.cls")
        tokens = b.emit("concat", [cls, tokens], name=f"{name}.cat",
                        attrs=dict(axis=1))
        pos = _init(b, f"{name}.pos_embed", mod.pos_embed.data)
        tokens = b.emit("add", [tokens, pos], name=f"{name}.pos")
        tokens = _lower(b, mod.blocks, tokens, f"{name}.blocks")
        tokens = _lower(b, mod.norm, tokens, f"{name}.norm")
        pooled = b.emit("slice", [tokens], name=f"{name}.cls_out",
                        attrs=dict(axis=1, start=0, stop=1))
        pooled = b.emit("reshape", [pooled], name=f"{name}.squeeze",
                        attrs=dict(shape=(0, -1)))
        return _lower(b, mod.head, pooled, f"{name}.head")

    def _window_attention(b, mod, x, name, h, w, d):
        ws = mod.window
        nh, nw = h // ws, w // ws
        out = b.emit("reshape", [x], name=f"{name}.win.split",
                     attrs=dict(shape=(0, nh, ws, nw, ws, d)))
        out = b.emit("transpose", [out], name=f"{name}.win.perm",
                     attrs=dict(perm=(0, 1, 3, 2, 4, 5)))
        out = b.emit("reshape", [out], name=f"{name}.win.tokens",
                     attrs=dict(shape=(-1, ws * ws, d)))
        out = _lower_attention(b, mod.attn, out, f"{name}.attn")
        out = b.emit("reshape", [out], name=f"{name}.win.back",
                     attrs=dict(shape=(-1, nh, nw, ws, ws, d)))
        out = b.emit("transpose", [out], name=f"{name}.win.unperm",
                     attrs=dict(perm=(0, 1, 3, 2, 4, 5)))
        return b.emit("reshape", [out], name=f"{name}.win.merge",
                      attrs=dict(shape=(0, h, w, d)))

    def _lower_swin_block(b, mod, x, name, h, w, d):
        out = _lower(b, mod.norm1, x, f"{name}.norm1")
        if mod.shift:
            out = _lower_roll(b, out, -mod.shift, 1, h, f"{name}.fwd.r")
            out = _lower_roll(b, out, -mod.shift, 2, w, f"{name}.fwd.c")
        out = _window_attention(b, mod, out, name, h, w, d)
        if mod.shift:
            out = _lower_roll(b, out, mod.shift, 1, h, f"{name}.bwd.r")
            out = _lower_roll(b, out, mod.shift, 2, w, f"{name}.bwd.c")
        out = b.emit("add", [x, out], name=f"{name}.add_attn")
        return _lower_mlp(b, mod, out, name)

    def _lower_patch_merging(b, mod, x, name, h, w, d):
        out = b.emit("reshape", [x], name=f"{name}.quad",
                     attrs=dict(shape=(0, h // 2, 2, w // 2, 2, d)))
        out = b.emit("transpose", [out], name=f"{name}.perm",
                     attrs=dict(perm=(0, 1, 3, 2, 4, 5)))
        out = b.emit("reshape", [out], name=f"{name}.cat",
                     attrs=dict(shape=(0, h // 2, w // 2, 4 * d)))
        return _lower(b, mod.reduce, out, f"{name}.reduce")

    @register_handler(SwinBlock)
    def _swin_block_standalone(b, mod, x, name):
        raise ExportError(
            f"SwinBlock at {name!r} cannot be lowered standalone — its "
            f"window partition needs static spatial dims; export the full "
            f"SwinTransformer instead")

    register_handler(PatchMerging)(_swin_block_standalone)

    @register_handler(SwinTransformer)
    def _swin(b, mod, x, name):
        tokens = _lower(b, mod.embed, x, f"{name}.embed")   # (B, N, D)
        g = mod.grid
        d = mod.embed.proj.weight.shape[0]
        fmap = b.emit("reshape", [tokens], name=f"{name}.grid",
                      attrs=dict(shape=(0, g, g, d)))
        for i, block in enumerate(mod.stage1):
            fmap = _lower_swin_block(b, block, fmap, f"{name}.stage1.{i}",
                                     g, g, d)
        fmap = _lower_patch_merging(b, mod.merge, fmap, f"{name}.merge",
                                    g, g, d)
        g2, d2 = g // 2, d * 2
        for i, block in enumerate(mod.stage2):
            fmap = _lower_swin_block(b, block, fmap, f"{name}.stage2.{i}",
                                     g2, g2, d2)
        pooled = b.emit("reshape", [fmap], name=f"{name}.pool.tokens",
                        attrs=dict(shape=(0, -1, d2)))
        pooled = b.emit("mean", [pooled], name=f"{name}.pool",
                        attrs=dict(axis=1))
        pooled = _lower(b, mod.norm, pooled, f"{name}.norm")
        return _lower(b, mod.head, pooled, f"{name}.head")


_register_zoo_handlers()
_register_transformer_handlers()
