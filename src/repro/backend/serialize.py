"""Graph and compiled-plan serialisation as single ``.npz`` artefacts.

The exported graph is the deployment artefact — the thing actually shipped
to the target device — so it needs a durable format.  Structure (nodes,
attrs, input/output names) is stored as a JSON document; weight initializers
are stored as native compressed arrays.  Array-valued attributes (only
``constant`` nodes have them) are spilled into the array section and
referenced from the JSON by key.

:func:`save_plan` / :func:`load_plan` extend the same format to a *compiled*
:class:`~repro.backend.plan.ExecutionPlan`: the fully prepared graph (backend
rewrites and the bit-exact plan passes already applied, weights bound) plus
the backend identity it was compiled for.  Loading rebinds kernels from the
stored arrays — no export, no calibration, no pass pipeline — so a worker
cold-starts straight into ``plan.run`` with bit-identical results to a fresh
compile ("export once, deploy many").  Plan artefacts carry a CRC32 over
their canonical JSON and every array byte (the ledger's checksum discipline,
see docs/integrity.md); a damaged or version-mismatched artefact is rejected
at load, never silently executed.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

from .ir import Graph, GraphError, Node

__all__ = ["save_graph", "load_graph", "GRAPH_FORMAT_VERSION",
           "save_plan", "load_plan", "plan_info", "PLAN_FORMAT_VERSION",
           "PlanFormatError"]

GRAPH_FORMAT_VERSION = 1
PLAN_FORMAT_VERSION = 1
_META_KEY = "__graph_json__"
_PLAN_META_KEY = "__plan_json__"
_ATTR_PREFIX = "__attr__"


class PlanFormatError(GraphError):
    """Raised for unreadable, corrupted, or version-mismatched plan files."""


def _encode_attrs(attrs: dict, arrays: dict, node_index) -> dict:
    """JSON-safe attrs; ndarray values spill into ``arrays`` by reference."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, np.ndarray):
            ref = f"{_ATTR_PREFIX}{node_index}.{key}"
            arrays[ref] = value
            out[key] = {"__array_ref__": ref}
        elif isinstance(value, tuple) and value \
                and all(isinstance(v, Node) for v in value):
            # fused_elementwise chains hold the original Nodes; recurse.
            out[key] = {"__nodes__": [
                _encode_node(n, arrays, f"{node_index}.{key}.{j}")
                for j, n in enumerate(value)]}
        elif isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        elif isinstance(value, (np.bool_, np.integer, np.floating)):
            out[key] = value.item()
        else:
            out[key] = value
    return out


def _encode_node(node: Node, arrays: dict, index) -> dict:
    return {"op": node.op, "inputs": list(node.inputs),
            "output": node.output,
            "attrs": _encode_attrs(node.attrs, arrays, index),
            "name": node.name}


def _decode_attrs(attrs: dict, arrays: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__array_ref__" in value:
            out[key] = arrays[value["__array_ref__"]]
        elif isinstance(value, dict) and "__nodes__" in value:
            out[key] = tuple(_decode_node(n, arrays)
                             for n in value["__nodes__"])
        elif isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out


def _decode_node(doc: dict, arrays: dict) -> Node:
    return Node(doc["op"], tuple(doc["inputs"]), doc["output"],
                _decode_attrs(doc["attrs"], arrays), doc["name"])


def _graph_doc(graph: Graph, arrays: dict) -> dict:
    return {
        "name": graph.name,
        "input": graph.input,
        "output": graph.output,
        "nodes": [_encode_node(n, arrays, i)
                  for i, n in enumerate(graph.nodes)],
        "initializer_names": sorted(graph.initializers),
    }


def _graph_from_doc(doc: dict, arrays: dict) -> Graph:
    nodes = [_decode_node(n, arrays) for n in doc["nodes"]]
    inits = {name: arrays[name] for name in doc["initializer_names"]}
    graph = Graph(name=doc["name"], input=doc["input"], output=doc["output"],
                  nodes=nodes, initializers=inits)
    graph.validate()
    return graph


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Serialise a validated graph to ``path`` (.npz)."""
    graph.validate()
    arrays: dict[str, np.ndarray] = dict(graph.initializers)
    doc = {"version": GRAPH_FORMAT_VERSION, **_graph_doc(graph, arrays)}
    path = Path(path)
    np.savez_compressed(path, **arrays,
                        **{_META_KEY: np.frombuffer(
                            json.dumps(doc).encode(), dtype=np.uint8)})
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_graph(path: str | Path) -> Graph:
    """Load and validate a graph written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        if _META_KEY not in data:
            raise GraphError(f"{path}: not a repro graph file")
        doc = json.loads(bytes(data[_META_KEY]).decode())
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
    if doc.get("version") != GRAPH_FORMAT_VERSION:
        raise GraphError(f"{path}: graph format version "
                         f"{doc.get('version')!r}, expected "
                         f"{GRAPH_FORMAT_VERSION}")
    return _graph_from_doc(doc, arrays)


# ---------------------------------------------------------------------------
# Compiled-plan artefacts
# ---------------------------------------------------------------------------

def _plan_crc(doc: dict, arrays: dict) -> int:
    """CRC32 over the canonical plan document and every array's bytes.

    Same discipline as the run ledger's entry checksums (docs/integrity.md):
    the document contributes its sorted-key compact JSON — a property of the
    content, not the byte layout — and each array contributes its name,
    dtype, shape, and raw data, in sorted name order.
    """
    data = json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(data)
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(f"{a.dtype}{a.shape}".encode("utf-8"), crc)
        crc = zlib.crc32(a.tobytes(), crc)
    return crc & 0xFFFFFFFF


def _options_doc(options) -> dict | None:
    if options is None:
        return None
    import dataclasses
    return dataclasses.asdict(options)


def save_plan(plan, path: str | Path) -> Path:
    """Serialise a compiled :class:`~repro.backend.plan.ExecutionPlan`.

    The artefact stores the *prepared* graph (backend rewrites and plan
    passes already applied — fused ops, folded movement, quantised weights
    with their code/scale side-channels) plus the compiling backend's
    identity and options, and a CRC32 over everything.  It is therefore
    self-contained: :func:`load_plan` rebinds kernels and runs, without
    repeating export, calibration, or the pass pipeline.
    """
    graph = plan.graph
    graph.validate()
    arrays: dict[str, np.ndarray] = dict(graph.initializers)
    doc = {
        "version": PLAN_FORMAT_VERSION,
        "backend": plan.backend,
        "options": _options_doc(plan.options),
        "graph": _graph_doc(graph, arrays),
    }
    doc["crc32"] = _plan_crc(doc, arrays)
    path = Path(path)
    np.savez_compressed(path, **arrays,
                        **{_PLAN_META_KEY: np.frombuffer(
                            json.dumps(doc).encode(), dtype=np.uint8)})
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def _read_plan_doc(path: Path) -> tuple[dict, dict]:
    try:
        with np.load(path) as data:
            if _PLAN_META_KEY not in data:
                raise PlanFormatError(f"{path}: not a repro plan file")
            doc = json.loads(bytes(data[_PLAN_META_KEY]).decode())
            arrays = {k: data[k] for k in data.files if k != _PLAN_META_KEY}
    except PlanFormatError:
        raise
    except Exception as exc:               # zip/json level damage
        raise PlanFormatError(f"{path}: unreadable plan file: {exc}") from exc
    if doc.get("version") != PLAN_FORMAT_VERSION:
        raise PlanFormatError(f"{path}: plan format version "
                              f"{doc.get('version')!r}, expected "
                              f"{PLAN_FORMAT_VERSION}")
    stored = doc.pop("crc32", None)
    actual = _plan_crc(doc, arrays)
    if stored != actual:
        raise PlanFormatError(f"{path}: checksum mismatch (stored "
                              f"{stored!r}, computed {actual}) — artefact "
                              f"is corrupt, refusing to load")
    return doc, arrays


def plan_info(path: str | Path) -> dict:
    """Checked metadata of a plan artefact (without building the plan)."""
    doc, arrays = _read_plan_doc(Path(path))
    g = doc["graph"]
    return {"backend": doc["backend"], "options": doc["options"],
            "graph_name": g["name"], "nodes": len(g["nodes"]),
            "initializers": len(g["initializer_names"]),
            "parameters": int(sum(int(np.asarray(arrays[n]).size)
                                  for n in g["initializer_names"]))}


def load_plan(path: str | Path):
    """Load a plan artefact into a runnable ``ExecutionPlan``.

    Kernel rebinding from the stored arrays is deterministic, so the loaded
    plan's outputs are bit-identical to the plan that was saved — and hence
    to a fresh compile of the original graph on the same backend.
    """
    doc, arrays = _read_plan_doc(Path(path))
    graph = _graph_from_doc(doc["graph"], arrays)
    from .executor import BackendOptions, DeploymentExecutor, ReferenceExecutor
    if doc["options"] is None:
        executor = ReferenceExecutor()
        options = None
    else:
        options = BackendOptions(**doc["options"])
        executor = DeploymentExecutor(options)
    from .plan import ExecutionPlan
    return ExecutionPlan(graph, executor.cast_input, options=options,
                         backend=doc["backend"])
