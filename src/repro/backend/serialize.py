"""Graph serialisation: save/load deployment graphs as a single ``.npz``.

The exported graph is the deployment artefact — the thing actually shipped
to the target device — so it needs a durable format.  Structure (nodes,
attrs, input/output names) is stored as a JSON document; weight initializers
are stored as native compressed arrays.  Array-valued attributes (only
``constant`` nodes have them) are spilled into the array section and
referenced from the JSON by key.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .ir import Graph, GraphError, Node

__all__ = ["save_graph", "load_graph", "GRAPH_FORMAT_VERSION"]

GRAPH_FORMAT_VERSION = 1
_META_KEY = "__graph_json__"
_ATTR_PREFIX = "__attr__"


def _encode_attrs(attrs: dict, arrays: dict, node_index: int) -> dict:
    """JSON-safe attrs; ndarray values spill into ``arrays`` by reference."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, np.ndarray):
            ref = f"{_ATTR_PREFIX}{node_index}.{key}"
            arrays[ref] = value
            out[key] = {"__array_ref__": ref}
        elif isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        elif isinstance(value, (np.bool_, np.integer, np.floating)):
            out[key] = value.item()
        else:
            out[key] = value
    return out


def _decode_attrs(attrs: dict, arrays: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__array_ref__" in value:
            out[key] = arrays[value["__array_ref__"]]
        elif isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Serialise a validated graph to ``path`` (.npz)."""
    graph.validate()
    arrays: dict[str, np.ndarray] = dict(graph.initializers)
    doc = {
        "version": GRAPH_FORMAT_VERSION,
        "name": graph.name,
        "input": graph.input,
        "output": graph.output,
        "nodes": [
            {"op": n.op, "inputs": list(n.inputs), "output": n.output,
             "attrs": _encode_attrs(n.attrs, arrays, i), "name": n.name}
            for i, n in enumerate(graph.nodes)
        ],
        "initializer_names": sorted(graph.initializers),
    }
    path = Path(path)
    np.savez_compressed(path, **arrays,
                        **{_META_KEY: np.frombuffer(
                            json.dumps(doc).encode(), dtype=np.uint8)})
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def load_graph(path: str | Path) -> Graph:
    """Load and validate a graph written by :func:`save_graph`."""
    with np.load(Path(path)) as data:
        if _META_KEY not in data:
            raise GraphError(f"{path}: not a repro graph file")
        doc = json.loads(bytes(data[_META_KEY]).decode())
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
    if doc.get("version") != GRAPH_FORMAT_VERSION:
        raise GraphError(f"{path}: graph format version "
                         f"{doc.get('version')!r}, expected "
                         f"{GRAPH_FORMAT_VERSION}")
    nodes = [Node(n["op"], tuple(n["inputs"]), n["output"],
                  _decode_attrs(n["attrs"], arrays), n["name"])
             for n in doc["nodes"]]
    inits = {name: arrays[name] for name in doc["initializer_names"]}
    graph = Graph(name=doc["name"], input=doc["input"], output=doc["output"],
                  nodes=nodes, initializers=inits)
    graph.validate()
    return graph
