"""Pure-NumPy operator kernels shared by the backend executors.

Every kernel takes and returns plain ``ndarray``s — no autograd.  The knobs
that differ between vendor implementations are explicit parameters:

* ``dtype`` — the compute/storage precision (float64 reference, float32 or
  float16 deployment);
* ``accum_chunk`` — matmul accumulation granularity.  Reference backends
  accumulate a dot product in one fused reduction; tiled deployment kernels
  accumulate partial sums in ``accum_chunk``-sized slabs, which changes the
  floating-point rounding order and therefore the low bits of every conv and
  linear output;
* ``fast`` variants of gelu/sigmoid/softmax — polynomial / piecewise
  approximations of transcendental functions, as shipped in DSP and NPU
  operator libraries.

These are the mechanisms behind the paper's "black-box vendor operator"
observation (§3.3): same weights, same math on paper, different bits.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import im2col, pad2d_const, pool_output_size

from . import parallel as _par

__all__ = [
    "matmul_accum", "conv2d", "linear", "qconv2d", "qlinear", "requantize",
    "requant_scale",
    "batchnorm", "layernorm", "relu",
    "gelu", "gelu_tanh", "sigmoid", "hard_sigmoid",
    "softmax", "softmax_fast", "max_pool2d", "avg_pool2d",
    "global_avg_pool2d", "upsample2d", "exp_poly",
]


# ---------------------------------------------------------------------------
# Matmul with controllable accumulation order
# ---------------------------------------------------------------------------

def _even_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    step = -(-n // parts)
    return [(i, min(i + step, n)) for i in range(0, n, step)]


def _matmul_flops(a: np.ndarray, b: np.ndarray) -> int:
    """Rough multiply-add count of ``a @ b`` (broadcast-aware)."""
    try:
        lead = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    except ValueError:
        return 0
    batch = 1
    for d in lead:
        batch *= d
    return 2 * batch * a.shape[-2] * a.shape[-1] * b.shape[-1]


def _stacked_matmul(a: np.ndarray, b: np.ndarray, dtype,
                    workers: int) -> np.ndarray | None:
    """Fused matmul split over the leading stacked axis, or None.

    NumPy evaluates a stacked matmul as one independent GEMM per leading
    slice, so computing contiguous slice ranges on worker threads and
    concatenating in order reproduces the serial result bit for bit (each
    slice is the *same* GEMM call either way).  2-D problems have no such
    axis — splitting rows/columns of a single GEMM changes BLAS blocking
    and therefore low bits — so they stay serial and the batch dimension
    carries all the parallelism.
    """
    nd = max(a.ndim, b.ndim)
    if nd < 3:
        return None
    lead = a.shape[0] if a.ndim == nd else 1
    if b.ndim == nd:
        lead = max(lead, b.shape[0])
    if lead < 2:
        return None
    slice_a = a.ndim == nd and a.shape[0] == lead
    slice_b = b.ndim == nd and b.shape[0] == lead

    def piece(bounds):
        lo, hi = bounds
        ai = a[lo:hi] if slice_a else a
        bi = b[lo:hi] if slice_b else b
        return (ai @ bi).astype(dtype, copy=False)

    parts = _par.parallel_map(piece, _even_bounds(lead, min(workers, lead)),
                              workers=workers, tag="gemm-stack")
    return np.concatenate(parts, axis=0)


def _slab_matmul(a: np.ndarray, b: np.ndarray, dtype, accum_chunk: int,
                 workers: int) -> np.ndarray:
    """Tiled accumulation with slab partials computed on worker threads.

    Partials are computed concurrently in waves but *reduced strictly in
    slab order* — the identical sequence of adds the serial loop performs,
    so the result is bit-identical at any thread count.  Waves bound peak
    memory at O(workers) partials instead of O(K / accum_chunk).
    """
    k = a.shape[-1]
    starts = list(range(0, k, accum_chunk))
    wave = max(workers, 2)

    def slab(start):
        sl = slice(start, start + accum_chunk)
        return (a[..., sl] @ b[..., sl, :]).astype(dtype, copy=False)

    out = None
    for i in range(0, len(starts), wave):
        parts = _par.parallel_map(slab, starts[i:i + wave], workers=workers,
                                  tag="gemm-slab")
        for part in parts:
            out = part if out is None else (out + part).astype(dtype,
                                                               copy=False)
    return out


def matmul_accum(a: np.ndarray, b: np.ndarray, dtype=np.float64,
                 accum_chunk: int | None = None) -> np.ndarray:
    """``a @ b`` in ``dtype`` with optional tiled accumulation.

    ``accum_chunk=None`` is the fused reference reduction.  With a chunk
    size, partial products over the contraction axis are summed slab by slab
    in ``dtype`` — the rounding order a tiled GEMM (or a systolic accelerator
    with a small accumulator) produces.

    Large problems are threaded over the shared intra-op pool
    (:mod:`repro.backend.parallel`): stacked fused matmuls split their
    leading batch axis, tiled matmuls compute slab partials concurrently
    and reduce them in slab order.  Both fan-outs are bit-identical to the
    serial path at every thread count — see docs/performance.md.
    """
    a = a.astype(dtype, copy=False)
    b = b.astype(dtype, copy=False)
    k = a.shape[-1]
    workers = 1
    if a.ndim >= 2 and b.ndim >= 2 \
            and _matmul_flops(a, b) >= _par.TILE_MIN_WORK:
        workers = _par.num_threads()
    if accum_chunk is None or accum_chunk >= k:
        if workers > 1:
            out = _stacked_matmul(a, b, dtype, workers)
            if out is not None:
                return out
        return (a @ b).astype(dtype, copy=False)
    if workers > 1:
        return _slab_matmul(a, b, dtype, accum_chunk, workers)
    out = None
    for start in range(0, k, accum_chunk):
        sl = slice(start, start + accum_chunk)
        part = (a[..., sl] @ b[..., sl, :]).astype(dtype, copy=False)
        out = part if out is None else (out + part).astype(dtype, copy=False)
    return out


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------

def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, *,
           stride: int = 1, padding: int = 0, dilation: int = 1,
           groups: int = 1, dtype=np.float64,
           accum_chunk: int | None = None) -> np.ndarray:
    """Grouped 2-D convolution via im2col + (tiled) GEMM."""
    n, cin, _, _ = x.shape
    cout, cin_g, kh, kw = weight.shape
    cols, meta = im2col(x.astype(dtype, copy=False),
                        kh, kw, stride, padding, dilation)
    oh, ow = meta[6], meta[7]
    # cols: (N, C*kh*kw, OH*OW); channels are contiguous, so a group reshape
    # slices the column matrix without copying.
    cols = cols.reshape(n, groups, cin_g * kh * kw, oh * ow)
    w = weight.astype(dtype, copy=False).reshape(groups, cout // groups, -1)
    outs = [matmul_accum(w[g], cols[:, g], dtype=dtype, accum_chunk=accum_chunk)
            for g in range(groups)]
    out = np.concatenate(outs, axis=-2) if groups > 1 else outs[0]
    out = out.reshape(n, cout, oh, ow)
    if bias is not None:
        out = (out + bias.astype(dtype, copy=False).reshape(1, -1, 1, 1))
    return out.astype(dtype, copy=False)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, *,
           dtype=np.float64, accum_chunk: int | None = None) -> np.ndarray:
    out = matmul_accum(x, weight.T, dtype=dtype, accum_chunk=accum_chunk)
    if bias is not None:
        out = (out + bias.astype(dtype, copy=False)).astype(dtype, copy=False)
    return out


def requantize(raw: np.ndarray, y_scale: float, y_zero_point: int,
               activation: str | None = None) -> np.ndarray:
    """Float accumulator -> INT8 code grid, mirroring ``quantize_linear``.

    ``activation="relu"`` clamps before the round, matching the float path
    where the activation runs on the raw conv output ahead of its
    ``quantize_linear`` node.
    """
    if activation == "relu":
        raw = np.maximum(raw, 0)
    return np.clip(np.round(raw / y_scale) + y_zero_point, -128, 127)


def requant_scale(w_scale, *, x_scale: float, y_scale: float) -> np.ndarray:
    """Combined per-channel requant multiplier ``x_scale·w_scale / y_scale``.

    Folding the output quantisation step into the accumulator multiplier
    removes one full elementwise pass from every q-op.  The interpreter
    kernels and the plan bindings both build their multiplier through this
    function, so the two paths stay expression-identical (bit-for-bit)."""
    return (float(x_scale)
            * np.asarray(w_scale, dtype=np.float64)) / float(y_scale)


def qconv2d(x_codes: np.ndarray, w_codes: np.ndarray, w_scale: np.ndarray,
            bias: np.ndarray | None, *, stride: int = 1, padding: int = 0,
            dilation: int = 1, groups: int = 1, x_scale: float,
            x_zero_point: int, y_scale: float, y_zero_point: int,
            activation: str | None = None) -> np.ndarray:
    """Integer-only INT8 convolution + requantization (one fused node).

    Operands are INT8 *codes* (integer-valued arrays in any float/int
    container).  The zero-point-shifted codes are accumulated through the
    float64 GEMM — every product is ≤ 255², every accumulator ≪ 2⁵³, so the
    arithmetic is **exact** and therefore independent of accumulation
    order, tiling, and executor dtype.  The single float rounding happens
    at requantization, exactly where the reference QDQ path rounds too —
    which is why the lowered graph reproduces the reference QDQ codes (see
    :func:`repro.backend.quantize.lower_integer`).

    Zero-padding in code space shifts first, pads with 0: a padded cell is
    exactly the dequantized 0.0 the float path pads with.
    """
    xs = x_codes.astype(np.float64, copy=False)
    if x_zero_point:
        xs = xs - float(x_zero_point)
    n = xs.shape[0]
    cout, cin_g, kh, kw = w_codes.shape
    cols, meta = im2col(xs, kh, kw, stride, padding, dilation)
    oh, ow = meta[6], meta[7]
    cols = cols.reshape(n, groups, cin_g * kh * kw, oh * ow)
    w = w_codes.astype(np.float64, copy=False).reshape(groups,
                                                       cout // groups, -1)
    acc = matmul_accum(w[0] if groups == 1 else w,
                       cols[:, 0] if groups == 1 else cols,
                       dtype=np.float64)
    m = requant_scale(w_scale, x_scale=x_scale, y_scale=y_scale)
    raw = acc.reshape(n, cout, oh, ow) * m.reshape(1, -1, 1, 1)
    if bias is not None:
        raw += (np.asarray(bias, dtype=np.float64)
                / float(y_scale)).reshape(1, -1, 1, 1)
    if activation == "relu":
        raw = np.maximum(raw, 0)
    return np.clip(np.round(raw) + y_zero_point, -128, 127)


def qlinear(x_codes: np.ndarray, w_codes: np.ndarray, w_scale: np.ndarray,
            bias: np.ndarray | None, *, x_scale: float, x_zero_point: int,
            y_scale: float, y_zero_point: int,
            activation: str | None = None) -> np.ndarray:
    """Integer-only INT8 linear + requantization (see :func:`qconv2d`)."""
    xs = x_codes.astype(np.float64, copy=False)
    if x_zero_point:
        xs = xs - float(x_zero_point)
    acc = matmul_accum(xs, w_codes.astype(np.float64, copy=False).T,
                       dtype=np.float64)
    raw = acc * requant_scale(w_scale, x_scale=x_scale, y_scale=y_scale)
    if bias is not None:
        raw += np.asarray(bias, dtype=np.float64) / float(y_scale)
    if activation == "relu":
        raw = np.maximum(raw, 0)
    return np.clip(np.round(raw) + y_zero_point, -128, 127)


def batchnorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              mean: np.ndarray, var: np.ndarray, eps: float = 1e-5,
              dtype=np.float64) -> np.ndarray:
    """Inference-mode BN using running statistics."""
    shape = (1, -1) + (1,) * (x.ndim - 2)
    scale = (gamma / np.sqrt(var + eps)).astype(dtype).reshape(shape)
    shift = (beta - mean * gamma / np.sqrt(var + eps)).astype(dtype).reshape(shape)
    return (x.astype(dtype, copy=False) * scale + shift).astype(dtype, copy=False)


def layernorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              eps: float = 1e-5, dtype=np.float64) -> np.ndarray:
    """Layer normalisation over the trailing feature dimension."""
    x = x.astype(dtype, copy=False)
    mu = x.mean(axis=-1, keepdims=True)
    var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
    out = (x - mu) / np.sqrt(var + eps) * gamma.astype(dtype) \
        + beta.astype(dtype)
    return out.astype(dtype, copy=False)


# ---------------------------------------------------------------------------
# Activations: reference and vendor-style approximations
# ---------------------------------------------------------------------------

def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Exact GELU via the error function."""
    from scipy.special import erf
    return (x * 0.5 * (1.0 + erf(x / np.sqrt(2.0)))).astype(x.dtype, copy=False)


def gelu_tanh(x: np.ndarray) -> np.ndarray:
    """The tanh approximation most accelerator libraries ship."""
    c = float(np.sqrt(2.0 / np.pi))
    inner = c * (x + 0.044715 * x ** 3)
    return (0.5 * x * (1.0 + np.tanh(inner))).astype(x.dtype, copy=False)


def sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear sigmoid (``relu6(x+3)/6``), common on DSPs/NPUs."""
    return (np.clip(x + 3.0, 0.0, 6.0) / 6.0).astype(x.dtype, copy=False)


def exp_poly(x: np.ndarray, order: int = 5) -> np.ndarray:
    """Range-reduced polynomial exp: ``exp(x) = 2^k * P(r)``.

    The standard fixed-function-unit recipe: split ``x = k*ln2 + r`` with
    ``|r| <= ln2/2``, evaluate a degree-``order`` Taylor polynomial on the
    reduced argument, and scale by the exactly-representable power of two.
    Accurate to ~1e-6 relative at order 5 — close to, but not bit-equal with,
    libm ``exp``.
    """
    x = np.clip(x, -87.0, 87.0)
    k = np.round(x / np.log(2.0))
    r = x - k * np.log(2.0)
    p = np.ones_like(r)
    term = np.ones_like(r)
    for i in range(1, order + 1):
        term = term * r / i
        p = p + term
    return np.ldexp(p, k.astype(np.int64))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


def softmax_fast(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax built on the polynomial exp, as vendor kernels do."""
    z = x - x.max(axis=axis, keepdims=True)
    e = exp_poly(z)
    return (e / e.sum(axis=axis, keepdims=True)).astype(x.dtype, copy=False)


# ---------------------------------------------------------------------------
# Pooling / resampling
# ---------------------------------------------------------------------------

def _pool2d(x: np.ndarray, kernel_size: int, stride: int, padding: int,
            ceil_mode: bool, reduce_fn, pad_value: float) -> np.ndarray:
    n, c, h, w = x.shape
    oh = pool_output_size(h, kernel_size, stride, padding, ceil_mode)
    ow = pool_output_size(w, kernel_size, stride, padding, ceil_mode)
    # Pad enough on the right/bottom for ceil-mode windows that run off-edge.
    need_h = (oh - 1) * stride + kernel_size
    need_w = (ow - 1) * stride + kernel_size
    pad_r = max(need_h - h - padding, padding)
    pad_c = max(need_w - w - padding, padding)
    xp = pad2d_const(x, padding, pad_r, padding, pad_c, pad_value)
    view = np.lib.stride_tricks.sliding_window_view(
        xp, (kernel_size, kernel_size), axis=(2, 3))
    view = view[:, :, ::stride, ::stride][:, :, :oh, :ow]
    return reduce_fn(view, axis=(-2, -1))


def max_pool2d(x: np.ndarray, kernel_size: int, stride: int, padding: int,
               ceil_mode: bool = False) -> np.ndarray:
    return _pool2d(x, kernel_size, stride, padding, ceil_mode, np.max, -np.inf)


def avg_pool2d(x: np.ndarray, kernel_size: int, stride: int, padding: int,
               ceil_mode: bool = False) -> np.ndarray:
    return _pool2d(x, kernel_size, stride, padding, ceil_mode, np.mean, 0.0)


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=(2, 3))


def upsample2d(x: np.ndarray, scale_factor: float, mode: str = "nearest") -> np.ndarray:
    """Feature-map upsample, nearest or bilinear (align_corners=False)."""
    n, c, h, w = x.shape
    oh, ow = int(round(h * scale_factor)), int(round(w * scale_factor))
    if mode == "nearest":
        ri = np.minimum((np.arange(oh) / scale_factor).astype(np.int64), h - 1)
        ci = np.minimum((np.arange(ow) / scale_factor).astype(np.int64), w - 1)
        return x[:, :, ri[:, None], ci[None, :]]
    if mode != "bilinear":
        raise ValueError(f"unknown upsample mode {mode!r}")
    src_r = np.clip((np.arange(oh) + 0.5) / scale_factor - 0.5, 0, h - 1)
    src_c = np.clip((np.arange(ow) + 0.5) / scale_factor - 0.5, 0, w - 1)
    r0 = np.floor(src_r).astype(np.int64)
    c0 = np.floor(src_c).astype(np.int64)
    r1 = np.minimum(r0 + 1, h - 1)
    c1 = np.minimum(c0 + 1, w - 1)
    fr = (src_r - r0).reshape(1, 1, -1, 1)
    fc = (src_c - c0).reshape(1, 1, 1, -1)
    tl = x[:, :, r0[:, None], c0[None, :]]
    tr = x[:, :, r0[:, None], c1[None, :]]
    bl = x[:, :, r1[:, None], c0[None, :]]
    br = x[:, :, r1[:, None], c1[None, :]]
    top = tl * (1 - fc) + tr * fc
    bot = bl * (1 - fc) + br * fc
    return (top * (1 - fr) + bot * fr).astype(x.dtype, copy=False)
