"""Graph intermediate representation for the deployment backends.

A :class:`Graph` is the deployment artefact: a topologically ordered list of
:class:`Node` ops, a table of weight ``initializers``, and named graph inputs
and outputs.  It plays the role ONNX plays between PyTorch and TensorRT/SNPE
in the paper's pipeline — a trained ``repro.nn`` model is exported once (see
:mod:`repro.backend.export`) and then executed by *different* backends
(:mod:`repro.backend.executor`), whose implementation differences are exactly
the model-inference SysNoise the paper studies.

The IR is deliberately minimal: single-assignment value names, attribute
dicts, no control flow.  ``Graph.validate()`` enforces the structural
invariants every pass and executor relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Node", "Graph", "GraphBuilder", "OP_SCHEMA", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed graphs (dangling values, cycles, bad attrs)."""


#: op type -> (required attribute names, number of data inputs)
#: Weight operands (conv filters, BN statistics…) live in ``initializers``
#: and are referenced through the node's ``inputs`` after the data operands.
OP_SCHEMA: dict[str, tuple[tuple[str, ...], int]] = {
    "conv2d": (("stride", "padding", "dilation", "groups"), 1),
    "linear": ((), 1),
    # Integer fast path (lower_integer): fused op + requant in code space.
    "qconv2d": (("stride", "padding", "dilation", "groups", "x_scale",
                 "x_zero_point", "y_scale", "y_zero_point"), 1),
    "qlinear": (("x_scale", "x_zero_point", "y_scale", "y_zero_point"), 1),
    "qrelu": (("zero_point",), 1),
    "batchnorm": (("eps",), 1),
    "relu": ((), 1),
    "gelu": ((), 1),
    "sigmoid": ((), 1),
    "add": ((), 2),
    "mul": ((), 2),
    "maxpool": (("kernel_size", "stride", "padding", "ceil_mode"), 1),
    "avgpool": (("kernel_size", "stride", "padding", "ceil_mode"), 1),
    "global_avgpool": ((), 1),
    "upsample": (("mode", "scale_factor"), 1),
    "flatten": ((), 1),
    "reshape": (("shape",), 1),
    "softmax": (("axis",), 1),
    "identity": ((), 1),
    "constant": (("value",), 0),
    "clip": (("lo", "hi"), 1),
    "quantize_linear": (("scale", "zero_point"), 1),
    "dequantize_linear": (("scale", "zero_point"), 1),
    # Transformer support (ViT/Swin export):
    "layernorm": (("eps",), 1),
    "matmul": (("transpose_b",), 2),
    "transpose": (("perm",), 1),
    "concat": (("axis",), -1),            # variable arity: all inputs are data
    "slice": (("axis", "start", "stop"), 1),
    "mean": (("axis",), 1),
    "expand_like": ((), 2),               # broadcast operand 1 to operand 0's batch
    "scale": (("factor",), 1),            # multiply by a compile-time scalar
    # Produced by the fusion passes (never by the exporter): a chain of
    # shape-preserving unary ops executed back to back.  ``chain`` holds the
    # fused :class:`Node`s in application order; executors run them through
    # their own per-op kernels, so fused and unfused graphs are bit-equal.
    "fused_elementwise": (("chain",), 1),
}


@dataclass(frozen=True)
class Node:
    """One operation: ``output = op(*inputs, **attrs)``.

    ``inputs`` name either earlier node outputs, graph inputs, or entries in
    ``Graph.initializers`` (weights).  ``name`` is a human-readable label used
    in diff reports (usually the source module path, e.g. ``stages.0.conv1``).
    """

    op: str
    inputs: tuple[str, ...]
    output: str
    attrs: dict = field(default_factory=dict)
    name: str = ""

    def __post_init__(self):
        if self.op not in OP_SCHEMA:
            raise GraphError(f"unknown op {self.op!r}; known: {sorted(OP_SCHEMA)}")
        required, _ = OP_SCHEMA[self.op]
        missing = [a for a in required if a not in self.attrs]
        if missing:
            raise GraphError(f"{self.op} node {self.name or self.output!r} "
                             f"missing attrs {missing}")

    def with_attrs(self, **changes) -> "Node":
        """Copy with updated attributes (nodes are immutable)."""
        return Node(self.op, self.inputs, self.output,
                    {**self.attrs, **changes}, self.name)


@dataclass
class Graph:
    """A deployment graph: SSA value names, topo-ordered nodes, weights."""

    name: str
    input: str
    output: str
    nodes: list[Node] = field(default_factory=list)
    initializers: dict[str, np.ndarray] = field(default_factory=dict)

    # -- structure queries ----------------------------------------------------
    def producer_of(self, value: str) -> Node | None:
        """The node that defines ``value`` (None for inputs/initializers)."""
        for node in self.nodes:
            if node.output == value:
                return node
        return None

    def users_of(self, value: str) -> list[Node]:
        """All nodes that consume ``value``."""
        return [n for n in self.nodes if value in n.inputs]

    def node_named(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def data_inputs(self, node: Node) -> tuple[str, ...]:
        """The node's activation inputs (weight operands stripped)."""
        _, n_data = OP_SCHEMA[node.op]
        return node.inputs if n_data < 0 else node.inputs[:n_data]

    def weight_inputs(self, node: Node) -> tuple[str, ...]:
        _, n_data = OP_SCHEMA[node.op]
        return () if n_data < 0 else node.inputs[n_data:]

    # -- validation -------------------------------------------------------------
    def validate(self) -> None:
        """Check SSA form, topological order, and operand resolution.

        Raises :class:`GraphError` on the first violation.  Executors and
        passes assume a validated graph.
        """
        defined = {self.input} | set(self.initializers)
        seen_outputs: set[str] = set()
        for node in self.nodes:
            for operand in node.inputs:
                if operand not in defined:
                    raise GraphError(
                        f"node {node.name or node.output!r} reads undefined "
                        f"value {operand!r} (graph not topologically ordered?)")
            if node.output in seen_outputs or node.output in self.initializers:
                raise GraphError(f"value {node.output!r} defined twice")
            if node.output == self.input:
                raise GraphError(f"node output shadows graph input {self.input!r}")
            seen_outputs.add(node.output)
            defined.add(node.output)
            required_weights = _expected_weight_count(node)
            if required_weights is not None and \
                    len(self.weight_inputs(node)) != required_weights:
                raise GraphError(
                    f"{node.op} node {node.name or node.output!r} expects "
                    f"{required_weights} weight operand(s), got "
                    f"{len(self.weight_inputs(node))}")
        if self.output not in defined:
            raise GraphError(f"graph output {self.output!r} is never defined")

    # -- reporting -----------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(int(w.size) for w in self.initializers.values())

    def op_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for node in self.nodes:
            hist[node.op] = hist.get(node.op, 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> str:
        """Human-readable dump, one line per node."""
        lines = [f"graph {self.name}: input={self.input} output={self.output} "
                 f"({len(self.nodes)} nodes, {self.num_parameters()} params)"]
        for node in self.nodes:
            attrs = ", ".join(f"{k}={v}" for k, v in node.attrs.items()
                              if k != "value")
            label = f"  {node.output:24s} = {node.op}({', '.join(node.inputs)})"
            if attrs:
                label += f"  [{attrs}]"
            if node.name:
                label += f"  # {node.name}"
            lines.append(label)
        return "\n".join(lines)


def _expected_weight_count(node: Node) -> int | None:
    """Weight-operand arity per op (None = variable, checked by executor)."""
    if node.op in ("conv2d", "linear", "qconv2d", "qlinear"):
        return None                     # bias optional (q-ops: codes, scale)
    if node.op == "batchnorm":
        return 4                        # gamma, beta, mean, var
    if node.op == "layernorm":
        return 2                        # gamma, beta
    if node.op in ("concat", "expand_like", "matmul", "fused_elementwise"):
        return 0                        # all-data ops (weights arrive as values)
    return 0


class GraphBuilder:
    """Incremental graph construction with unique value naming.

    Used by the exporter; also convenient for hand-building small graphs in
    tests.  Values are named ``{prefix}_{counter}`` unless given explicitly.
    """

    def __init__(self, name: str, input_name: str = "x"):
        self.graph = Graph(name=name, input=input_name, output=input_name)
        self._counter = 0

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def add_initializer(self, name: str, value: np.ndarray) -> str:
        if name in self.graph.initializers:
            raise GraphError(f"initializer {name!r} already present")
        self.graph.initializers[name] = np.asarray(value)
        return name

    def emit(self, op: str, inputs: list[str], *, attrs: dict | None = None,
             name: str = "", output: str | None = None) -> str:
        """Append a node and return its output value name."""
        out = output or self.fresh(op)
        self.graph.nodes.append(Node(op, tuple(inputs), out, attrs or {}, name))
        return out

    def finish(self, output: str) -> Graph:
        """Seal the graph: set the output and validate."""
        self.graph.output = output
        self.graph.validate()
        return self.graph
