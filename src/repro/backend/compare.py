"""Cross-backend numerical comparison — localising where deployments diverge.

The paper observes that vendor operator libraries "often fail to produce the
same results" but treats them as black boxes.  With both backends implemented
here we can open the box: :func:`backend_diff` runs the same graph on the
same batch under two executors and reports, per layer, how far the
activations have drifted.  :func:`accuracy_under_backend` closes the loop by
scoring a classifier graph end-to-end under a given backend, which is the
Δ-accuracy quantity the benchmark tables report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .executor import Executor, ReferenceExecutor, create_backend
from .ir import Graph

__all__ = ["LayerDiff", "backend_diff", "first_divergence", "diff_report",
           "accuracy_under_backend", "predict"]


@dataclass(frozen=True)
class LayerDiff:
    """Activation disagreement at one graph node."""

    layer: str
    op: str
    shape: tuple[int, ...]
    max_abs: float
    mean_abs: float
    rel: float            # max_abs / (max |reference| + eps)

    def __str__(self) -> str:
        return (f"{self.layer:32s} {self.op:14s} max={self.max_abs:.3e} "
                f"mean={self.mean_abs:.3e} rel={self.rel:.3e}")


def backend_diff(graph: Graph, x: np.ndarray,
                 backend_a: Executor | str = "reference",
                 backend_b: Executor | str = "gpu-fp16") -> list[LayerDiff]:
    """Per-layer activation diffs between two backends on the same batch.

    Layers are matched by node *name*; fusion may remove nodes from one side
    (a fused conv+bn only reports at the fused node), so only names present
    in both executions are compared — mirroring how one debugs a real
    TensorRT-vs-PyTorch mismatch layer by layer.
    """
    exec_a = _as_executor(backend_a)
    exec_b = _as_executor(backend_b)
    exec_a.keep_intermediates = True
    exec_b.keep_intermediates = True
    exec_a.run(graph, x)
    exec_b.run(graph, x)
    ops_by_name = {n.name or n.output: n.op for n in graph.nodes}
    diffs = []
    for name, ref in exec_a.intermediates.items():
        # Fused executions report the conv under "<name>+bn".
        other = exec_b.intermediates.get(name)
        if other is None:
            other = exec_b.intermediates.get(name + "+bn")
        if other is None or ref.shape != other.shape:
            continue
        delta = np.abs(ref.astype(np.float64) - other.astype(np.float64))
        denom = float(np.abs(ref).max()) + 1e-12
        diffs.append(LayerDiff(layer=name, op=ops_by_name.get(name, "?"),
                               shape=tuple(ref.shape),
                               max_abs=float(delta.max()),
                               mean_abs=float(delta.mean()),
                               rel=float(delta.max() / denom)))
    return diffs


def first_divergence(diffs: list[LayerDiff], rel_tol: float = 1e-6) -> LayerDiff | None:
    """The first layer (in execution order) whose relative error exceeds tol."""
    for d in diffs:
        if d.rel > rel_tol:
            return d
    return None


def diff_report(diffs: list[LayerDiff], top: int = 10) -> str:
    """Readable report: worst layers by relative error, plus the onset layer."""
    if not diffs:
        return "no comparable layers"
    worst = sorted(diffs, key=lambda d: d.rel, reverse=True)[:top]
    lines = [f"{len(diffs)} layers compared; {top} worst by relative error:"]
    lines += [f"  {d}" for d in worst]
    onset = first_divergence(diffs)
    if onset is not None:
        lines.append(f"first divergence at: {onset.layer} (rel={onset.rel:.3e})")
    return "\n".join(lines)


def _as_executor(backend: Executor | str) -> Executor:
    return backend if isinstance(backend, Executor) else create_backend(backend)


def predict(graph: Graph, x: np.ndarray,
            backend: Executor | str = "reference") -> np.ndarray:
    """Class predictions of a classifier graph under a backend."""
    logits = _as_executor(backend).run(graph, x)
    return logits.argmax(axis=1)


def accuracy_under_backend(graph: Graph, x: np.ndarray, labels: np.ndarray,
                           backend: Executor | str) -> float:
    """Top-1 accuracy (percent) of a classifier graph under a backend."""
    return float((predict(graph, x, backend) == labels).mean() * 100.0)
