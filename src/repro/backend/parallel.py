"""Shared intra-op worker-thread pool for the backend kernels.

The sweep engine parallelises *across* variants; this module parallelises
*inside* a single heavy operator.  :func:`parallel_map` fans a list of
independent tiles out over one process-wide ``ThreadPoolExecutor`` — NumPy
releases the GIL inside its BLAS calls, so the tiles genuinely overlap.

**Determinism contract.**  Callers may only submit tiles whose results are
combined in a *fixed, input-independent order* (``parallel_map`` returns
results in submission order regardless of completion order), and each tile
must be the exact computation the serial path would perform.  Under that
contract threaded results are bit-identical to serial at every thread
count, which is what lets threading default-on without perturbing any of
the repo's bit-exactness gates (see docs/performance.md).

Pool width comes from ``REPRO_NUM_THREADS`` when set, else from the cores
actually available to the process (affinity/cgroup aware — the same probe
as :func:`repro.core.sweep.available_cores`).  On a 1-core host every
``parallel_map`` degrades to a plain loop with no pool, no locks and no
overhead.  Nested calls (a tile that itself reaches ``parallel_map``) run
serially in the worker thread, so the pool cannot deadlock on itself.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["num_threads", "parallel_map", "collect_stats", "TILE_MIN_WORK"]

#: Minimum estimated FLOPs before a kernel bothers with the pool; below
#: this, submit/collect overhead beats any overlap.
TILE_MIN_WORK = 1 << 20

_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_width = 0
_tls = threading.local()
_stats_sink: list | None = None


def _available_cores() -> int:
    """Cores available to this process (affinity/cgroup aware).

    Duplicates :func:`repro.core.sweep.available_cores` so the backend
    keeps no dependency on ``repro.core``.
    """
    count = getattr(os, "process_cpu_count", None)
    if count is not None:
        n = count()
    else:
        try:
            n = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            n = os.cpu_count()
    return n or 1


def num_threads() -> int:
    """Intra-op pool width: ``REPRO_NUM_THREADS`` if set (>= 1), else the
    available core count.  Re-read on every call so tests (and pool
    initializers that pin workers to one thread) can flip the env var."""
    env = os.environ.get("REPRO_NUM_THREADS")
    if env:
        try:
            n = int(env)
        except ValueError:
            n = 0
        if n >= 1:
            return n
    return _available_cores()


def _get_pool(width: int) -> ThreadPoolExecutor:
    """The shared pool, grown (never shrunk) to at least ``width``."""
    global _pool, _pool_width
    with _lock:
        if _pool is None or _pool_width < width:
            if _pool is not None:
                _pool.shutdown(wait=False)
            _pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-intra-op")
            _pool_width = width
        return _pool


class collect_stats:
    """Context manager routing per-call tiling stats into ``sink``.

    While active, every :func:`parallel_map` call appends
    ``{"tag": ..., "tiles": n, "workers": w}`` — including serial
    degradations (``workers=1``), so the profiler can report utilization
    honestly on 1-core hosts.
    """

    def __init__(self, sink: list):
        self.sink = sink
        self._prev: list | None = None

    def __enter__(self):
        global _stats_sink
        self._prev = _stats_sink
        _stats_sink = self.sink
        return self.sink

    def __exit__(self, *exc):
        global _stats_sink
        _stats_sink = self._prev
        return False


def _record(tag: str, tiles: int, workers: int) -> None:
    sink = _stats_sink
    if sink is not None:
        sink.append({"tag": tag, "tiles": tiles, "workers": workers})


def parallel_map(fn, items: list, *, workers: int | None = None,
                 tag: str = "tile") -> list:
    """``[fn(x) for x in items]`` fanned over the shared pool, results in
    submission order.

    ``workers`` caps the fan-out (defaults to :func:`num_threads`).  Runs
    serially when the cap, the item count, or nesting (already inside a
    pool worker) makes threading pointless.
    """
    n = len(items)
    w = num_threads() if workers is None else workers
    w = max(1, min(w, n))
    if w <= 1 or n <= 1 or getattr(_tls, "inside", False):
        _record(tag, n, 1)
        return [fn(item) for item in items]
    _record(tag, n, w)
    pool = _get_pool(w)

    def run(item):
        _tls.inside = True
        try:
            return fn(item)
        finally:
            _tls.inside = False

    return list(pool.map(run, items))
