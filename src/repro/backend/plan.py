"""Compiled execution plans: interpret a graph once, run it many times.

``Executor.run`` re-interprets the IR per call — per node it rebuilds the
argument list from a values dict, walks a ~25-way op dispatch, re-casts and
re-reshapes the weights, and stores every intermediate until the end of the
run.  :func:`compile_plan` pays all of that exactly once:

* **Bound closures** — each node is lowered to a closure with the kernel,
  attributes, and (pre-cast, pre-reshaped) weight operands baked in, so the
  per-run work per node is one function call.
* **Memory plan** — value lifetimes are liveness-analysed at compile time:
  values are assigned arena slots reused across disjoint live ranges, dead
  intermediates are dropped the step they die, and elementwise ops whose
  input buffer dies at the node write **in place**.  An aliasing analysis
  (view-producing ops: identity/reshape/flatten/transpose/slice) keeps
  in-place rewrites off buffers that are still visible through a view, off
  constants, and off the caller's input array.
* **Plan passes** — the bit-exact pipeline ``PLAN_PASSES`` (identity
  elimination, transpose/reshape folding, conv+relu attachment, elementwise
  chain fusion) runs after ``Executor.prepare``, so backend-option rewrites
  like conv+BN fusion still happen exactly as in the interpreted path.
* **Fast kernels** — 1×1 convolutions skip the im2col gather entirely and
  grouped/depthwise convolutions run as one batched GEMM instead of a
  Python loop over groups.  Both changes feed BLAS the same operand values
  and layouts as the interpreter, so outputs stay bit-identical.

Exact numeric parity with ``Executor.run`` on the same graph and options is
a hard contract, enforced by ``tests/test_backend_plan.py`` and gated in CI
by ``benchmarks/bench_perf.py``.

``ExecutionPlan.run(x)`` executes one batch; ``run_batch([x1, x2, ...])``
concatenates the pieces and carries the whole minibatch through the plan in
a single pass (``run_batch([x])`` equals ``run(x)``).
"""

from __future__ import annotations

import threading
import time
from functools import partial

import numpy as np

from . import ops
from .executor import _run_reshape
from .ir import Graph, Node
from .passes import PLAN_PASSES

__all__ = ["ExecutionPlan", "compile_plan", "compile_cached"]


#: Ops whose output may alias (view) their input buffer.
_VIEW_OPS = frozenset({"identity", "reshape", "flatten", "transpose",
                       "slice"})
#: Single-data-input ops with a bit-exact ``out=`` form.
_INPLACE_UNARY = frozenset({"relu", "clip", "scale"})
#: Two-input elementwise ops with a bit-exact ``out=`` form.
_INPLACE_BINARY = frozenset({"add", "mul"})
#: Every node kind eligible for an in-place rewrite.
_INPLACE_OPS = _INPLACE_UNARY | _INPLACE_BINARY | {"fused_elementwise"}


# ---------------------------------------------------------------------------
# Kernel binding
# ---------------------------------------------------------------------------

def _bind_conv2d(node: Node, inits: dict, dt, ac, inplace: bool):
    a = node.attrs
    stride, padding = a["stride"], a["padding"]
    dilation, groups = a["dilation"], a["groups"]
    relu_after = a.get("activation") == "relu"
    w_raw = inits[node.inputs[1]]
    cout, cin_g, kh, kw = w_raw.shape
    # The interpreter casts/reshapes these on every call; same expressions,
    # evaluated once, give bit-identical operands.
    w = w_raw.astype(dt, copy=False)
    wg = w.reshape(groups, cout // groups, cin_g * kh * kw)
    bias = inits[node.inputs[2]] if len(node.inputs) > 2 else None
    bias_r = (None if bias is None
              else bias.astype(dt, copy=False).reshape(1, -1, 1, 1))
    k1 = kh == 1 and kw == 1 and groups == 1
    from repro.nn.functional import _patch_indices, im2col

    def _conv_out(size: int, k: int) -> int:
        eff = dilation * (k - 1) + 1
        return (size + 2 * padding - eff) // stride + 1

    # Per-input-shape scratch: padded map + column buffer, preallocated once
    # and reused every run (the arena part of the memory plan).  Bit parity
    # requires matching not just the gather's *values* but its memory
    # *layout* — BLAS rounding depends on operand strides.  im2col's fancy
    # gather yields a C-contiguous copy for k>1 (the take-gather below
    # reproduces it exactly) but a (positions, batch, channels)-ordered
    # transposed view for k==1 (a NumPy advanced-indexing artifact), which
    # the k1 buffer reproduces stride for stride.  Thread-local, because a
    # cached plan is shared by every caller and sweeps run plans from
    # thread pools — two threads must never fill the same buffer.
    tls = threading.local()

    def _plan_for(shape):
        scratch = getattr(tls, "scratch", None)
        if scratch is None:
            scratch = tls.scratch = {}
        st = scratch.get(shape)
        if st is None:
            n, c, h, w_sp = shape
            oh, ow = _conv_out(h, kh), _conv_out(w_sp, kw)
            need_h = (oh - 1) * stride + dilation * (kh - 1) + 1
            need_w = (ow - 1) * stride + dilation * (kw - 1) + 1
            pad_b = max(0, need_h - (h + padding))
            pad_r = max(0, need_w - (w_sp + padding))
            hp, wp = h + padding + pad_b, w_sp + padding + pad_r
            xp = (np.empty((n, c, hp, wp), dt)
                  if hp != h or wp != w_sp else None)
            if k1:
                colsbuf = np.empty((oh * ow, n, c), dt)
                flat = None
            else:
                rows, cols_i = _patch_indices(h, w_sp, kh, kw, stride,
                                              dilation, oh, ow)
                flat = np.ascontiguousarray((rows * wp + cols_i).ravel())
                colsbuf = np.empty((n, c, flat.size), dt)
            if len(scratch) >= 4:            # bound per-closure scratch
                scratch.clear()
            st = scratch[shape] = (oh, ow, flat, xp, colsbuf, hp, wp)
        return st

    def fn(x):
        x = x.astype(dt, copy=False)
        n, c = x.shape[0], x.shape[1]
        if kh == 1 and kw == 1 and groups > 1:
            # Rare shape (grouped pointwise): replicate the interpreter's
            # gather verbatim rather than model its layout.
            cols, meta = im2col(x, kh, kw, stride, padding, dilation)
            oh, ow = meta[6], meta[7]
            cols = cols.reshape(n, groups, cin_g * kh * kw, oh * ow)
        else:
            oh, ow, flat, xp, colsbuf, hp, wp = _plan_for(x.shape)
            if xp is None:
                src = x
            else:
                xp.fill(0.0)
                xp[:, :, padding:padding + x.shape[2],
                   padding:padding + x.shape[3]] = x
                src = xp
            if k1:
                sel = src[:, :, ::stride, ::stride][:, :, :oh, :ow]
                colsbuf.reshape(oh, ow, n, c)[:] = sel.transpose(2, 3, 0, 1)
                cols = colsbuf.transpose(1, 2, 0)    # interpreter's k==1 view
            else:
                np.take(src.reshape(n, c, hp * wp), flat, axis=2,
                        out=colsbuf)
                cols = colsbuf.reshape(n, groups, cin_g * kh * kw, oh * ow)
        if groups == 1:
            cols2 = cols if k1 else cols[:, 0]
            out = ops.matmul_accum(wg[0], cols2, dtype=dt, accum_chunk=ac)
        else:
            # One batched GEMM over the group axis; per-slice operands match
            # the interpreter's per-group matmul_accum calls exactly.
            out = ops.matmul_accum(wg, cols, dtype=dt, accum_chunk=ac)
        out = out.reshape(n, cout, oh, ow)
        if bias_r is not None:
            np.add(out, bias_r, out=out)
        out = out.astype(dt, copy=False)
        if relu_after:
            np.maximum(out, 0, out=out)
        return out

    return fn


def _requant_inplace(out: np.ndarray, y_zp: float, relu_after: bool,
                     store: np.ndarray | None = None) -> np.ndarray:
    """In-place tail of the q-op kernels (relu/round/zero-point/clip) —
    the same elementwise f64 steps as ops.qconv2d/qlinear after their
    combined-multiplier scaling, so codes are bit-identical.

    ``store`` recycles the (dead) float32 accumulator as the result
    buffer: the final clip casts on store, which is exact for codes in
    [-128, 127] and keeps downstream tensor traffic at 4 bytes/element.
    """
    np.round(out, out=out)
    if y_zp:
        np.add(out, y_zp, out=out)
    # relu folds into the clip floor: max(v,0)->round->+zp->clip(-128,127)
    # equals round->+zp->clip(zp,127) exactly (case analysis on sign of v),
    # saving one full pass.  The interpreter keeps the max() form; the
    # results are provably identical, not merely close.
    lo = y_zp if relu_after else -128
    if store is not None:
        np.clip(out, lo, 127, out=store)
        return store
    np.clip(out, lo, 127, out=out)
    return out


def _gemm_dtype(codes: np.ndarray, axes: tuple) -> type:
    """Narrowest float dtype that accumulates these INT8 codes *exactly*.

    Shifted activation codes satisfy |c - zp| <= 255, so every partial sum
    of any output element is bounded by ``255 * sum(|w_codes|)`` over the
    contraction axes.  When the worst channel stays below 2**24 every
    intermediate is an exactly representable float32 integer and SGEMM
    (~2x DGEMM throughput) returns the same integers as float64 would.
    """
    bound = 255.0 * float(np.abs(codes.astype(np.float64)).sum(axis=axes).max())
    return np.float32 if bound < 2.0 ** 24 else np.float64


def _bind_qdepthwise(w_codes: np.ndarray, a: dict, gemm_dt) -> "callable":
    """Depthwise integer conv as direct tap accumulation.

    A depthwise kernel is kh*kw multiply-adds per output element; im2col +
    batched 1xk GEMMs (the float path's layout-parity-preserving route)
    spends more time gathering than multiplying.  Because the integer
    accumulation is *exact*, summation order is free — so the taps are
    accumulated directly over strided views of the padded map, which is
    both allocation-light and BLAS-free.  Only legal for q-ops: the float
    path must keep the interpreter's GEMM order to stay bit-identical.
    """
    stride, padding = a["stride"], a["padding"]
    dilation = a["dilation"]
    cout, _, kh, kw = w_codes.shape
    taps = w_codes.reshape(cout, kh, kw)

    def conv(xs):
        n, c, h, w_sp = xs.shape
        oh = (h + 2 * padding - dilation * (kh - 1) - 1) // stride + 1
        ow = (w_sp + 2 * padding - dilation * (kw - 1) - 1) // stride + 1
        if padding:
            xp = np.zeros((n, c, h + 2 * padding, w_sp + 2 * padding),
                          gemm_dt)
            xp[:, :, padding:padding + h, padding:padding + w_sp] = xs
        else:
            xp = xs
        acc = None
        tmp = None
        for ki in range(kh):
            for kj in range(kw):
                view = xp[:, :,
                          ki * dilation:ki * dilation
                          + (oh - 1) * stride + 1:stride,
                          kj * dilation:kj * dilation
                          + (ow - 1) * stride + 1:stride]
                wt = taps[:, ki, kj].reshape(1, -1, 1, 1)
                if acc is None:
                    acc = view * wt
                    tmp = np.empty_like(acc)
                else:
                    np.multiply(view, wt, out=tmp)
                    acc += tmp
        return acc

    return conv


def _bind_qconv2d(node: Node, inits: dict, inplace: bool):
    """Integer fast-path conv: the scratch-buffered conv machinery running
    on weight *codes*, then an in-place requant.

    The accumulation is exact integer arithmetic (see ops.qconv2d), so the
    layout/scratch differences vs the interpreter's naive im2col cannot
    change a single bit — which is what lets this binding go fast without
    a parity-matching contortion.  For the same reason the GEMM may run in
    float32 whenever :func:`_gemm_dtype` proves the accumulator fits.
    """
    a = node.attrs
    gemm_dt = _gemm_dtype(inits[node.inputs[1]], (1, 2, 3))
    w_codes = inits[node.inputs[1]].astype(gemm_dt)
    cout, cin_g, kh, kw = w_codes.shape
    if cin_g == 1 and a["groups"] == cout:
        conv = _bind_qdepthwise(w_codes, a, gemm_dt)
    else:
        conv_node = Node("conv2d", node.inputs[:2], node.output,
                         {k: a[k] for k in ("stride", "padding", "dilation",
                                            "groups")}, node.name)
        conv = _bind_conv2d(conv_node, {node.inputs[1]: w_codes},
                            gemm_dt, None, inplace)
    m_r = ops.requant_scale(inits[node.inputs[2]], x_scale=a["x_scale"],
                            y_scale=a["y_scale"]).reshape(1, -1, 1, 1)
    bias = inits[node.inputs[3]] if len(node.inputs) > 3 else None
    bias_r = (None if bias is None
              else (np.asarray(bias, dtype=np.float64)
                    / float(a["y_scale"])).reshape(1, -1, 1, 1))
    relu_after = a.get("activation") == "relu"
    x_zp = float(a["x_zero_point"])
    y_zp = float(a["y_zero_point"])

    def fn(x):
        xs = x.astype(gemm_dt, copy=False)
        if x_zp:
            xs = xs - gemm_dt(x_zp)
        # Mixed-dtype multiply: the f32 accumulator promotes to f64 exactly
        # inside the ufunc, so one pass both converts and scales — bits
        # match the interpreter's all-float64 kernel.
        acc = conv(xs)
        out = np.multiply(acc, m_r)
        if bias_r is not None:
            np.add(out, bias_r, out=out)
        return _requant_inplace(out, y_zp, relu_after,
                                acc if acc.dtype == np.float32 else None)

    return fn


def _bind_qlinear(node: Node, inits: dict):
    a = node.attrs
    gemm_dt = _gemm_dtype(inits[node.inputs[1]], (1,))
    wt = inits[node.inputs[1]].astype(gemm_dt).T
    m = ops.requant_scale(inits[node.inputs[2]], x_scale=a["x_scale"],
                          y_scale=a["y_scale"])
    bias = inits[node.inputs[3]] if len(node.inputs) > 3 else None
    bias_c = (None if bias is None
              else np.asarray(bias, dtype=np.float64) / float(a["y_scale"]))
    relu_after = a.get("activation") == "relu"
    x_zp = float(a["x_zero_point"])
    y_zp = float(a["y_zero_point"])

    def fn(x):
        xs = x.astype(gemm_dt, copy=False)
        if x_zp:
            xs = xs - gemm_dt(x_zp)
        acc = ops.matmul_accum(xs, wt, dtype=gemm_dt)
        out = np.multiply(acc, m)
        if bias_c is not None:
            np.add(out, bias_c, out=out)
        return _requant_inplace(out, y_zp, relu_after,
                                acc if acc.dtype == np.float32 else None)

    return fn


def _bind_linear(node: Node, inits: dict, dt, ac):
    wt = inits[node.inputs[1]].T.astype(dt, copy=False)
    bias = inits[node.inputs[2]] if len(node.inputs) > 2 else None
    bias_c = None if bias is None else bias.astype(dt, copy=False)

    def fn(x):
        out = ops.matmul_accum(x, wt, dtype=dt, accum_chunk=ac)
        if bias_c is not None and out.dtype == dt:
            np.add(out, bias_c, out=out)
        elif bias_c is not None:                      # pragma: no cover
            out = (out + bias_c).astype(dt, copy=False)
        return out

    return fn


def _bind_batchnorm(node: Node, inits: dict, dt):
    gamma, beta, mean, var = (inits[v] for v in node.inputs[1:5])
    eps = node.attrs["eps"]
    scale = (gamma / np.sqrt(var + eps)).astype(dt)
    shift = (beta - mean * gamma / np.sqrt(var + eps)).astype(dt)

    def fn(x):
        shp = (1, -1) + (1,) * (x.ndim - 2)
        out = x.astype(dt, copy=False) * scale.reshape(shp)
        np.add(out, shift.reshape(shp), out=out)
        return out.astype(dt, copy=False)

    return fn


def _bind_layernorm(node: Node, inits: dict, dt):
    gamma = inits[node.inputs[1]].astype(dt)
    beta = inits[node.inputs[2]].astype(dt)
    eps = node.attrs["eps"]

    def fn(x):
        x = x.astype(dt, copy=False)
        mu = x.mean(axis=-1, keepdims=True)
        d = x - mu
        var = (d ** 2).mean(axis=-1, keepdims=True)
        np.divide(d, np.sqrt(var + eps), out=d)
        np.multiply(d, gamma, out=d)
        np.add(d, beta, out=d)
        return d.astype(dt, copy=False)

    return fn


def _bind_generic(node: Node, opts, inplace: bool):
    """Kernel for the remaining ops, mirroring the interpreter's dispatch."""
    a = node.attrs
    op = node.op
    dt = None if opts is None else opts.np_dtype

    # In-place forms are bit-identical only when they also preserve the
    # layout the interpreter would have produced: a fresh elementwise result
    # is C-contiguous, and downstream reductions are order-sensitive to
    # strides, so in-place writes additionally require a contiguous target.
    if op == "relu":
        if inplace:
            def kernel(x):
                if x.flags.c_contiguous:
                    return np.maximum(x, 0, out=x)
                return np.maximum(x, 0)
        else:
            kernel = ops.relu
    elif op == "gelu":
        if opts is not None and opts.alt_gelu:
            return lambda x: ops.gelu(x).astype(dt, copy=False)
        kernel = ops.gelu_tanh
    elif op == "sigmoid":
        if opts is not None and opts.fast_sigmoid:
            return ops.hard_sigmoid
        kernel = ops.sigmoid
    elif op == "softmax":
        if opts is not None and opts.fast_softmax:
            return partial(ops.softmax_fast, axis=a["axis"])
        kernel = partial(ops.softmax, axis=a["axis"])
    elif op == "add":
        if inplace:
            def kernel(x, y):
                if (x.flags.c_contiguous
                        and x.shape == np.broadcast_shapes(x.shape, y.shape)
                        and np.result_type(x, y) == x.dtype):
                    return np.add(x, y, out=x)
                return x + y
        else:
            kernel = lambda x, y: x + y
    elif op == "mul":
        if inplace:
            def kernel(x, y):
                if (x.flags.c_contiguous
                        and x.shape == np.broadcast_shapes(x.shape, y.shape)
                        and np.result_type(x, y) == x.dtype):
                    return np.multiply(x, y, out=x)
                return x * y
        else:
            kernel = lambda x, y: x * y
    elif op in ("maxpool", "avgpool"):
        ceil = a["ceil_mode"]
        if opts is not None and opts.ceil_mode_override is not None:
            ceil = opts.ceil_mode_override     # resolved once, at plan time
        pool = ops.max_pool2d if op == "maxpool" else ops.avg_pool2d
        kernel = partial(pool, kernel_size=a["kernel_size"],
                         stride=a["stride"], padding=a["padding"],
                         ceil_mode=ceil)
    elif op == "global_avgpool":
        kernel = ops.global_avg_pool2d
    elif op == "upsample":
        mode = a["mode"]
        if opts is not None and opts.upsample_mode_override is not None:
            mode = opts.upsample_mode_override
        kernel = partial(ops.upsample2d, scale_factor=a["scale_factor"],
                         mode=mode)
    elif op == "flatten":
        kernel = lambda x: x.reshape(x.shape[0], -1)
    elif op == "reshape":
        kernel = lambda x, _node=node: _run_reshape(_node, x)
    elif op == "identity":
        kernel = lambda x: x
    elif op == "constant":
        value = np.asarray(a["value"])
        if dt is not None:
            value = value.astype(dt, copy=False)
        return lambda _value=value: _value
    elif op == "clip":
        lo, hi = a["lo"], a["hi"]
        if inplace:
            def kernel(x):
                if x.flags.c_contiguous:
                    return np.clip(x, lo, hi, out=x)
                return np.clip(x, lo, hi)
        else:
            kernel = lambda x: np.clip(x, lo, hi)
    elif op == "quantize_linear":
        scale, zp = a["scale"], a["zero_point"]
        kernel = lambda x: np.clip(np.round(x / scale) + zp, -128, 127)
    elif op == "qrelu":
        zp = a["zero_point"]
        kernel = lambda x: np.maximum(x, zp)
    elif op == "dequantize_linear":
        scale, zp = a["scale"], a["zero_point"]
        kernel = lambda x: (x - zp) * scale
    elif op == "transpose":
        kernel = lambda x, _perm=tuple(a["perm"]): x.transpose(_perm)
    elif op == "concat":
        kernel = lambda *xs: np.concatenate(xs, axis=a["axis"])
    elif op == "slice":
        axis, start, stop = a["axis"], a["start"], a["stop"]

        def kernel(x):
            index = [slice(None)] * x.ndim
            index[axis] = slice(start, stop)
            return x[tuple(index)]
    elif op == "mean":
        kernel = lambda x: x.mean(axis=a["axis"])
    elif op == "expand_like":
        def kernel(ref, value):
            return np.broadcast_to(
                value, (ref.shape[0],) + value.shape[1:]).copy()
    elif op == "scale":
        factor = a["factor"]
        if inplace:
            def kernel(x):
                if x.flags.c_contiguous:
                    return np.multiply(x, factor, out=x)
                return x * factor
        else:
            kernel = lambda x: x * factor
    else:
        raise NotImplementedError(f"no plan kernel for op {node.op!r}")

    if dt is None:
        return kernel
    # Deployment interpreter: every generic op's output is forced back to
    # the storage dtype (same astype(copy=False), so views stay views).
    return lambda *xs, _k=kernel: _k(*xs).astype(dt, copy=False)


def _bind_node(node: Node, inits: dict, opts, inplace: bool):
    """The bound kernel for one node (runtime args = non-initializer inputs)."""
    dt = np.float64 if opts is None else opts.np_dtype
    ac = None if opts is None else opts.accum_chunk
    if node.op == "conv2d":
        return _bind_conv2d(node, inits, dt, ac, inplace)
    if node.op == "linear":
        return _bind_linear(node, inits, dt, ac)
    if node.op == "qconv2d":
        return _bind_qconv2d(node, inits, inplace)
    if node.op == "qlinear":
        return _bind_qlinear(node, inits)
    if node.op == "batchnorm":
        return _bind_batchnorm(node, inits, dt)
    if node.op == "layernorm":
        return _bind_layernorm(node, inits, dt)
    if node.op == "matmul":
        tb = node.attrs["transpose_b"]

        def fn(x, y, _tb=tb, _dt=dt, _ac=ac):
            if _tb:
                y = np.swapaxes(y, -1, -2)
            return ops.matmul_accum(x, y, dtype=_dt, accum_chunk=_ac)

        kernel = fn
    elif node.op == "fused_elementwise":
        subs = []
        for j, sub in enumerate(node.attrs["chain"]):
            # Chain intermediates are freshly allocated by the previous sub-
            # kernel, so every sub past the head may always write in place.
            subs.append(_bind_generic(sub, opts, inplace or j > 0))

        def kernel(x, _subs=tuple(subs)):
            for f in _subs:
                x = f(x)
            return x
    else:
        return _bind_generic(node, opts, inplace)

    # matmul / fused chains may still see initializer operands via the
    # generic const-injection wrapper installed by the planner.
    return kernel


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------

class ExecutionPlan:
    """A precompiled schedule of bound kernels with an arena memory plan.

    Build through :meth:`Executor.compile` / :func:`compile_plan`; ``graph``
    must already be prepared (backend rewrites applied).
    """

    def __init__(self, graph: Graph, cast_input, options=None,
                 backend: str = "plan") -> None:
        self.graph = graph
        self.options = options
        self.backend = backend
        self._cast_input = cast_input
        self._build()

    # -- compilation --------------------------------------------------------

    def _build(self) -> None:
        graph = self.graph
        nodes = graph.nodes
        inits = graph.initializers
        end = len(nodes)

        # Liveness: last consuming step per slot-resident value.
        last_use: dict[str, int] = {}
        for i, node in enumerate(nodes):
            for v in node.inputs:
                if v not in inits:
                    last_use[v] = i
        last_use[graph.output] = end

        # Aliasing: view-producing ops join their input's buffer group;
        # groups rooted at the caller's input, at constants, or at
        # initializer views must never be written in place.
        group_of: dict[str, int] = {graph.input: 0}
        writable: dict[int, bool] = {0: False}
        next_gid = 1
        for node in nodes:
            if node.op in _VIEW_OPS and node.inputs[0] in group_of:
                gid = group_of[node.inputs[0]]
            else:
                gid = next_gid
                next_gid += 1
                writable[gid] = not (node.op == "constant"
                                     or (node.op in _VIEW_OPS
                                         and node.inputs[0] in inits))
            group_of[node.output] = gid
        group_last: dict[int, int] = {}
        for v, gid in group_of.items():
            group_last[gid] = max(group_last.get(gid, -1),
                                  last_use.get(v, -1))

        def may_write_inplace(i: int, node: Node) -> bool:
            if node.op not in _INPLACE_OPS:
                return False
            target = node.inputs[0]
            gid = group_of.get(target)
            if gid is None or not writable[gid] or group_last[gid] != i:
                return False
            if last_use.get(target) != i:
                return False
            # A second operand aliasing the target through a *different*
            # value would partially overlap the output buffer.
            for other in node.inputs[1:]:
                if other != target and group_of.get(other) == gid:
                    return False
            return True

        # Slot assignment: a free-list arena over value live ranges.
        free: list[int] = []
        n_slots = 0

        def alloc() -> int:
            nonlocal n_slots
            if free:
                return free.pop()
            n_slots += 1
            return n_slots - 1

        slot_of: dict[str, int] = {graph.input: alloc()}
        steps = []
        for i, node in enumerate(nodes):
            fn = _bind_node(node, inits, self.options,
                            may_write_inplace(i, node))
            src_slots = []
            consts = []           # (position, raw array) for initializer args
            for pos, v in enumerate(node.inputs):
                if v in inits and node.op not in ("conv2d", "linear",
                                                  "qconv2d", "qlinear",
                                                  "batchnorm", "layernorm"):
                    consts.append((pos, inits[v]))
                elif v not in inits:
                    src_slots.append(slot_of[v])
            if consts:
                fn = _inject_consts(fn, consts, len(node.inputs))
            released = []
            for v in set(node.inputs):
                if v in slot_of and last_use.get(v) == i:
                    released.append(slot_of[v])
                    free.append(slot_of[v])
                    del slot_of[v]
            dst = alloc()
            slot_of[node.output] = dst
            steps.append((fn, tuple(src_slots), dst,
                          tuple(s for s in released if s != dst)))

        self._steps = steps
        self.n_slots = n_slots
        self._input_slot = 0
        self._output_slot = (slot_of[graph.output]
                             if graph.output in slot_of else 0)

    # -- execution ----------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on one batch; bit-identical to ``Executor.run``."""
        env: list = [None] * self.n_slots
        env[self._input_slot] = self._cast_input(x)
        for fn, srcs, dst, releases in self._steps:
            n = len(srcs)
            if n == 1:
                value = fn(env[srcs[0]])
            elif n == 2:
                value = fn(env[srcs[0]], env[srcs[1]])
            elif n == 0:
                value = fn()
            else:
                value = fn(*[env[s] for s in srcs])
            env[dst] = value
            for s in releases:
                env[s] = None
        return env[self._output_slot]

    __call__ = run

    def run_instrumented(self, x: np.ndarray) -> tuple[np.ndarray, list]:
        """:meth:`run` with per-step wall time and intra-op tiling stats.

        Returns ``(output, records)`` where each record is one step's
        ``{"name", "op", "time_s", "tiles", "workers"}`` — ``tiles`` and
        ``workers`` aggregated from every :func:`~repro.backend.parallel.
        parallel_map` call the step's kernel made (0/1 when the kernel never
        reached the pool, including serial degradation on 1-core hosts).
        Steps are one-to-one with ``graph.nodes``, so records line up with
        static profiles.  The instrumented pass computes exactly what
        :meth:`run` computes — stats collection adds list appends, nothing
        that perturbs kernel arithmetic.
        """
        from . import parallel
        records = []
        env: list = [None] * self.n_slots
        env[self._input_slot] = self._cast_input(x)
        for (fn, srcs, dst, releases), node in zip(self._steps,
                                                   self.graph.nodes):
            sink: list = []
            start = time.perf_counter()
            with parallel.collect_stats(sink):
                value = fn(*[env[s] for s in srcs])
            elapsed = time.perf_counter() - start
            env[dst] = value
            for s in releases:
                env[s] = None
            records.append({
                "name": node.name or node.output, "op": node.op,
                "time_s": elapsed,
                "tiles": sum(rec["tiles"] for rec in sink),
                "workers": max((rec["workers"] for rec in sink), default=1),
            })
        return env[self._output_slot], records

    def run_batch(self, batches) -> np.ndarray:
        """Carry a whole minibatch through the plan in one pass.

        ``batches`` is a sequence of batch arrays (each ``(N_i, ...)``);
        they are concatenated along the batch axis and executed in a single
        plan traversal, so ``run_batch([x])`` equals ``run(x)`` exactly.
        """
        batches = [np.asarray(b) for b in batches]
        if not batches:
            raise ValueError("run_batch needs at least one batch")
        if len(batches) == 1:
            return self.run(batches[0])
        return self.run(np.concatenate(batches, axis=0))

    # -- reporting ----------------------------------------------------------

    def describe(self) -> str:
        """One-line memory-plan summary (used by tests and docs)."""
        fused = sum(1 for n in self.graph.nodes
                    if n.op == "fused_elementwise"
                    or n.attrs.get("activation"))
        return (f"{self.backend}: {len(self._steps)} steps, "
                f"{self.n_slots} buffer slots "
                f"({len(self.graph.nodes) + 1} values), {fused} fused nodes")


def _inject_consts(fn, consts, n_inputs):
    """Wrap ``fn`` so initializer-valued operands are supplied at their
    original positions (as raw arrays, exactly like the interpreter)."""
    const_at = dict(consts)

    def wrapped(*slot_args):
        args = []
        it = iter(slot_args)
        for pos in range(n_inputs):
            args.append(const_at[pos] if pos in const_at else next(it))
        return fn(*args)

    return wrapped


# ---------------------------------------------------------------------------
# Compilation entry points + cache
# ---------------------------------------------------------------------------

def compile_plan(graph: Graph, executor, optimize: bool = True) -> ExecutionPlan:
    """Compile ``graph`` for ``executor`` (uncached).

    With ``optimize`` the bit-exact ``PLAN_PASSES`` pipeline runs after the
    executor's own :meth:`prepare`; without it the plan schedules the
    prepared graph as-is (useful to isolate pass effects in tests).
    """
    prepared = executor.prepare(graph)
    if optimize:
        for p in PLAN_PASSES:
            prepared = p(prepared)
    return ExecutionPlan(prepared, executor.cast_input,
                         options=getattr(executor, "options", None),
                         backend=executor.name)


def compile_cached(graph: Graph, executor, optimize: bool = True) -> ExecutionPlan:
    """:func:`compile_plan` memoised per (graph identity, backend options).

    Delegates to the executor's token-keyed prepared cache
    (:func:`~repro.backend.executor.prepare_cached`), so plans share its
    guarantees: keys use the never-recycled ``object_token`` scheme and a
    recycled ``id()`` can never serve a plan compiled for a dead graph;
    entries are evicted when the graph is collected.
    """
    from .executor import prepare_cached
    key = ("plan", type(executor).__name__,
           getattr(executor, "options", None), bool(optimize))
    return prepare_cached(
        graph, key, lambda g: compile_plan(g, executor, optimize=optimize))
