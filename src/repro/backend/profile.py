"""Op-level cost model and runtime profiler for deployment graphs.

Vendor toolchains report a per-layer profile (FLOPs, weights, activation
memory, measured time) after import; this module reproduces that report so
SysNoise investigations can weigh a noise source against how much compute
sits behind it (e.g. the ceil-mode pool is microscopic compute-wise yet
causes the largest ΔACC — the paper's core asymmetry).

FLOPs follow the usual multiply-add = 2 FLOPs convention.  Activation sizes
use a batch size of 1 (the symbolic dimension resolved to one sample).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .executor import Executor, ReferenceExecutor
from .ir import Graph, Node
from .shapes import infer_shapes

__all__ = ["OpProfile", "GraphProfile", "profile_graph", "render_profile"]


@dataclass(frozen=True)
class OpProfile:
    """Static cost of one node (batch size 1)."""

    name: str
    op: str
    output_shape: tuple
    flops: int
    params: int
    activation: int          # output elements


@dataclass
class GraphProfile:
    """Per-node profiles plus optional measured wall-clock totals."""

    ops: list[OpProfile]
    wall_time_s: float | None = None
    batch: int | None = None
    compiled: bool = False          # wall time measured on an ExecutionPlan
    #: Per-node intra-op parallelism records (compiled timing only): each is
    #: ``{"name", "op", "time_s", "tiles", "workers"}`` from
    #: :meth:`~repro.backend.plan.ExecutionPlan.run_instrumented`.
    intra_op: list | None = None

    @property
    def total_flops(self) -> int:
        return sum(o.flops for o in self.ops)

    @property
    def total_params(self) -> int:
        return sum(o.params for o in self.ops)

    @property
    def peak_activation(self) -> int:
        return max((o.activation for o in self.ops), default=0)

    def heaviest(self, top: int = 5) -> list[OpProfile]:
        return sorted(self.ops, key=lambda o: o.flops, reverse=True)[:top]


def _resolve(shape: tuple, batch: int = 1) -> tuple:
    return tuple(batch if d is None else d for d in shape)


def _elements(shape: tuple) -> int:
    return int(np.prod(_resolve(shape))) if shape else 1


def _node_flops(node: Node, ins: list[tuple], out: tuple,
                weights: dict[str, np.ndarray]) -> int:
    op, a = node.op, node.attrs
    out_el = _elements(out)
    if op in ("conv2d", "qconv2d"):
        w = weights[node.inputs[1]]
        cin_g, kh, kw = w.shape[1], w.shape[2], w.shape[3]
        macs = out_el * cin_g * kh * kw
        # The integer fast path adds a requantization pass (scale, round,
        # clip) on top of the accumulation — ~4 elementwise ops per output.
        extra = 4 * out_el if op == "qconv2d" else 0
        return (2 * macs + extra + (out_el if len(node.inputs) > 2 else 0)
                + (out_el if a.get("activation") else 0))
    if op in ("linear", "qlinear"):
        w = weights[node.inputs[1]]
        rows = _elements(ins[0][:-1]) if len(ins[0]) > 1 else 1
        extra = 4 * out_el if op == "qlinear" else 0
        return 2 * rows * w.shape[0] * w.shape[1] + extra \
            + (out_el if len(node.inputs) > 2 else 0)
    if op == "qrelu":
        return out_el
    if op == "matmul":
        k = ins[0][-1]
        return 2 * out_el * (k or 1)
    if op in ("batchnorm", "layernorm"):
        return 4 * out_el                    # scale+shift (+stats for LN)
    if op in ("relu", "identity", "slice", "concat", "transpose", "reshape",
              "flatten", "expand_like", "constant", "clip", "scale"):
        return out_el if op in ("relu", "clip", "scale") else 0
    if op in ("gelu", "sigmoid", "softmax", "quantize_linear",
              "dequantize_linear"):
        return 6 * out_el                    # transcendental-ish per element
    if op in ("add", "mul"):
        return out_el
    if op in ("maxpool", "avgpool"):
        return out_el * a["kernel_size"] ** 2
    if op == "global_avgpool" or op == "mean":
        return _elements(ins[0])
    if op == "upsample":
        return out_el * (4 if a["mode"] == "bilinear" else 1)
    if op == "fused_elementwise":
        return sum(_node_flops(sub, ins, out, weights) for sub in a["chain"])
    return 0


def profile_graph(graph: Graph, input_shape: tuple = (None, 3, 32, 32), *,
                  x: np.ndarray | None = None,
                  executor: Executor | None = None,
                  repeats: int = 3, compiled: bool = False) -> GraphProfile:
    """Static per-op profile; pass ``x`` to also measure wall-clock time.

    The static part needs no data.  With ``x``, the graph runs
    ``repeats`` times under ``executor`` (reference by default) and the
    best wall time is recorded — the usual min-of-N timing discipline.
    ``compiled=True`` times the executor's compiled
    :class:`~repro.backend.plan.ExecutionPlan` instead of the interpreted
    ``run`` (compilation happens outside the timed region; outputs are
    bit-identical either way).
    """
    shapes = infer_shapes(graph, input_shape)
    ops = []
    for node in graph.nodes:
        ins = [shapes[v] for v in node.inputs]
        out = shapes[node.output]
        params = sum(int(graph.initializers[v].size) for v in node.inputs
                     if v in graph.initializers)
        ops.append(OpProfile(name=node.name or node.output, op=node.op,
                             output_shape=out,
                             flops=_node_flops(node, ins, out,
                                               graph.initializers),
                             params=params, activation=_elements(out)))
    profile = GraphProfile(ops)
    if x is not None:
        executor = executor or ReferenceExecutor()
        if compiled:
            plan = executor.compile(graph)
            run = plan.run
            profile.compiled = True
        else:
            run = lambda batch: executor.run(graph, batch)
        run(x)                       # warm caches outside the timed region
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run(x)
            best = min(best, time.perf_counter() - start)
        profile.wall_time_s = best
        profile.batch = len(x)
        if compiled:
            # One extra instrumented pass (outside the min-of-N timing):
            # per-node wall time plus how the intra-op pool tiled each
            # kernel — see render_profile's utilization report.
            _, profile.intra_op = plan.run_instrumented(x)
    return profile


def render_profile(profile: GraphProfile, top: int = 8) -> str:
    """Vendor-style profile report: totals plus the heaviest ops."""
    lines = [f"total: {profile.total_flops / 1e6:.2f} MFLOPs/sample, "
             f"{profile.total_params} params, "
             f"peak activation {profile.peak_activation} elems"]
    if profile.wall_time_s is not None:
        per = profile.wall_time_s / max(profile.batch or 1, 1)
        label = " (compiled plan)" if profile.compiled else ""
        lines[0] += f", measured {per * 1e3:.2f} ms/sample{label}"
    lines.append(f"{'layer':<32} {'op':<14} {'FLOPs':>12} {'params':>8} "
                 f"{'% FLOPs':>8}")
    total = max(profile.total_flops, 1)
    for op in profile.heaviest(top):
        lines.append(f"{op.name:<32} {op.op:<14} {op.flops:>12d} "
                     f"{op.params:>8d} {100 * op.flops / total:>7.1f}%")
    if profile.intra_op:
        from .parallel import num_threads
        width = num_threads()
        threaded = [r for r in profile.intra_op if r["workers"] > 1]
        busy = sum(r["time_s"] for r in threaded)
        wall = sum(r["time_s"] for r in profile.intra_op) or 1.0
        lines.append("")
        lines.append(f"intra-op parallelism: pool width {width}, "
                     f"{len(threaded)}/{len(profile.intra_op)} nodes "
                     f"threaded ({100 * busy / wall:.0f}% of step time)")
        lines.append(f"{'layer':<32} {'op':<14} {'ms':>8} {'tiles':>6} "
                     f"{'workers':>8}")
        heaviest = sorted(profile.intra_op, key=lambda r: r["time_s"],
                          reverse=True)[:top]
        for r in heaviest:
            lines.append(f"{r['name']:<32} {r['op']:<14} "
                         f"{r['time_s'] * 1e3:>8.2f} {r['tiles']:>6d} "
                         f"{r['workers']:>8d}")
    return "\n".join(lines)
