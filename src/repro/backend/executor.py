"""Graph executors: the reference backend and configurable vendor backends.

:class:`ReferenceExecutor` is the bit-faithful float64 interpreter — the
stand-in for the training framework's own inference path.

:class:`DeploymentExecutor` is a vendor-operator-library persona.  Its
:class:`BackendOptions` expose the implementation choices real accelerator
stacks make — storage/compute precision, tiled accumulation, conv+BN fusion,
fast transcendental approximations, and the ceil-mode / upsample-mode
conventions the SysNoise paper perturbs.  Three presets mirror the paper's
named deployment targets:

* ``gpu-fp16``     — TensorRT-style: fp16 storage, fused conv+BN, tiled GEMM;
* ``dsp``          — SNPE-style: fp32, hard sigmoid, erf gelu, polynomial
  exp, ceil-mode pooling;
* ``npu-bilinear`` — CANN-style: fp32, fused, bilinear upsample convention.

Every executor can retain intermediate activations (``keep_intermediates``)
so :mod:`repro.backend.compare` can localise where two backends diverge.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from . import ops
from .ir import Graph, Node

__all__ = ["BackendOptions", "Executor", "ReferenceExecutor",
           "DeploymentExecutor", "BACKEND_PRESETS", "create_backend",
           "prepare_cached", "prepared_cache_stats", "clear_prepared_cache"]


@dataclass(frozen=True)
class BackendOptions:
    """Implementation choices of a deployment operator library."""

    dtype: str = "float32"              # float64 | float32 | float16
    accum_chunk: int | None = None      # tiled GEMM slab size (None = fused)
    fuse_conv_bn: bool = True           # fold BN into conv weights at load
    alt_gelu: bool = False              # erf-exact gelu (runtime uses tanh)
    fast_sigmoid: bool = False          # hard sigmoid (relu6(x+3)/6)
    fast_softmax: bool = False          # polynomial exp
    ceil_mode_override: bool | None = None     # force pooling shape convention
    upsample_mode_override: str | None = None  # force upsample interpolation

    @property
    def np_dtype(self):
        return {"float64": np.float64, "float32": np.float32,
                "float16": np.float16}[self.dtype]


#: Named vendor personas (see module docstring).
BACKEND_PRESETS: dict[str, BackendOptions] = {
    "reference": BackendOptions(dtype="float64", fuse_conv_bn=False),
    "gpu-fp16": BackendOptions(dtype="float16", accum_chunk=32,
                               fuse_conv_bn=True),
    "dsp": BackendOptions(dtype="float32", accum_chunk=16, fuse_conv_bn=True,
                          fast_sigmoid=True, alt_gelu=True,
                          fast_softmax=True, ceil_mode_override=True),
    "npu-bilinear": BackendOptions(dtype="float32", fuse_conv_bn=True,
                                   upsample_mode_override="bilinear"),
}


# ---------------------------------------------------------------------------
# Prepared-graph cache: load-time rewrites (e.g. conv+BN fusion) and compiled
# plans run once per (graph, key) pair instead of on every Executor.run()
# call.  Keys are never-recycled identity tokens (the object_token scheme
# shared with :mod:`repro.core.cache`), so a recycled ``id()`` can never
# serve a stale prepared graph.  The cache is a count- *and* byte-bounded
# LRU (the DecodeCache discipline): prepared graphs and plans carry whole
# weight sets, so an unbounded cache would pin every model a long-lived
# process (the serve layer, a sweep worker) ever touched.  Dead graphs are
# additionally evicted eagerly by a weakref finalizer.
# ---------------------------------------------------------------------------

#: Prepared-cache bounds.  Byte accounting counts each entry's initializer
#: bytes (pre-cast kernel weight copies scale with the same quantity);
#: tests may lower these to exercise eviction.
PREPARED_CACHE_ENTRIES = 64
PREPARED_CACHE_BYTES = 256 << 20

_PREPARED: "OrderedDict[tuple, object]" = OrderedDict()
_PREPARED_TOKENS: set[int] = set()    # tokens with a registered finalizer
_PREPARED_NBYTES = 0
_PREPARED_HITS = 0
_PREPARED_MISSES = 0
# Reentrant: _evict_token runs as a weakref finalizer, which the cyclic GC
# may fire on *this* thread mid-critical-section (any allocation can trigger
# a collection).  Re-entry is safe — a finalizer only pops the dead graph's
# own keys, never one a live caller is working on.
_PREPARE_LOCK = threading.RLock()


def _graph_token(graph: Graph) -> int:
    # Deferred import: repro.core pulls in the model/task layers, which the
    # backend package must not require at import time.
    from repro.core.cache import object_token
    return object_token(graph)


def _prepared_sizeof(value) -> int:
    """Approximate retained bytes of a prepared graph or compiled plan."""
    graph = getattr(value, "graph", value)
    inits = getattr(graph, "initializers", None)
    if not isinstance(inits, dict):
        return 0
    return sum(int(getattr(a, "nbytes", 0)) for a in inits.values())


def _evict_token(token: int) -> None:
    """weakref finalizer: drop every entry of a collected graph."""
    global _PREPARED_NBYTES
    with _PREPARE_LOCK:
        _PREPARED_TOKENS.discard(token)
        stale = [k for k in _PREPARED if k[0] == token]
        for k in stale:
            _PREPARED_NBYTES -= _prepared_sizeof(_PREPARED.pop(k))


def prepare_cached(graph: Graph, key, transform):
    """``transform(graph)`` memoised per (graph identity, ``key``).

    ``key`` is any hashable describing the transform's configuration —
    a :class:`BackendOptions` for load-time rewrites, a richer tuple for
    compiled plans (:func:`repro.backend.plan.compile_cached` delegates
    here).  Graphs are treated as immutable once executed — the standard
    contract everywhere in :mod:`repro.backend` (passes return new graphs).
    Misses compute outside the lock; two threads may race to prepare the
    same entry and the result is simply stored twice (preparation is pure).
    """
    global _PREPARED_NBYTES, _PREPARED_HITS, _PREPARED_MISSES
    token = _graph_token(graph)
    full_key = (token, key)
    with _PREPARE_LOCK:
        hit = _PREPARED.get(full_key)
        if hit is not None:
            _PREPARED_HITS += 1
            _PREPARED.move_to_end(full_key)
            return hit
        _PREPARED_MISSES += 1
    out = transform(graph)
    with _PREPARE_LOCK:
        if token not in _PREPARED_TOKENS:
            _PREPARED_TOKENS.add(token)
            weakref.finalize(graph, _evict_token, token)
        old = _PREPARED.pop(full_key, None)
        if old is not None:
            _PREPARED_NBYTES -= _prepared_sizeof(old)
        _PREPARED[full_key] = out
        _PREPARED_NBYTES += _prepared_sizeof(out)
        while len(_PREPARED) > PREPARED_CACHE_ENTRIES or (
                _PREPARED_NBYTES > PREPARED_CACHE_BYTES
                and len(_PREPARED) > 1):
            _, evicted = _PREPARED.popitem(last=False)
            _PREPARED_NBYTES -= _prepared_sizeof(evicted)
    return out


def prepared_cache_stats() -> dict:
    """Entry/byte/hit counters of the prepared-graph cache (for tests and
    the profiler's cache report)."""
    with _PREPARE_LOCK:
        return {"entries": len(_PREPARED), "bytes": _PREPARED_NBYTES,
                "hits": _PREPARED_HITS, "misses": _PREPARED_MISSES}


def clear_prepared_cache() -> None:
    """Drop every prepared graph/plan (tests; frees pinned weight copies)."""
    global _PREPARED_NBYTES, _PREPARED_HITS, _PREPARED_MISSES
    with _PREPARE_LOCK:
        _PREPARED.clear()
        _PREPARED_NBYTES = 0
        _PREPARED_HITS = _PREPARED_MISSES = 0


def create_backend(name_or_options: "str | BackendOptions") -> "Executor":
    """Build an executor from a preset name or an options object."""
    if isinstance(name_or_options, str):
        if name_or_options == "reference":
            return ReferenceExecutor()
        try:
            opts = BACKEND_PRESETS[name_or_options]
        except KeyError:
            raise ValueError(f"unknown backend {name_or_options!r}; "
                             f"presets: {sorted(BACKEND_PRESETS)}") from None
        return DeploymentExecutor(opts)
    return DeploymentExecutor(name_or_options)


class Executor:
    """Base interpreter: evaluates a graph node by node.

    Subclasses customise per-op kernels by overriding ``run_node``; this base
    class owns value bookkeeping and intermediate retention.
    """

    name = "base"

    def __init__(self, keep_intermediates: bool = False):
        self.keep_intermediates = keep_intermediates
        self.intermediates: dict[str, np.ndarray] = {}

    def prepare(self, graph: Graph) -> Graph:
        """Hook for load-time graph rewriting (fusion etc.)."""
        return graph

    def compile(self, graph: Graph, optimize: bool = True):
        """Lower ``graph`` to a compiled :class:`~repro.backend.plan.ExecutionPlan`.

        The plan runs :meth:`prepare` (so backend-option rewrites such as
        conv+BN fusion still apply), then the bit-exact ``PLAN_PASSES``, and
        precomputes the whole schedule: bound per-node kernels, cast weights,
        and a liveness-analysed buffer plan.  ``plan.run`` / ``plan.run_batch``
        reproduce :meth:`run` bit for bit at a fraction of the dispatch cost.
        Plans are cached per (graph identity, backend options) — see
        :func:`repro.backend.plan.compile_cached`.
        """
        from .plan import compile_cached
        return compile_cached(graph, self, optimize=optimize)

    def run(self, graph: Graph, x: np.ndarray) -> np.ndarray:
        """Execute the graph on a batch and return the output array."""
        graph = self.prepare(graph)
        values: dict[str, np.ndarray] = {graph.input: self.cast_input(x)}
        self.intermediates = {}
        for node in graph.nodes:
            args = [values[v] if v in values else graph.initializers[v]
                    for v in node.inputs]
            out = self.run_node(node, args)
            values[node.output] = out
            if self.keep_intermediates:
                self.intermediates[node.name or node.output] = out
        return values[graph.output]

    __call__ = run

    def cast_input(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def run_node(self, node: Node, args: list[np.ndarray]) -> np.ndarray:
        raise NotImplementedError


def _run_reshape(node: Node, x: np.ndarray) -> np.ndarray:
    """ONNX-style reshape: 0 copies the input dim, -1 is inferred."""
    shape = tuple(x.shape[i] if s == 0 else s
                  for i, s in enumerate(node.attrs["shape"]))
    return x.reshape(shape)


class ReferenceExecutor(Executor):
    """Bit-faithful float64 interpreter — the training-system semantics."""

    name = "reference"

    def run_node(self, node: Node, args: list[np.ndarray]) -> np.ndarray:
        op = node.op
        a = node.attrs
        if op == "conv2d":
            x, w, *rest = args
            out = ops.conv2d(x, w, rest[0] if rest else None,
                             stride=a["stride"], padding=a["padding"],
                             dilation=a["dilation"], groups=a["groups"])
            if a.get("activation") == "relu":    # fuse_conv_relu peephole
                out = ops.relu(out)
            return out
        if op == "linear":
            x, w, *rest = args
            return ops.linear(x, w, rest[0] if rest else None)
        # Integer fast-path ops (lower_integer): exact code-space arithmetic,
        # identical bits under every executor — the deployment interpreter
        # deliberately has no override for them.
        if op == "qconv2d":
            x, w, ws, *rest = args
            return ops.qconv2d(x, w, ws, rest[0] if rest else None,
                               stride=a["stride"], padding=a["padding"],
                               dilation=a["dilation"], groups=a["groups"],
                               x_scale=a["x_scale"],
                               x_zero_point=a["x_zero_point"],
                               y_scale=a["y_scale"],
                               y_zero_point=a["y_zero_point"],
                               activation=a.get("activation"))
        if op == "qlinear":
            x, w, ws, *rest = args
            return ops.qlinear(x, w, ws, rest[0] if rest else None,
                               x_scale=a["x_scale"],
                               x_zero_point=a["x_zero_point"],
                               y_scale=a["y_scale"],
                               y_zero_point=a["y_zero_point"],
                               activation=a.get("activation"))
        if op == "qrelu":
            return np.maximum(args[0], a["zero_point"])
        if op == "batchnorm":
            return ops.batchnorm(*args, eps=a["eps"])
        if op == "relu":
            return ops.relu(args[0])
        if op == "gelu":
            # The training runtime (repro.nn) ships the tanh approximation,
            # so the *reference* semantics are tanh; the erf-exact form is a
            # deployment alternative (``BackendOptions.alt_gelu``).
            return ops.gelu_tanh(args[0])
        if op == "sigmoid":
            return ops.sigmoid(args[0])
        if op == "add":
            return args[0] + args[1]
        if op == "mul":
            return args[0] * args[1]
        if op == "maxpool":
            return ops.max_pool2d(args[0], a["kernel_size"], a["stride"],
                                  a["padding"], a["ceil_mode"])
        if op == "avgpool":
            return ops.avg_pool2d(args[0], a["kernel_size"], a["stride"],
                                  a["padding"], a["ceil_mode"])
        if op == "global_avgpool":
            return ops.global_avg_pool2d(args[0])
        if op == "upsample":
            return ops.upsample2d(args[0], a["scale_factor"], a["mode"])
        if op == "flatten":
            return args[0].reshape(args[0].shape[0], -1)
        if op == "reshape":
            return _run_reshape(node, args[0])
        if op == "softmax":
            return ops.softmax(args[0], axis=a["axis"])
        if op == "identity":
            return args[0]
        if op == "constant":
            return np.asarray(a["value"])
        if op == "clip":
            return np.clip(args[0], a["lo"], a["hi"])
        if op == "quantize_linear":
            q = np.round(args[0] / a["scale"]) + a["zero_point"]
            return np.clip(q, -128, 127)
        if op == "dequantize_linear":
            return (args[0] - a["zero_point"]) * a["scale"]
        if op == "layernorm":
            return ops.layernorm(args[0], args[1], args[2], eps=a["eps"])
        if op == "matmul":
            b = args[1]
            if a["transpose_b"]:
                b = np.swapaxes(b, -1, -2)
            return ops.matmul_accum(args[0], b)
        if op == "transpose":
            return args[0].transpose(a["perm"])
        if op == "concat":
            return np.concatenate(args, axis=a["axis"])
        if op == "slice":
            index = [slice(None)] * args[0].ndim
            index[a["axis"]] = slice(a["start"], a["stop"])
            return args[0][tuple(index)]
        if op == "mean":
            return args[0].mean(axis=a["axis"])
        if op == "expand_like":
            ref, value = args
            return np.broadcast_to(
                value, (ref.shape[0],) + value.shape[1:]).copy()
        if op == "scale":
            return args[0] * a["factor"]
        if op == "fused_elementwise":
            out = args[0]
            # Replay through self.run_node so subclasses apply their own
            # per-op kernels (fast sigmoid, dtype casts, ...) exactly as on
            # the unfused graph.
            for sub in a["chain"]:
                out = self.run_node(sub, [out])
            return out
        raise NotImplementedError(f"{self.name} backend: op {op!r}")


class DeploymentExecutor(ReferenceExecutor):
    """Vendor-style backend parameterised by :class:`BackendOptions`."""

    def __init__(self, options: BackendOptions | None = None,
                 keep_intermediates: bool = False):
        super().__init__(keep_intermediates)
        self.options = options or BackendOptions()
        self.name = f"deploy[{self.options.dtype}]"

    def prepare(self, graph: Graph) -> Graph:
        if self.options.fuse_conv_bn:
            from .passes import fuse_conv_bn
            graph = prepare_cached(graph, self.options, fuse_conv_bn)
        return graph

    def cast_input(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=self.options.np_dtype)

    def run_node(self, node: Node, args: list[np.ndarray]) -> np.ndarray:
        o = self.options
        dt = o.np_dtype
        a = node.attrs
        op = node.op
        if op == "conv2d":
            x, w, *rest = args
            out = ops.conv2d(x, w, rest[0] if rest else None,
                             stride=a["stride"], padding=a["padding"],
                             dilation=a["dilation"], groups=a["groups"],
                             dtype=dt, accum_chunk=o.accum_chunk)
            if a.get("activation") == "relu":
                out = ops.relu(out)
            return out
        if op == "linear":
            x, w, *rest = args
            return ops.linear(x, w, rest[0] if rest else None,
                              dtype=dt, accum_chunk=o.accum_chunk)
        if op == "batchnorm":
            return ops.batchnorm(*args, eps=a["eps"], dtype=dt)
        if op == "layernorm":
            return ops.layernorm(args[0], args[1], args[2], eps=a["eps"],
                                 dtype=dt)
        if op == "matmul":
            b = args[1]
            if a["transpose_b"]:
                b = np.swapaxes(b, -1, -2)
            return ops.matmul_accum(args[0], b, dtype=dt,
                                    accum_chunk=o.accum_chunk)
        if op == "gelu" and o.alt_gelu:
            return ops.gelu(args[0]).astype(dt, copy=False)
        if op == "sigmoid" and o.fast_sigmoid:
            return ops.hard_sigmoid(args[0])
        if op == "softmax" and o.fast_softmax:
            return ops.softmax_fast(args[0], axis=a["axis"])
        if op in ("maxpool", "avgpool") and o.ceil_mode_override is not None:
            node = node.with_attrs(ceil_mode=o.ceil_mode_override)
        if op == "upsample" and o.upsample_mode_override is not None:
            node = node.with_attrs(mode=o.upsample_mode_override)
        out = super().run_node(node, args)
        # Elementwise/pool outputs inherit input dtype; enforce storage dtype
        # so every intermediate round-trips through the backend's precision.
        return out.astype(dt, copy=False)
