"""Graph optimisation passes, as run by a deployment compiler at load time.

Vendor toolchains rewrite the imported graph before executing it — folding
batch norms into convolutions, stripping identities, pruning dead nodes.
These rewrites are *mathematically* neutral but not *numerically* neutral:
conv+BN fusion, for instance, bakes the BN scale into the conv weights, which
changes the floating-point rounding at reduced precision.  That is precisely
how one flavour of model-inference SysNoise arises, so the passes here are
both an optimisation layer and a noise source the benchmark can toggle.

All passes are pure: they return a new :class:`~repro.backend.ir.Graph` and
never mutate their input.
"""

from __future__ import annotations

import numpy as np

from .ir import Graph, Node

__all__ = ["eliminate_identity", "fuse_conv_bn", "fuse_conv_relu",
           "fuse_conv_bn_relu", "fuse_elementwise", "fold_movement",
           "dead_code_elimination", "fold_constants", "optimize",
           "DEFAULT_PASSES", "PLAN_PASSES"]


def _clone(graph: Graph, nodes: list[Node] | None = None,
           initializers: dict | None = None) -> Graph:
    return Graph(name=graph.name, input=graph.input, output=graph.output,
                 nodes=list(graph.nodes) if nodes is None else nodes,
                 initializers=dict(graph.initializers)
                 if initializers is None else initializers)


def eliminate_identity(graph: Graph) -> Graph:
    """Remove ``identity`` nodes, rewiring their users to the source value."""
    alias: dict[str, str] = {}
    kept: list[Node] = []
    for node in graph.nodes:
        inputs = tuple(alias.get(v, v) for v in node.inputs)
        if node.op == "identity":
            alias[node.output] = inputs[0]
            continue
        kept.append(Node(node.op, inputs, node.output, node.attrs, node.name))
    out = _clone(graph, nodes=kept)
    out.output = alias.get(graph.output, graph.output)
    out.validate()
    return out


def fuse_conv_bn(graph: Graph) -> Graph:
    """Fold ``batchnorm(conv(x))`` into a single conv with rescaled weights.

    Standard deployment-compiler rewrite: with BN statistics ``(γ, β, μ, σ²)``
    the fused conv has ``W' = W·γ/√(σ²+ε)`` per output channel and
    ``b' = β + (b − μ)·γ/√(σ²+ε)``.  Only applied when the conv output has no
    other user (otherwise both values stay live).
    """
    inits = dict(graph.initializers)
    producers = {n.output: n for n in graph.nodes}
    use_count: dict[str, int] = {}
    for n in graph.nodes:
        for v in n.inputs:
            use_count[v] = use_count.get(v, 0) + 1

    fused_away: set[str] = set()          # conv nodes replaced by fused copies
    new_nodes: list[Node] = []
    for node in graph.nodes:
        if node.op == "batchnorm":
            src = producers.get(node.inputs[0])
            if (src is not None and src.op == "conv2d"
                    and src.output not in (graph.output,)
                    and use_count.get(src.output, 0) == 1):
                gamma, beta, mean, var = (inits[v] for v in node.inputs[1:5])
                scale = gamma / np.sqrt(var + node.attrs["eps"])
                w = inits[src.inputs[1]]
                bias = inits[src.inputs[2]] if len(src.inputs) > 2 else \
                    np.zeros(w.shape[0])
                w_name = src.inputs[1] + ".fused"
                b_name = (src.inputs[2] if len(src.inputs) > 2
                          else src.output) + ".bias.fused"
                inits[w_name] = w * scale.reshape(-1, 1, 1, 1)
                inits[b_name] = beta + (bias - mean) * scale
                fused = Node("conv2d", (src.inputs[0], w_name, b_name),
                             node.output, src.attrs,
                             name=(src.name or node.name) + "+bn")
                # Drop the original conv node we already emitted.
                new_nodes = [n for n in new_nodes if n is not src]
                fused_away.add(src.output)
                new_nodes.append(fused)
                continue
        new_nodes.append(node)
    out = _clone(graph, nodes=new_nodes, initializers=inits)
    out = dead_code_elimination(out)
    out.validate()
    return out


def fuse_conv_relu(graph: Graph) -> Graph:
    """Attach a trailing relu to its producing conv (``activation`` attr).

    Unlike conv+BN fusion this rewrite is *bit-exact*: the conv output is
    computed identically and clamped in place, so it is safe for the
    reference backend and for the compiled execution plans, which use it to
    skip materialising the pre-activation tensor.
    """
    producers = {n.output: n for n in graph.nodes}
    use_count: dict[str, int] = {graph.output: 1}
    for n in graph.nodes:
        for v in n.inputs:
            use_count[v] = use_count.get(v, 0) + 1

    new_nodes: list[Node] = []
    for node in graph.nodes:
        if node.op == "relu":
            src = producers.get(node.inputs[0])
            if (src is not None and src.op == "conv2d"
                    and "activation" not in src.attrs
                    and use_count.get(src.output, 0) == 1):
                fused = Node("conv2d", src.inputs, node.output,
                             {**src.attrs, "activation": "relu"},
                             name=src.name or node.name)
                new_nodes = [n for n in new_nodes if n is not src]
                new_nodes.append(fused)
                continue
        new_nodes.append(node)
    out = _clone(graph, nodes=new_nodes)
    out.validate()
    return out


def fuse_conv_bn_relu(graph: Graph) -> Graph:
    """The full deployment-compiler peephole: conv+BN folding, then the
    (exact) relu attachment on every fused or plain conv."""
    return fuse_conv_relu(fuse_conv_bn(graph))


#: Shape-preserving single-input ops a fused elementwise chain may contain.
_CHAINABLE = frozenset({"relu", "gelu", "sigmoid", "clip", "scale",
                        "quantize_linear", "dequantize_linear", "softmax"})


def fuse_elementwise(graph: Graph) -> Graph:
    """Collapse chains of single-use shape-preserving unary ops.

    ``relu → quantize → dequantize``-style runs become one
    ``fused_elementwise`` node whose ``chain`` attr holds the original nodes
    in order.  Executors replay the chain through their own per-op kernels
    (see ``Executor.run_node``), so results are bit-identical to the unfused
    graph; the compiled plans additionally run the chain without scheduling
    or materialising the intermediates.
    """
    users: dict[str, list[Node]] = {}
    for n in graph.nodes:
        for v in n.inputs:
            users.setdefault(v, []).append(n)

    consumed: set[int] = set()
    new_nodes: list[Node] = []
    for node in graph.nodes:
        if id(node) in consumed:
            continue
        if node.op in _CHAINABLE:
            chain = [node]
            cur = node
            while cur.output != graph.output:
                use = users.get(cur.output, [])
                if len(use) != 1 or use[0].op not in _CHAINABLE:
                    break
                cur = use[0]
                chain.append(cur)
            if len(chain) > 1:
                consumed.update(id(c) for c in chain)
                new_nodes.append(Node("fused_elementwise",
                                      (node.inputs[0],), chain[-1].output,
                                      {"chain": tuple(chain)},
                                      name=node.name or chain[-1].name))
                continue
        new_nodes.append(node)
    out = _clone(graph, nodes=new_nodes)
    out.validate()
    return out


def fold_movement(graph: Graph) -> Graph:
    """Fold consecutive transposes / reshapes and drop identity transposes.

    ``transpose(transpose(x, p1), p2)`` composes into one transpose;
    ``reshape(reshape(x, s1), s2)`` keeps only the outer reshape when ``s2``
    carries no 0 (copy-input-dim) entries, since a reshape only depends on
    C-order element sequence.  Both rewrites are pure re-indexing, hence
    bit-exact.
    """
    use_count: dict[str, int] = {graph.output: 1}
    for n in graph.nodes:
        for v in n.inputs:
            use_count[v] = use_count.get(v, 0) + 1

    alias: dict[str, str] = {}
    producers: dict[str, Node] = {}
    new_nodes: list[Node] = []
    for node in graph.nodes:
        inputs = tuple(alias.get(v, v) for v in node.inputs)
        node = Node(node.op, inputs, node.output, node.attrs, node.name)
        if node.op == "transpose":
            src = producers.get(node.inputs[0])
            if (src is not None and src.op == "transpose"
                    and use_count.get(src.output, 0) == 1):
                perm = tuple(src.attrs["perm"][p] for p in node.attrs["perm"])
                new_nodes = [n for n in new_nodes if n is not src]
                node = Node("transpose", src.inputs, node.output,
                            {"perm": perm}, node.name or src.name)
            if tuple(node.attrs["perm"]) == tuple(range(len(node.attrs["perm"]))):
                alias[node.output] = node.inputs[0]
                continue
        elif node.op == "reshape" and not any(
                s == 0 for s in node.attrs["shape"]):
            src = producers.get(node.inputs[0])
            if (src is not None and src.op in ("reshape", "flatten")
                    and use_count.get(src.output, 0) == 1):
                new_nodes = [n for n in new_nodes if n is not src]
                node = Node("reshape", src.inputs, node.output, node.attrs,
                            node.name or src.name)
        producers[node.output] = node
        new_nodes.append(node)
    out = _clone(graph, nodes=new_nodes)
    out.output = alias.get(graph.output, graph.output)
    out.validate()
    return out


def dead_code_elimination(graph: Graph) -> Graph:
    """Drop nodes (and initializers) that do not feed the graph output."""
    live: set[str] = {graph.output}
    kept_rev: list[Node] = []
    for node in reversed(graph.nodes):
        if node.output in live:
            kept_rev.append(node)
            live.update(node.inputs)
    kept = list(reversed(kept_rev))
    inits = {k: v for k, v in graph.initializers.items() if k in live}
    out = _clone(graph, nodes=kept, initializers=inits)
    out.validate()
    return out


def fold_constants(graph: Graph) -> Graph:
    """Evaluate nodes whose every input is a constant/initializer.

    Uses the reference executor's kernels, so folding is numerically the
    reference semantics (as constant folding in a compiler is).
    """
    from .executor import ReferenceExecutor
    ref = ReferenceExecutor()
    inits = dict(graph.initializers)
    kept: list[Node] = []
    for node in graph.nodes:
        if node.op == "constant":
            inits[node.output] = np.asarray(node.attrs["value"])
            continue
        if node.inputs and all(v in inits for v in node.inputs):
            args = [inits[v] for v in node.inputs]
            inits[node.output] = ref.run_node(node, args)
            continue
        kept.append(node)
    out = _clone(graph, nodes=kept, initializers=inits)
    out = dead_code_elimination(out)
    out.validate()
    return out


#: The standard load-time pipeline, in order.
DEFAULT_PASSES = (eliminate_identity, fold_constants, fuse_conv_bn,
                  dead_code_elimination)

#: The bit-exact pipeline the plan compiler runs on an already-prepared
#: graph.  Everything here is numerically neutral (pure re-indexing or
#: same-kernels-in-sequence), so a compiled plan always reproduces the
#: interpreted output exactly — conv+BN folding, which *changes* numbers,
#: stays a backend-option decision made in ``Executor.prepare``.
PLAN_PASSES = (eliminate_identity, fold_movement, fuse_conv_relu,
               fuse_elementwise)


def optimize(graph: Graph, passes=DEFAULT_PASSES) -> Graph:
    """Run a pass pipeline, validating after each stage."""
    for p in passes:
        graph = p(graph)
    return graph
