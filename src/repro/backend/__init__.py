"""Deployment inference-engine substrate: graph IR, exporter, backends.

The SysNoise paper's deployment targets (TensorRT, SNPE, CANN) are vendor
graph compilers: the trained model is exported once to a portable graph and
each backend executes it with its own operator kernels.  This package builds
that entire layer from scratch:

* :mod:`~repro.backend.ir`       — the graph IR and builder;
* :mod:`~repro.backend.export`   — ``repro.nn`` → graph lowering (ONNX role);
* :mod:`~repro.backend.executor` — reference backend + configurable vendor
  personas (``gpu-fp16``, ``dsp``, ``npu-bilinear``);
* :mod:`~repro.backend.passes`   — load-time rewrites (conv+BN fusion, DCE);
* :mod:`~repro.backend.compare`  — per-layer divergence localisation and
  end-to-end Δ-accuracy under a backend.

Quick use::

    graph = export_module(trained_model)
    ref   = accuracy_under_backend(graph, x, y, "reference")
    fp16  = accuracy_under_backend(graph, x, y, "gpu-fp16")
    print(diff_report(backend_diff(graph, x, "reference", "dsp")))
"""

from .compare import (LayerDiff, accuracy_under_backend, backend_diff,
                      diff_report, first_divergence, predict)
from .executor import (BACKEND_PRESETS, BackendOptions, DeploymentExecutor,
                       Executor, ReferenceExecutor, create_backend)
from .export import (ExportError, export_classifier, export_module,
                     register_handler, supported_module_types)
from .ir import Graph, GraphBuilder, GraphError, Node, OP_SCHEMA
from .passes import (DEFAULT_PASSES, PLAN_PASSES, dead_code_elimination,
                     eliminate_identity, fold_constants, fold_movement,
                     fuse_conv_bn, fuse_conv_bn_relu, fuse_conv_relu,
                     fuse_elementwise, optimize)
from .plan import ExecutionPlan, compile_cached, compile_plan
from .profile import GraphProfile, OpProfile, profile_graph, render_profile
from .quantize import calibrate_ranges, lower_integer, quantize_graph
from .serialize import (GRAPH_FORMAT_VERSION, PLAN_FORMAT_VERSION,
                        PlanFormatError, load_graph, load_plan, plan_info,
                        save_graph, save_plan)
from .shapes import ShapeError, infer_shapes, summary_with_shapes

__all__ = [
    "Graph", "GraphBuilder", "GraphError", "Node", "OP_SCHEMA",
    "ExportError", "export_module", "export_classifier", "register_handler",
    "supported_module_types",
    "Executor", "ReferenceExecutor", "DeploymentExecutor", "BackendOptions",
    "BACKEND_PRESETS", "create_backend",
    "eliminate_identity", "fuse_conv_bn", "fuse_conv_relu",
    "fuse_conv_bn_relu", "fuse_elementwise", "fold_movement",
    "dead_code_elimination", "fold_constants", "optimize", "DEFAULT_PASSES",
    "PLAN_PASSES",
    "ExecutionPlan", "compile_plan", "compile_cached",
    "LayerDiff", "backend_diff", "first_divergence", "diff_report",
    "accuracy_under_backend", "predict",
    "save_graph", "load_graph", "GRAPH_FORMAT_VERSION",
    "save_plan", "load_plan", "plan_info", "PLAN_FORMAT_VERSION",
    "PlanFormatError",
    "infer_shapes", "summary_with_shapes", "ShapeError",
    "OpProfile", "GraphProfile", "profile_graph", "render_profile",
    "quantize_graph", "calibrate_ranges", "lower_integer",
]
