"""Graph-level INT8 post-training quantisation (the TensorRT-style path).

The runtime-level quantiser in :mod:`repro.nn.quant` wraps module forwards;
this pass does what a deployment compiler does instead: it rewrites the
*graph* — weights are replaced by their INT8 grid values, and each conv/
linear output gains an explicit ``quantize_linear → dequantize_linear``
pair whose scale comes from calibration-run activation ranges.  The QDQ
nodes make the quantisation visible to every downstream tool (shape
inference, profiling, per-layer diffing) rather than hiding it inside
executor kernels.
"""

from __future__ import annotations

import numpy as np

from repro.nn.quant import compute_qparams, fake_quant

from .executor import ReferenceExecutor
from .ir import Graph, Node

__all__ = ["quantize_graph", "calibrate_ranges", "lower_integer"]

_TARGETS = ("conv2d", "linear", "matmul")

#: Ops an INT8 *code* tensor passes through unchanged (pure data movement)
#: or monotonically (maxpool: max over codes == max over dequantized values
#: for any positive scale), so the integer view survives them exactly.
_INT_PASSTHROUGH = ("reshape", "transpose", "slice", "identity", "flatten",
                    "maxpool")


def calibrate_ranges(graph: Graph, x_calib: np.ndarray) -> dict[str, tuple]:
    """Observed (min, max) of every node output on the calibration batch."""
    ex = ReferenceExecutor(keep_intermediates=True)
    ex.run(graph, x_calib)
    ranges = {}
    for node in graph.nodes:
        out = ex.intermediates[node.name or node.output]
        ranges[node.output] = (float(out.min()), float(out.max()))
    return ranges


def quantize_graph(graph: Graph, x_calib: np.ndarray) -> Graph:
    """Return an INT8 deployment copy of ``graph``.

    * conv/linear weight initializers are snapped to their symmetric
      per-output-channel INT8 grid (matmul operands stay activations);
    * each target node's output is routed through an asymmetric per-tensor
      ``quantize_linear``/``dequantize_linear`` pair calibrated on
      ``x_calib`` — the fake-quant error INT8 inference sees.

    The result is a valid graph executable by any backend; comparing it to
    the FP32 graph with :func:`repro.backend.compare.backend_diff`
    attributes the INT8 noise per layer.
    """
    ranges = calibrate_ranges(graph, x_calib)
    inits = dict(graph.initializers)
    nodes: list[Node] = []
    for node in graph.nodes:
        if node.op not in _TARGETS:
            nodes.append(node)
            continue
        inputs = list(node.inputs)
        if node.op in ("conv2d", "linear") and len(inputs) >= 2:
            w_name = inputs[1]
            w = inits[w_name]
            axes = tuple(range(1, w.ndim))
            qp = compute_qparams(w.min(axis=axes), w.max(axis=axes),
                                 symmetric=True)
            shape = (-1,) + (1,) * (w.ndim - 1)
            from repro.nn.quant import QuantParams
            wq = fake_quant(w, QuantParams(np.asarray(qp.scale).reshape(shape),
                                           0))
            q_name = w_name + ".int8"
            inits[q_name] = wq
            inputs[1] = q_name
            # Side-channel for the integer fast path (lower_integer): the
            # grid *codes* and per-channel scales behind the fake-quant
            # float values.  codes * scale reproduces ``wq`` bit-exactly —
            # fake_quant computed each element as exactly that product.
            scale_flat = np.asarray(qp.scale, dtype=np.float64).reshape(-1)
            safe = np.where(scale_flat == 0.0, 1.0, scale_flat)
            codes = np.round(wq / safe.reshape(shape)).astype(np.int8)
            inits[q_name + ".code"] = codes
            inits[q_name + ".scale"] = scale_flat
        lo, hi = ranges[node.output]
        qp_act = compute_qparams(lo, hi)
        raw = node.output + ".raw"
        q = node.output + ".q"
        nodes.append(Node(node.op, tuple(inputs), raw, node.attrs, node.name))
        nodes.append(Node("quantize_linear", (raw,), q,
                          dict(scale=float(np.asarray(qp_act.scale)),
                               zero_point=int(np.asarray(qp_act.zero_point))),
                          name=(node.name or node.output) + ".quant"))
        nodes.append(Node("dequantize_linear", (q,), node.output,
                          dict(scale=float(np.asarray(qp_act.scale)),
                               zero_point=int(np.asarray(qp_act.zero_point))),
                          name=(node.name or node.output) + ".dequant"))
    out = Graph(name=graph.name + ".int8", input=graph.input,
                output=graph.output, nodes=nodes, initializers=inits)
    out.validate()
    return out


def lower_integer(graph: Graph) -> Graph:
    """Lower a QDQ graph to the integer-only INT8 fast path.

    The QDQ graph from :func:`quantize_graph` round-trips every quantised
    tensor through float: ``dequantize → conv (float GEMM) → quantize``.
    This pass rewrites the quantised segments to stay in *code space*
    instead:

    * ``conv2d``/``linear`` whose input carries an integer view and whose
      weights have stashed grid codes fuse with their ``quantize_linear``
      into one ``qconv2d``/``qlinear`` node — exact integer accumulation
      (via the float64 GEMM, see :func:`repro.backend.ops.qconv2d`) plus
      requantization, no intermediate float tensor;
    * ``relu`` becomes ``qrelu`` (``max(code, zero_point)``) and pure data
      movement / maxpool propagate the code tensor unchanged — all exact
      rewrites in code space;
    * everything else (first conv on the unquantised input, residual adds,
      pooling means, matmul) keeps the float path: the integer view simply
      stops at the last ``dequantize_linear`` before it.

    **Exactness contract**: because integer accumulation is exact and the
    QDQ path re-rounds to the code grid at every ``quantize_linear``, the
    lowered graph reproduces the *reference* (float64) execution of the
    QDQ graph code-for-code — the single rounding at requantization lands
    on the same code unless the float64 accumulation error crosses a
    rounding boundary (probability ~1e-11 per element; the test suite and
    the perf gates check exact equality across the zoo).  The lowered
    quantised segments are additionally dtype- and tiling-invariant, so
    they produce identical bits under every deployment executor.
    """
    inits = dict(graph.initializers)
    nodes = list(graph.nodes)
    new_nodes: list[Node] = []
    int_view: dict[str, tuple[str, float, int]] = {}
    i = 0
    while i < len(nodes):
        node = nodes[i]
        nxt = nodes[i + 1] if i + 1 < len(nodes) else None
        if (node.op in ("conv2d", "linear")
                and nxt is not None and nxt.op == "quantize_linear"
                and nxt.inputs[0] == node.output
                and len(node.inputs) >= 2
                and node.inputs[1] + ".code" in inits
                and node.inputs[0] in int_view):
            code_in, x_scale, x_zp = int_view[node.inputs[0]]
            w_name = node.inputs[1]
            attrs = {k: node.attrs[k]
                     for k in ("stride", "padding", "dilation", "groups",
                               "activation") if k in node.attrs}
            attrs.update(x_scale=float(x_scale), x_zero_point=int(x_zp),
                         y_scale=float(nxt.attrs["scale"]),
                         y_zero_point=int(nxt.attrs["zero_point"]))
            qop = "qconv2d" if node.op == "conv2d" else "qlinear"
            inputs = (code_in, w_name + ".code", w_name + ".scale",
                      *node.inputs[2:3])
            new_nodes.append(Node(qop, inputs, nxt.output, attrs, node.name))
            i += 2                       # consumed conv + quantize_linear
            continue
        if node.op == "dequantize_linear":
            int_view[node.output] = (node.inputs[0],
                                     float(node.attrs["scale"]),
                                     int(node.attrs["zero_point"]))
            new_nodes.append(node)
            i += 1
            continue
        if node.op == "relu" and node.inputs[0] in int_view:
            code_in, scale, zp = int_view[node.inputs[0]]
            q_out = node.output + ".qv"
            new_nodes.append(Node("qrelu", (code_in,), q_out,
                                  dict(zero_point=zp),
                                  (node.name or node.output) + ".qv"))
            # The float twin is *reconstructed* from the code result rather
            # than recomputed: relu(deq(c)) == deq(max(c, zp)) bit-for-bit
            # (scale > 0 and IEEE multiply is monotone), and a dequantize is
            # far cheaper than rerunning the op.  DCE drops it if every
            # consumer was lowered.
            new_nodes.append(Node("dequantize_linear", (q_out,), node.output,
                                  dict(scale=scale, zero_point=zp),
                                  (node.name or node.output) + ".dq"))
            int_view[node.output] = (q_out, scale, zp)
            i += 1
            continue
        if node.op in _INT_PASSTHROUGH and node.inputs \
                and node.inputs[0] in int_view:
            code_in, scale, zp = int_view[node.inputs[0]]
            q_out = node.output + ".qv"
            new_nodes.append(Node(node.op, (code_in,) + node.inputs[1:],
                                  q_out, node.attrs,
                                  (node.name or node.output) + ".qv"))
            # Same reconstruction trick: op(deq(c)) == deq(op(c)) for pure
            # data movement, and for maxpool because max commutes with the
            # monotone code->float map.  Avoids running e.g. the stem
            # maxpool twice (once on floats, once on codes).
            new_nodes.append(Node("dequantize_linear", (q_out,), node.output,
                                  dict(scale=scale, zero_point=zp),
                                  (node.name or node.output) + ".dq"))
            int_view[node.output] = (q_out, scale, zp)
            i += 1
            continue
        new_nodes.append(node)
        i += 1

    # Dead-code elimination from the graph output: float twins whose every
    # consumer was lowered vanish, as do their fake-quant float weights.
    needed = {graph.output}
    kept: list[Node] = []
    for node in reversed(new_nodes):
        if node.output in needed:
            kept.append(node)
            needed.update(node.inputs)
    kept.reverse()
    used = {v for node in kept for v in node.inputs if v in inits}
    out = Graph(name=graph.name + ".int", input=graph.input,
                output=graph.output, nodes=kept,
                initializers={k: v for k, v in inits.items() if k in used})
    out.validate()
    return out
