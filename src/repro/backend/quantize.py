"""Graph-level INT8 post-training quantisation (the TensorRT-style path).

The runtime-level quantiser in :mod:`repro.nn.quant` wraps module forwards;
this pass does what a deployment compiler does instead: it rewrites the
*graph* — weights are replaced by their INT8 grid values, and each conv/
linear output gains an explicit ``quantize_linear → dequantize_linear``
pair whose scale comes from calibration-run activation ranges.  The QDQ
nodes make the quantisation visible to every downstream tool (shape
inference, profiling, per-layer diffing) rather than hiding it inside
executor kernels.
"""

from __future__ import annotations

import numpy as np

from repro.nn.quant import compute_qparams, fake_quant

from .executor import ReferenceExecutor
from .ir import Graph, Node

__all__ = ["quantize_graph", "calibrate_ranges"]

_TARGETS = ("conv2d", "linear", "matmul")


def calibrate_ranges(graph: Graph, x_calib: np.ndarray) -> dict[str, tuple]:
    """Observed (min, max) of every node output on the calibration batch."""
    ex = ReferenceExecutor(keep_intermediates=True)
    ex.run(graph, x_calib)
    ranges = {}
    for node in graph.nodes:
        out = ex.intermediates[node.name or node.output]
        ranges[node.output] = (float(out.min()), float(out.max()))
    return ranges


def quantize_graph(graph: Graph, x_calib: np.ndarray) -> Graph:
    """Return an INT8 deployment copy of ``graph``.

    * conv/linear weight initializers are snapped to their symmetric
      per-output-channel INT8 grid (matmul operands stay activations);
    * each target node's output is routed through an asymmetric per-tensor
      ``quantize_linear``/``dequantize_linear`` pair calibrated on
      ``x_calib`` — the fake-quant error INT8 inference sees.

    The result is a valid graph executable by any backend; comparing it to
    the FP32 graph with :func:`repro.backend.compare.backend_diff`
    attributes the INT8 noise per layer.
    """
    ranges = calibrate_ranges(graph, x_calib)
    inits = dict(graph.initializers)
    nodes: list[Node] = []
    for node in graph.nodes:
        if node.op not in _TARGETS:
            nodes.append(node)
            continue
        inputs = list(node.inputs)
        if node.op in ("conv2d", "linear") and len(inputs) >= 2:
            w_name = inputs[1]
            w = inits[w_name]
            axes = tuple(range(1, w.ndim))
            qp = compute_qparams(w.min(axis=axes), w.max(axis=axes),
                                 symmetric=True)
            shape = (-1,) + (1,) * (w.ndim - 1)
            from repro.nn.quant import QuantParams
            wq = fake_quant(w, QuantParams(np.asarray(qp.scale).reshape(shape),
                                           0))
            q_name = w_name + ".int8"
            inits[q_name] = wq
            inputs[1] = q_name
        lo, hi = ranges[node.output]
        qp_act = compute_qparams(lo, hi)
        raw = node.output + ".raw"
        q = node.output + ".q"
        nodes.append(Node(node.op, tuple(inputs), raw, node.attrs, node.name))
        nodes.append(Node("quantize_linear", (raw,), q,
                          dict(scale=float(np.asarray(qp_act.scale)),
                               zero_point=int(np.asarray(qp_act.zero_point))),
                          name=(node.name or node.output) + ".quant"))
        nodes.append(Node("dequantize_linear", (q,), node.output,
                          dict(scale=float(np.asarray(qp_act.scale)),
                               zero_point=int(np.asarray(qp_act.zero_point))),
                          name=(node.name or node.output) + ".dequant"))
    out = Graph(name=graph.name + ".int8", input=graph.input,
                output=graph.output, nodes=nodes, initializers=inits)
    out.validate()
    return out
