"""Image resize with 11 interpolation methods across two package styles.

The paper's **resize** pre-processing noise uses six Pillow methods
(*bilinear, nearest, box, hamming, bicubic, lanczos*) and five OpenCV methods
(*bilinear, nearest, area, bicubic, lanczos*), and stresses that *even the
same-named interpolation differs between packages*.  Both axes are modelled
faithfully here:

* the **Pillow engine** antialiases on downscale (the filter support is
  stretched by the scale factor), uses the half-pixel centre mapping, and
  Catmull-Rom bicubic (``a = -0.5``);
* the **OpenCV engine** never stretches the filter (classic sampling, so
  downscale aliases), uses ``a = -0.75`` bicubic, 8-tap Lanczos4 (vs
  Pillow's 6-tap Lanczos3), and floor-based nearest-neighbour mapping
  (vs Pillow's rounded mapping).

All kernels are built as dense per-axis weight matrices and applied
separably, so a resize is two ``tensordot`` calls regardless of method.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resize", "resize_batch", "RESIZE_METHODS", "resize_matrix",
           "PILLOW_METHODS", "OPENCV_METHODS"]


# ---------------------------------------------------------------------------
# Filter kernels
# ---------------------------------------------------------------------------

def _box(x: np.ndarray) -> np.ndarray:
    return ((x > -0.5) & (x <= 0.5)).astype(np.float64)


def _triangle(x: np.ndarray) -> np.ndarray:
    return np.maximum(0.0, 1.0 - np.abs(x))


def _hamming(x: np.ndarray) -> np.ndarray:
    x = np.abs(x)
    out = np.sinc(x) * (0.54 + 0.46 * np.cos(np.pi * np.clip(x, 0, 1)))
    return np.where(x < 1.0, out, 0.0)


def _cubic(a: float):
    def kernel(x: np.ndarray) -> np.ndarray:
        x = np.abs(x)
        x2, x3 = x * x, x * x * x
        inner = (a + 2) * x3 - (a + 3) * x2 + 1
        outer = a * x3 - 5 * a * x2 + 8 * a * x - 4 * a
        return np.where(x < 1, inner, np.where(x < 2, outer, 0.0))
    return kernel


def _lanczos(n: int):
    def kernel(x: np.ndarray) -> np.ndarray:
        return np.where(np.abs(x) < n, np.sinc(x) * np.sinc(x / n), 0.0)
    return kernel


# ---------------------------------------------------------------------------
# Weight-matrix construction
# ---------------------------------------------------------------------------

def _filter_matrix(in_size: int, out_size: int, kernel, support: float,
                   antialias: bool) -> np.ndarray:
    """Dense (out, in) resampling operator for one axis."""
    scale = in_size / out_size
    fscale = max(scale, 1.0) if antialias else 1.0
    centers = (np.arange(out_size) + 0.5) * scale - 0.5
    radius = support * fscale
    lo = np.floor(centers - radius).astype(int)
    width = int(np.ceil(2 * radius)) + 2
    offsets = np.arange(width)
    idx = lo[:, None] + offsets[None, :]                 # (out, width)
    dist = (idx - centers[:, None]) / fscale
    w = kernel(dist)
    wsum = w.sum(axis=1, keepdims=True)
    wsum[wsum == 0] = 1.0
    w = w / wsum
    # Edge clamp: fold out-of-range taps onto the border pixel.
    idx = np.clip(idx, 0, in_size - 1)
    m = np.zeros((out_size, in_size))
    np.add.at(m, (np.repeat(np.arange(out_size), width), idx.reshape(-1)),
              w.reshape(-1))
    return m


def _nearest_matrix(in_size: int, out_size: int, style: str) -> np.ndarray:
    scale = in_size / out_size
    if style == "pillow":
        # Pillow samples at the pixel centre of the destination.
        src = np.floor((np.arange(out_size) + 0.5) * scale).astype(int)
    else:
        # OpenCV's INTER_NEAREST uses the top-left (floor) mapping.
        src = np.floor(np.arange(out_size) * scale).astype(int)
    src = np.clip(src, 0, in_size - 1)
    m = np.zeros((out_size, in_size))
    m[np.arange(out_size), src] = 1.0
    return m


def _area_matrix(in_size: int, out_size: int) -> np.ndarray:
    """OpenCV INTER_AREA: exact pixel-area averaging (ideal for downscale)."""
    scale = in_size / out_size
    m = np.zeros((out_size, in_size))
    for i in range(out_size):
        lo, hi = i * scale, (i + 1) * scale
        j0, j1 = int(np.floor(lo)), int(np.ceil(hi))
        for j in range(j0, min(j1, in_size)):
            overlap = min(hi, j + 1) - max(lo, j)
            if overlap > 0:
                m[i, j] = overlap
    m /= m.sum(axis=1, keepdims=True)
    return m


#: method name -> (engine, kernel, support) spec table
PILLOW_METHODS = ["pillow-bilinear", "pillow-nearest", "pillow-box",
                  "pillow-hamming", "pillow-bicubic", "pillow-lanczos"]
OPENCV_METHODS = ["cv-bilinear", "cv-nearest", "cv-area", "cv-bicubic",
                  "cv-lanczos"]

_SPECS = {
    "pillow-bilinear": ("filter", _triangle, 1.0, True),
    "pillow-box": ("filter", _box, 0.5, True),
    "pillow-hamming": ("filter", _hamming, 1.0, True),
    "pillow-bicubic": ("filter", _cubic(-0.5), 2.0, True),
    "pillow-lanczos": ("filter", _lanczos(3), 3.0, True),
    "pillow-nearest": ("nearest", None, 0.0, False),
    "cv-bilinear": ("filter", _triangle, 1.0, False),
    "cv-bicubic": ("filter", _cubic(-0.75), 2.0, False),
    "cv-lanczos": ("filter", _lanczos(4), 4.0, False),
    "cv-nearest": ("nearest", None, 0.0, False),
    "cv-area": ("area", None, 0.0, False),
}

RESIZE_METHODS = list(_SPECS)

_MATRIX_CACHE: dict[tuple, np.ndarray] = {}


def resize_matrix(in_size: int, out_size: int, method: str) -> np.ndarray:
    """Per-axis (out, in) operator for ``method`` (cached)."""
    key = (in_size, out_size, method)
    cached = _MATRIX_CACHE.get(key)
    if cached is not None:
        return cached
    kind, kernel, support, antialias = _SPECS[method]
    if kind == "nearest":
        style = "pillow" if method.startswith("pillow") else "cv"
        m = _nearest_matrix(in_size, out_size, style)
    elif kind == "area":
        m = _area_matrix(in_size, out_size)
    else:
        m = _filter_matrix(in_size, out_size, kernel, support, antialias)
    _MATRIX_CACHE[key] = m
    return m


def resize_batch(images: np.ndarray, out_hw: tuple[int, int],
                 method: str = "pillow-bilinear") -> np.ndarray:
    """Resize an (N, H, W[, C]) batch with one pair of cached operators.

    For channel-bearing batches (N, H, W, C) — the shape every pipeline
    caller uses — this is bit-identical to resizing each image via
    :func:`resize` (the same separable matrices contract over the same
    axis with the same GEMM reduction length); the whole batch goes through
    two large GEMMs instead of 2N small ones.  Channel-less (N, H, W)
    float batches may differ from the per-image path at ULP level because
    the GEMM grouping changes.
    """
    if method not in _SPECS:
        raise ValueError(f"unknown resize method {method!r}; "
                         f"choose from {RESIZE_METHODS}")
    h, w = images.shape[1:3]
    mh = resize_matrix(h, out_hw[0], method)
    mw = resize_matrix(w, out_hw[1], method)
    was_uint8 = images.dtype == np.uint8
    x = images.astype(np.float64)
    out = np.tensordot(mh, x, axes=(1, 1))               # (OH, N, W, C?)
    out = np.tensordot(mw, out, axes=(1, 2))             # (OW, OH, N, C?)
    out = np.moveaxis(out, 2, 0)                         # (N, OW, OH, C?)
    out = np.swapaxes(out, 1, 2)                         # (N, OH, OW, C?)
    if was_uint8:
        return np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out


def iter_resize_batches(batches, out_hw: tuple[int, int],
                        method: str = "pillow-bilinear"):
    """Resize a stream of ``(offset, batch)`` chunks with shared operators.

    The streaming sibling of :func:`resize_batch`: each chunk goes through
    the same cached separable matrices, so the concatenated output is
    bit-identical to resizing the whole dataset at once while only one
    chunk is ever resident.  Accepts the ``(offset, uint8 batch)`` stream
    :func:`repro.image.jpeg.iter_decode_batches` produces.
    """
    for offset, batch in batches:
        yield offset, resize_batch(batch, out_hw, method)


def resize(image: np.ndarray, out_hw: tuple[int, int],
           method: str = "pillow-bilinear") -> np.ndarray:
    """Resize an (H, W) or (H, W, C) image.

    uint8 inputs are rounded and clipped back to uint8 (matching what the
    image libraries return); float inputs stay float.
    """
    if method not in _SPECS:
        raise ValueError(f"unknown resize method {method!r}; "
                         f"choose from {RESIZE_METHODS}")
    h, w = image.shape[:2]
    oh, ow = out_hw
    mh = resize_matrix(h, oh, method)
    mw = resize_matrix(w, ow, method)
    was_uint8 = image.dtype == np.uint8
    x = image.astype(np.float64)
    out = np.tensordot(mh, x, axes=(1, 0))               # (OH, W, C?)
    out = np.tensordot(mw, out, axes=(1, 1))             # (OW, OH, C?)
    out = np.swapaxes(out, 0, 1)
    if was_uint8:
        return np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out
