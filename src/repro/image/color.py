"""Colour-space SysNoise: RGB ↔ YUV (BT.601) round trips.

Deployment accelerators (DirectX VA, Ascend 310 DVPP) decode video into the
**NV12** (YUV 4:2:0) format and convert to RGB on-device, while training reads
direct-RGB decodes.  Paper Appendix A gives the studio-swing BT.601 equations
(Eq. 5/6) and the integer shift approximation many devices use (Eq. 7); the
conversion is lossy because of rounding, clipping, and chroma subsampling.

``color_roundtrip`` is the noise injector used by the benchmark: it converts
RGB → YUV → RGB through a configurable pipeline and returns the perturbed
image.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rgb_to_yuv_bt601", "yuv_to_rgb_bt601", "yuv_to_rgb_integer",
    "subsample_420", "upsample_420", "color_roundtrip", "COLOR_PIPELINES",
]


def rgb_to_yuv_bt601(rgb: np.ndarray) -> np.ndarray:
    """Paper Eq. 5: full-range RGB → studio-swing YUV (Y in 16..235).

    Returns uint8 YUV 4:4:4 with rounding — the first lossy step.
    """
    rgb = rgb.astype(np.float64)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = np.round(0.256788 * r + 0.504129 * g + 0.097906 * b) + 16
    u = np.round(-0.148223 * r - 0.290993 * g + 0.439216 * b) + 128
    v = np.round(0.439216 * r - 0.367788 * g - 0.071427 * b) + 128
    return np.clip(np.stack([y, u, v], axis=-1), 0, 255).astype(np.uint8)


def yuv_to_rgb_bt601(yuv: np.ndarray) -> np.ndarray:
    """Paper Eq. 6: float inverse transform with final round + clip."""
    yuv = yuv.astype(np.float64)
    c = yuv[..., 0] - 16.0
    d = yuv[..., 1] - 128.0
    e = yuv[..., 2] - 128.0
    r = np.round(1.164383 * c + 1.596027 * e)
    g = np.round(1.164383 * c - 0.391762 * d - 0.812968 * e)
    b = np.round(1.164383 * c + 2.017232 * d)
    return np.clip(np.stack([r, g, b], axis=-1), 0, 255).astype(np.uint8)


def yuv_to_rgb_integer(yuv: np.ndarray) -> np.ndarray:
    """Paper Eq. 7: the fixed-point shift approximation used on-device.

    ``R = clip((298*C + 409*E + 128) >> 8)`` etc.  The coarse integer
    coefficients make this differ from the float inverse by ±1-2 LSBs.
    """
    yuv = yuv.astype(np.int64)
    c = yuv[..., 0] - 16
    d = yuv[..., 1] - 128
    e = yuv[..., 2] - 128
    r = (298 * c + 409 * e + 128) >> 8
    g = (298 * c - 100 * d - 208 * e + 128) >> 8
    b = (298 * c + 516 * d + 128) >> 8
    return np.clip(np.stack([r, g, b], axis=-1), 0, 255).astype(np.uint8)


def subsample_420(yuv: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """YUV 4:4:4 → NV12-style planes: full-res Y, 2×2-averaged U and V."""
    y = yuv[..., 0]
    h, w = y.shape
    u = yuv[..., 1].astype(np.float64)
    v = yuv[..., 2].astype(np.float64)
    u = np.pad(u, ((0, h % 2), (0, w % 2)), mode="edge")
    v = np.pad(v, ((0, h % 2), (0, w % 2)), mode="edge")
    u4 = np.round(0.25 * (u[0::2, 0::2] + u[0::2, 1::2] + u[1::2, 0::2] + u[1::2, 1::2]))
    v4 = np.round(0.25 * (v[0::2, 0::2] + v[0::2, 1::2] + v[1::2, 0::2] + v[1::2, 1::2]))
    return y, u4.astype(np.uint8), v4.astype(np.uint8)


def upsample_420(y: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """NV12 planes → YUV 4:4:4 by chroma replication (device behaviour)."""
    h, w = y.shape
    uu = np.repeat(np.repeat(u, 2, axis=0), 2, axis=1)[:h, :w]
    vv = np.repeat(np.repeat(v, 2, axis=0), 2, axis=1)[:h, :w]
    return np.stack([y, uu, vv], axis=-1)


#: pipeline name -> (use NV12 subsampling, use integer inverse)
COLOR_PIPELINES = {
    "yuv444-float": (False, False),
    "yuv444-integer": (False, True),
    "nv12-float": (True, False),
    "nv12-integer": (True, True),     # the Ascend-310-style worst case
}


def color_roundtrip(rgb: np.ndarray, pipeline: str = "nv12-integer") -> np.ndarray:
    """RGB → YUV → RGB through the named device pipeline (the colour noise)."""
    if pipeline not in COLOR_PIPELINES:
        raise ValueError(f"unknown colour pipeline {pipeline!r}; "
                         f"choose from {list(COLOR_PIPELINES)}")
    nv12, integer = COLOR_PIPELINES[pipeline]
    yuv = rgb_to_yuv_bt601(rgb)
    if nv12:
        yuv = upsample_420(*subsample_420(yuv))
    return yuv_to_rgb_integer(yuv) if integer else yuv_to_rgb_bt601(yuv)
