"""Learning-based image codec (paper Appendix B, Table 9).

The paper asks whether a *learned* decoder (Sun et al. 2020-style compression
network) reduces decoder SysNoise, and finds no clear gain.  We substitute a
small convolutional autoencoder trained on the synthetic dataset: its decode
path reconstructs the image with a characteristic low-amplitude error, which
plays the role of the learned codec's reconstruction noise.
"""

from __future__ import annotations

import numpy as np

import repro.nn as nn
from repro.nn import Tensor


class LearnedCodec(nn.Module):
    """Tiny convolutional autoencoder acting as a learned image codec.

    ``encode``/``decode`` operate on uint8 RGB images (H, W, 3).  The latent
    is a 2× spatially-reduced feature map — a stand-in for the compressed
    representation of a learned compression network.
    """

    def __init__(self, hidden: int = 16, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        # 2x spatial reduction: enough of a bottleneck to act as a codec,
        # shallow enough to reach the ~30 dB reconstruction quality the paper
        # cites for its learned decoder (anything much lossier would measure
        # autoencoder error, not decoder SysNoise).
        self.encoder = nn.Sequential(
            nn.Conv2d(3, hidden, 3, stride=2, padding=1, rng=rng), nn.ReLU(),
            nn.Conv2d(hidden, hidden, 3, padding=1, rng=rng), nn.ReLU())
        self.decoder = nn.Sequential(
            nn.Upsample(scale_factor=2, mode="bilinear"),
            nn.Conv2d(hidden, hidden, 3, padding=1, rng=rng), nn.ReLU(),
            nn.Conv2d(hidden, 3, 3, padding=1, rng=rng))

    def forward(self, x: Tensor) -> Tensor:
        return self.decoder(self.encoder(x))

    # -- training -------------------------------------------------------------
    def fit(self, images: np.ndarray, epochs: int = 30, lr: float = 2e-3,
            batch_size: int = 16, seed: int = 0) -> list[float]:
        """Train to reconstruct uint8 images (N, H, W, 3); returns loss history."""
        x = images.astype(np.float64).transpose(0, 3, 1, 2) / 255.0
        rng = np.random.default_rng(seed)
        opt = nn.Adam(self.parameters(), lr=lr)
        history = []
        self.train()
        for _ in range(epochs):
            idx = rng.permutation(len(x))
            losses = []
            for s in range(0, len(x), batch_size):
                xb = Tensor(x[idx[s:s + batch_size]])
                pred = self(xb)
                loss = ((pred - xb) ** 2).mean()
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(loss.item())
            history.append(float(np.mean(losses)))
        self.eval()
        return history

    # -- codec API -------------------------------------------------------------
    def roundtrip(self, image: np.ndarray) -> np.ndarray:
        """Encode + decode one uint8 (H, W, 3) image (the learned decoder output)."""
        x = image.astype(np.float64).transpose(2, 0, 1)[None] / 255.0
        with nn.no_grad():
            out = self(Tensor(x)).data
        out = out[0].transpose(1, 2, 0) * 255.0
        return np.clip(np.round(out), 0, 255).astype(np.uint8)

    def psnr(self, image: np.ndarray) -> float:
        """Reconstruction PSNR in dB for one uint8 image."""
        rec = self.roundtrip(image).astype(np.float64)
        mse = ((rec - image.astype(np.float64)) ** 2).mean()
        return float(10 * np.log10(255.0 ** 2 / max(mse, 1e-12)))
