"""A complete baseline JPEG codec with pluggable iDCT decoders.

This is the substrate for the paper's **decoder** pre-processing noise.  The
paper decodes one JPEG file with PIL, OpenCV, FFmpeg and NVIDIA DALI and gets
four slightly different RGB tensors, because the libraries implement the
inverse DCT (and its rounding) differently.  We reproduce the whole pipeline:

encode:  RGB → full-range YCbCr (JFIF) → optional 4:2:0 subsample → level
         shift → 8×8 block DCT → quantisation (Annex-K tables, quality
         scaled) → zig-zag → DC DPCM + AC run-length → Huffman bitstream.

decode:  Huffman → dequantise → **iDCT variant** → clip/round → chroma
         upsample → RGB.

Four named decoders map onto the paper's four libraries:

==========  =======================  ==============================
decoder     iDCT implementation      stands in for
==========  =======================  ==============================
``pil``     Chen fast iDCT (f32)     Pillow
``opencv``  scaled-integer islow     OpenCV (libjpeg-turbo)
``ffmpeg``  float32 row–column       FFmpeg SIMD
``dali``    float64 reference        NVIDIA DALI (GPU float path)
==========  =======================  ==============================

The bitstream container is a documented internal format (magic ``RJPG``)
rather than JFIF markers — both ends are ours, and the noise of interest
lives entirely in the decode math, not the marker syntax.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from .dct import IDCT_VARIANTS, dct2

__all__ = [
    "encode", "decode", "decode_batch", "decode_with", "DECODER_LIBRARIES",
    "JpegBitstream", "quality_tables", "zigzag_order", "BASE_LUMA_QTABLE",
    "BASE_CHROMA_QTABLE", "ENTROPY_CODERS", "default_entropy",
    "set_default_entropy",
]

MAGIC = b"RJPG"

#: Entropy-coder implementations: the batched NumPy fast path (default) and
#: the scalar per-coefficient T.81 walk kept for bit-exactness testing.
ENTROPY_CODERS = ("vector", "scalar")

_DEFAULT_ENTROPY = "vector"


def default_entropy() -> str:
    """The entropy coder used when ``encode``/``decode`` get ``entropy=None``."""
    return _DEFAULT_ENTROPY


def set_default_entropy(name: str) -> str:
    """Switch the process-wide default coder; returns the previous setting."""
    global _DEFAULT_ENTROPY
    if name not in ENTROPY_CODERS:
        raise ValueError(f"unknown entropy coder {name!r}; "
                         f"choose from {ENTROPY_CODERS}")
    previous, _DEFAULT_ENTROPY = _DEFAULT_ENTROPY, name
    return previous


def _resolve_entropy(entropy: str | None) -> str:
    entropy = _DEFAULT_ENTROPY if entropy is None else entropy
    if entropy not in ENTROPY_CODERS:
        raise ValueError(f"unknown entropy coder {entropy!r}; "
                         f"choose from {ENTROPY_CODERS}")
    return entropy

# Annex K example quantisation tables (ITU-T T.81 Tables K.1/K.2).
BASE_LUMA_QTABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99]], dtype=np.int32)

BASE_CHROMA_QTABLE = np.array([
    [17, 18, 24, 47, 99, 99, 99, 99],
    [18, 21, 26, 66, 99, 99, 99, 99],
    [24, 26, 56, 99, 99, 99, 99, 99],
    [47, 66, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99]], dtype=np.int32)


def quality_tables(quality: int) -> tuple[np.ndarray, np.ndarray]:
    """IJG quality scaling of the Annex-K tables (quality in 1..100)."""
    quality = int(np.clip(quality, 1, 100))
    scale = 5000 // quality if quality < 50 else 200 - 2 * quality
    luma = np.clip((BASE_LUMA_QTABLE * scale + 50) // 100, 1, 255)
    chroma = np.clip((BASE_CHROMA_QTABLE * scale + 50) // 100, 1, 255)
    return luma.astype(np.int32), chroma.astype(np.int32)


def zigzag_order() -> np.ndarray:
    """Indices that map an (8,8) block to its 64-element zig-zag vector."""
    idx = np.arange(64).reshape(8, 8)
    order = []
    for s in range(15):
        diag = [(i, s - i) for i in range(max(0, s - 7), min(8, s + 1))]
        if s % 2 == 0:
            diag.reverse()
        order.extend(idx[i, j] for i, j in diag)
    return np.array(order)

_ZIGZAG = zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)


# ---------------------------------------------------------------------------
# JFIF full-range YCbCr
# ---------------------------------------------------------------------------

def _rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    m = np.array([[0.299, 0.587, 0.114],
                  [-0.168736, -0.331264, 0.5],
                  [0.5, -0.418688, -0.081312]])
    # One (H*W, 3) GEMM instead of H row-batched tiny matmuls (bit-identical).
    ycc = (rgb.reshape(-1, 3) @ m.T).reshape(rgb.shape)
    ycc[..., 1:] += 128.0
    return ycc


def _ycbcr_to_rgb(ycc: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    y = ycc[..., 0]
    cb = ycc[..., 1] - 128.0
    cr = ycc[..., 2] - 128.0
    if out is None:
        out = np.empty_like(ycc)
    out[..., 0] = y + 1.402 * cr
    out[..., 1] = y - 0.344136 * cb - 0.714136 * cr
    out[..., 2] = y + 1.772 * cb
    return out


# ---------------------------------------------------------------------------
# Huffman coding (ITU-T T.81 Annex K default tables)
# ---------------------------------------------------------------------------

# (bits-per-length, values) for the four standard tables.
_DC_LUMA = ([0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0],
            list(range(12)))
_DC_CHROMA = ([0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0],
              list(range(12)))
_AC_LUMA_VALS = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08,
    0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3,
    0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6,
    0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9,
    0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
    0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4,
    0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa]
_AC_LUMA = ([0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7d], _AC_LUMA_VALS)
_AC_CHROMA_VALS = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41,
    0x51, 0x07, 0x61, 0x71, 0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91,
    0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0, 0x15, 0x62, 0x72, 0xd1,
    0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
    0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44,
    0x45, 0x46, 0x47, 0x48, 0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58,
    0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6a, 0x73, 0x74,
    0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a,
    0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4,
    0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
    0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
    0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4,
    0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa]
_AC_CHROMA = ([0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 0x77], _AC_CHROMA_VALS)


def _build_huffman(bits: list[int], values: list[int]):
    """Return (encode_map: value -> (code, length), decode_map: (code,len) -> value)."""
    encode, decode = {}, {}
    code = 0
    k = 0
    for length in range(1, 17):
        for _ in range(bits[length - 1]):
            encode[values[k]] = (code, length)
            decode[(code, length)] = values[k]
            code += 1
            k += 1
        code <<= 1
    return encode, decode


_HUFF = {
    ("dc", 0): _build_huffman(*_DC_LUMA),
    ("dc", 1): _build_huffman(*_DC_CHROMA),
    ("ac", 0): _build_huffman(*_AC_LUMA),
    ("ac", 1): _build_huffman(*_AC_CHROMA),
}


class _BitWriter:
    def __init__(self):
        self.bits: list[int] = []

    def write(self, code: int, length: int) -> None:
        for i in range(length - 1, -1, -1):
            self.bits.append((code >> i) & 1)

    def tobytes(self) -> bytes:
        pad = (-len(self.bits)) % 8
        arr = np.array(self.bits + [1] * pad, dtype=np.uint8)
        return np.packbits(arr).tobytes()


class _BitReader:
    def __init__(self, data: bytes):
        self.bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        self.pos = 0

    def read(self, n: int) -> int:
        out = 0
        for _ in range(n):
            out = (out << 1) | int(self.bits[self.pos])
            self.pos += 1
        return out


def _magnitude_category(v: int) -> int:
    return int(v).bit_length() if v >= 0 else int(-v).bit_length()


def _encode_magnitude(v: int) -> tuple[int, int]:
    """JPEG signed-magnitude coding: returns (bits, length)."""
    size = _magnitude_category(v)
    if size == 0:
        return 0, 0
    if v < 0:
        v = v + (1 << size) - 1
    return v, size


def _decode_magnitude(bits: int, size: int) -> int:
    if size == 0:
        return 0
    if bits < (1 << (size - 1)):
        return bits - (1 << size) + 1
    return bits


def _encode_component(writer: _BitWriter, blocks: np.ndarray, table: int) -> None:
    """DPCM-code DC, run-length-code AC of zig-zagged quantised blocks."""
    dc_enc, _ = _HUFF[("dc", table)]
    ac_enc, _ = _HUFF[("ac", table)]
    prev_dc = 0
    for block in blocks:
        zz = block.reshape(64)[_ZIGZAG]
        diff = int(zz[0]) - prev_dc
        prev_dc = int(zz[0])
        mag, size = _encode_magnitude(diff)
        code, length = dc_enc[size]
        writer.write(code, length)
        writer.write(mag, size)
        run = 0
        last_nz = np.nonzero(zz[1:])[0]
        end = last_nz[-1] + 2 if len(last_nz) else 1
        for k in range(1, end):
            v = int(zz[k])
            if v == 0:
                run += 1
                continue
            while run > 15:
                code, length = ac_enc[0xF0]       # ZRL
                writer.write(code, length)
                run -= 16
            mag, size = _encode_magnitude(v)
            code, length = ac_enc[(run << 4) | size]
            writer.write(code, length)
            writer.write(mag, size)
            run = 0
        if end < 64:
            code, length = ac_enc[0x00]           # EOB
            writer.write(code, length)


def _read_symbol(reader: _BitReader, decode_map) -> int:
    code, length = 0, 0
    while True:
        code = (code << 1) | reader.read(1)
        length += 1
        sym = decode_map.get((code, length))
        if sym is not None:
            return sym
        if length > 16:
            raise ValueError("corrupt Huffman stream")


def _decode_component(reader: _BitReader, n_blocks: int, table: int) -> np.ndarray:
    _, dc_dec = _HUFF[("dc", table)]
    _, ac_dec = _HUFF[("ac", table)]
    out = np.zeros((n_blocks, 64), dtype=np.int32)
    prev_dc = 0
    for b in range(n_blocks):
        size = _read_symbol(reader, dc_dec)
        diff = _decode_magnitude(reader.read(size), size)
        prev_dc += diff
        out[b, 0] = prev_dc
        k = 1
        while k < 64:
            sym = _read_symbol(reader, ac_dec)
            if sym == 0x00:                      # EOB
                break
            if sym == 0xF0:                      # ZRL
                k += 16
                continue
            run, size = sym >> 4, sym & 0xF
            k += run
            out[b, k] = _decode_magnitude(reader.read(size), size)
            k += 1
    return out[:, _UNZIGZAG].reshape(n_blocks, 8, 8)


# ---------------------------------------------------------------------------
# Block helpers
# ---------------------------------------------------------------------------

def _to_blocks(plane: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Pad to multiples of 8 (edge replicate) and split into 8×8 blocks."""
    h, w = plane.shape
    ph, pw = (-h) % 8, (-w) % 8
    padded = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    hb, wb = padded.shape[0] // 8, padded.shape[1] // 8
    blocks = padded.reshape(hb, 8, wb, 8).transpose(0, 2, 1, 3).reshape(-1, 8, 8)
    return blocks, (hb, wb)


def _from_blocks(blocks: np.ndarray, grid: tuple[int, int],
                 shape: tuple[int, int]) -> np.ndarray:
    hb, wb = grid
    plane = blocks.reshape(hb, wb, 8, 8).transpose(0, 2, 1, 3).reshape(hb * 8, wb * 8)
    return plane[:shape[0], :shape[1]]


def _subsample_420(plane: np.ndarray) -> np.ndarray:
    """2×2 box average (pad odd dims by edge replication first)."""
    h, w = plane.shape
    p = np.pad(plane, ((0, h % 2), (0, w % 2)), mode="edge")
    return 0.25 * (p[0::2, 0::2] + p[0::2, 1::2] + p[1::2, 0::2] + p[1::2, 1::2])


def _upsample_2x(plane: np.ndarray, out_shape: tuple[int, int],
                 out: np.ndarray | None = None) -> np.ndarray:
    """Chroma upsampling by sample replication (the 'simple' decoder path).

    Writes ``out[..., i, j] = plane[..., i // 2, j // 2]`` directly into
    ``out`` (which may be a strided view, e.g. one channel of a packed YCbCr
    buffer), so the hot decode path allocates no intermediate double-size
    planes.  ``out_shape`` addresses the last two axes; leading batch axes
    pass through.
    """
    h, w = out_shape
    if out is None:
        out = np.empty(plane.shape[:-2] + out_shape, dtype=plane.dtype)
    hh, hw = (h + 1) // 2, (w + 1) // 2
    out[..., 0::2, 0::2] = plane[..., :hh, :hw]
    out[..., 0::2, 1::2] = plane[..., :hh, :w // 2]
    out[..., 1::2, 0::2] = plane[..., :h // 2, :hw]
    out[..., 1::2, 1::2] = plane[..., :h // 2, :w // 2]
    return out


def _upsample_2x_fancy(plane: np.ndarray, out_shape: tuple[int, int],
                       out: np.ndarray | None = None) -> np.ndarray:
    """libjpeg-style 'fancy' (triangular) chroma upsampling.

    Each output sample is a 3:1 weighted average of the two nearest chroma
    samples — the half-pixel-centred bilinear filter.  Decoders split between
    replication and fancy upsampling, and that split is the *largest*
    component of real-world decoder SysNoise (visible at colour edges).

    ``out_shape`` addresses the last two axes; leading batch axes broadcast
    through the separable matrix products.
    """
    h, w = plane.shape[-2:]

    def axis_matrix(n_in: int, n_out: int) -> np.ndarray:
        src = (np.arange(n_out) + 0.5) / 2.0 - 0.5
        lo = np.clip(np.floor(src).astype(int), 0, n_in - 1)
        hi = np.clip(lo + 1, 0, n_in - 1)
        frac = np.clip(src - lo, 0.0, 1.0)
        m = np.zeros((n_out, n_in))
        m[np.arange(n_out), lo] += 1 - frac
        m[np.arange(n_out), hi] += frac
        return m

    my = axis_matrix(h, out_shape[0])
    mx = axis_matrix(w, out_shape[1])
    if out is None:
        return my @ plane @ mx.T
    out[...] = my @ plane @ mx.T
    return out


# ---------------------------------------------------------------------------
# Public codec API
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JpegBitstream:
    """An encoded image: header fields + entropy-coded payload."""

    height: int
    width: int
    quality: int
    subsample: bool
    payload: bytes
    n_blocks: tuple[int, int, int, int]    # luma blocks, chroma blocks, grids packed

    def tobytes(self) -> bytes:
        head = struct.pack(">4sHHBB4H", MAGIC, self.height, self.width,
                           self.quality, int(self.subsample), *self.n_blocks)
        return head + self.payload

    @staticmethod
    def frombytes(data: bytes) -> "JpegBitstream":
        magic, h, w, q, sub, a, b, c, d = struct.unpack(">4sHHBB4H", data[:18])
        if magic != MAGIC:
            raise ValueError("not an RJPG bitstream")
        return JpegBitstream(h, w, q, bool(sub), data[18:], (a, b, c, d))


def encode(rgb: np.ndarray, quality: int = 90, subsample: bool = True,
           entropy: str | None = None) -> JpegBitstream:
    """Encode an (H, W, 3) uint8 RGB image into a baseline-JPEG bitstream.

    ``entropy`` picks the coder implementation — ``"vector"`` (batched NumPy,
    the default) or ``"scalar"`` (per-coefficient reference walk).  Both
    produce the identical bitstream.
    """
    entropy = _resolve_entropy(entropy)
    rgb = np.asarray(rgb)
    if rgb.dtype != np.uint8:
        raise TypeError("encode expects uint8 RGB")
    h, w = rgb.shape[:2]
    ycc = _rgb_to_ycbcr(rgb.astype(np.float64))
    luma_q, chroma_q = quality_tables(quality)

    planes = [ycc[..., 0]]
    if subsample:
        planes += [_subsample_420(ycc[..., 1]), _subsample_420(ycc[..., 2])]
    else:
        planes += [ycc[..., 1], ycc[..., 2]]

    grids = []
    quantised_planes = []
    for i, plane in enumerate(planes):
        blocks, grid = _to_blocks(plane - 128.0)
        grids.append(grid)
        coeffs = dct2(blocks)
        qtable = luma_q if i == 0 else chroma_q
        quantised = np.round(coeffs / qtable).astype(np.int32)
        quantised_planes.append((quantised, 0 if i == 0 else 1))

    if entropy == "vector":
        from .entropy import encode_planes
        payload = encode_planes(quantised_planes, _ZIGZAG)
    else:
        writer = _BitWriter()
        for quantised, table in quantised_planes:
            _encode_component(writer, quantised, table)
        payload = writer.tobytes()

    (lhb, lwb), (chb, cwb) = grids[0], grids[1]
    return JpegBitstream(h, w, quality, subsample, payload,
                         (lhb, lwb, chb, cwb))


def decode(stream: JpegBitstream, idct: str = "reference",
           chroma_upsample: str = "replicate",
           entropy: str | None = None) -> np.ndarray:
    """Decode a bitstream to (H, W, 3) uint8 RGB.

    ``idct`` selects the inverse-DCT implementation; ``chroma_upsample``
    selects ``"replicate"`` or ``"fancy"`` 4:2:0 chroma reconstruction.
    Together these span the decode-level disagreement between real libraries.
    ``entropy`` picks the Huffman decoder implementation (``"vector"`` fast
    path by default, ``"scalar"`` reference walk); both are bit-exact.

    One code path serves single images and batches: this is
    ``decode_batch([stream])[0]``, so the two can never drift apart.
    """
    return decode_batch([stream], idct, chroma_upsample, entropy)[0]


def decode_batch(streams: list, idct: str = "reference",
                 chroma_upsample: str = "replicate",
                 entropy: str | None = None) -> np.ndarray:
    """Decode a list of bitstreams into one (N, H, W, 3) uint8 batch.

    The per-image output is bit-identical to :func:`decode`; the win is
    amortisation — entropy decoding stays per-stream (Huffman streams are
    sequential), but the iDCT, un-blocking, chroma upsampling and colour
    conversion run once over the whole batch.  Streams of mixed geometry
    (shape/quality/subsampling) fall back to per-image decoding.
    """
    if len(streams) == 0:
        raise ValueError("decode_batch needs at least one stream")
    first = streams[0]
    if any(s.height != first.height or s.width != first.width
           or s.quality != first.quality or s.subsample != first.subsample
           or s.n_blocks != first.n_blocks for s in streams[1:]):
        return np.stack([decode(s, idct, chroma_upsample, entropy)
                         for s in streams])
    entropy = _resolve_entropy(entropy)
    idct_fn = IDCT_VARIANTS[idct]
    if chroma_upsample not in ("replicate", "fancy"):
        raise ValueError(f"unknown chroma upsampling {chroma_upsample!r}")
    upsample = _upsample_2x if chroma_upsample == "replicate" else _upsample_2x_fancy
    luma_q, chroma_q = quality_tables(first.quality)
    lhb, lwb, chb, cwb = first.n_blocks
    h, w = first.height, first.width
    if first.subsample:
        ch, cw = (h + 1) // 2, (w + 1) // 2
    else:
        ch, cw = h, w
    specs = [((lhb, lwb), (h, w)), ((chb, cwb), (ch, cw)),
             ((chb, cwb), (ch, cw))]

    # Entropy-decode every stream (per-stream, inherently sequential)...
    n = len(streams)
    quantised: list[list] = [[] for _ in specs]
    if entropy == "vector":
        from .entropy import ComponentDecoder
        for stream in streams:
            vec = ComponentDecoder(stream.payload)
            for i, (grid, _) in enumerate(specs):
                quantised[i].append(vec.decode_component_flat(
                    grid[0] * grid[1], 0 if i == 0 else 1))
    else:
        for stream in streams:
            reader = _BitReader(stream.payload)
            for i, (grid, _) in enumerate(specs):
                quantised[i].append(_decode_component(
                    reader, grid[0] * grid[1], 0 if i == 0 else 1))

    # ...then run the whole batch through each remaining stage at once.
    ycc = np.empty((n, h, w, 3), dtype=np.float64)
    for i, (grid, shape) in enumerate(specs):
        hb, wb = grid
        if entropy == "vector":
            # Equal-length flat lists (geometry is uniform here): one
            # np.array pass over the list-of-lists, no intermediate flatten.
            coeffs = (np.array(quantised[i], dtype=np.float64)
                      .reshape(-1, 64)[:, _UNZIGZAG].reshape(-1, 8, 8))
        else:
            coeffs = np.concatenate(quantised[i]).astype(np.float64)
        qtable = luma_q if i == 0 else chroma_q
        blocks = idct_fn(coeffs * qtable) + 128.0
        planes = (blocks.reshape(n, hb, wb, 8, 8)
                  .transpose(0, 1, 3, 2, 4)
                  .reshape(n, hb * 8, wb * 8)[:, :shape[0], :shape[1]])
        if i == 0 or not first.subsample:
            ycc[..., i] = planes
        else:
            upsample(planes, (h, w), out=ycc[..., i])
    rgb = _ycbcr_to_rgb(ycc)
    np.round(rgb, out=rgb)
    np.clip(rgb, 0, 255, out=rgb)
    return rgb.astype(np.uint8)


def iter_decode_batches(streams: list, shard_size: int,
                        idct: str = "reference",
                        chroma_upsample: str = "replicate",
                        entropy: str | None = None):
    """Decode ``streams`` lazily in shard-sized uint8 batches.

    Yields ``(offset, batch)`` pairs where ``batch`` is the
    :func:`decode_batch` of ``streams[offset:offset + shard_size]`` — every
    image bit-identical to the whole-dataset decode (decode is strictly
    per-image), but with peak memory bounded by one shard instead of the
    dataset.  This is the data-layer entry point the streaming pipeline's
    decode stage runs on, letting decode of shard *k+1* overlap inference
    on shard *k*.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    for offset in range(0, len(streams), shard_size):
        yield offset, decode_batch(streams[offset:offset + shard_size],
                                   idct, chroma_upsample, entropy)


#: The paper's four decode libraries → (iDCT variant, chroma upsampling).
#: PIL/FFmpeg ship libjpeg's fancy upsampling; OpenCV's default build and
#: DALI's GPU path replicate.
DECODER_LIBRARIES = {
    "pil": ("chen", "fancy"),
    "opencv": ("integer", "replicate"),
    "ffmpeg": ("rowcol_f32", "fancy"),
    "dali": ("reference", "replicate"),
}


def decode_with(stream: JpegBitstream, library: str) -> np.ndarray:
    """Decode with a named *library persona* (``pil``/``opencv``/``ffmpeg``/``dali``)."""
    if library not in DECODER_LIBRARIES:
        raise ValueError(f"unknown decoder persona {library!r}; "
                         f"choose from {sorted(DECODER_LIBRARIES)}")
    idct, chroma = DECODER_LIBRARIES[library]
    return decode(stream, idct=idct, chroma_upsample=chroma)
