"""8×8 block DCT/iDCT with multiple implementations.

The SysNoise paper traces decoder noise to the fact that JPEG libraries
(Pillow, OpenCV, FFmpeg, NVIDIA DALI, HUAWEI DVPP) implement the inverse DCT
differently — some use the exact float transform, some the Chen–Smith–Fralick
fast factorisation, some scaled-integer fixed-point arithmetic — and the
resulting RGB tensors differ by a few LSBs (paper §3.1, Appendix A Eq. 1-2).

This module provides four iDCT implementations that disagree in exactly that
way.  All operate on arrays of shape (..., 8, 8):

``idct_reference``   exact float64 matrix transform (ground truth);
``idct_chen``        Chen–Smith–Fralick butterfly in float32 (Pillow-like);
``idct_integer``     13-bit fixed-point scaled-integer ("islow", libjpeg-like);
``idct_rowcol_f32``  float32 row–column pass with intermediate rounding
                     (FFmpeg-like SIMD behaviour).

The forward transform and the quantisation tables live here too so the JPEG
codec is self-contained.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dct_matrix", "dct2", "idct_reference", "idct_chen", "idct_integer",
    "idct_rowcol_f32", "IDCT_VARIANTS",
]

N = 8


def dct_matrix(n: int = N, dtype=np.float64) -> np.ndarray:
    """Orthonormal type-II DCT matrix ``C`` with ``X = C x C^T`` per block."""
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    c = np.cos((2 * m + 1) * k * np.pi / (2 * n))
    c *= np.sqrt(2.0 / n)
    c[0] *= np.sqrt(0.5)
    return c.astype(dtype)


_C64 = dct_matrix(dtype=np.float64)
_C32 = dct_matrix(dtype=np.float32)


def dct2(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT on (..., 8, 8) blocks (float64, exact)."""
    return _C64 @ blocks @ _C64.T


def idct_reference(coeffs: np.ndarray) -> np.ndarray:
    """Exact inverse DCT: float64 matrix transform (paper Eq. 1)."""
    return _C64.T @ coeffs @ _C64


# ---------------------------------------------------------------------------
# Chen–Smith–Fralick fast iDCT (1977) — float32 butterflies
# ---------------------------------------------------------------------------

# The Chen–Smith–Fralick family of fast iDCTs exploits the even/odd symmetry
# cos((2(7-n)+1)kπ/16) = ±cos((2n+1)kπ/16): the 8-point transform splits into
# a 4-point even-coefficient part E and a 4-point odd part O with
# x[n] = E[n] + O[n], x[7-n] = E[n] - O[n].  We evaluate both halves in
# float32 and store the intermediate row pass in a 1/32-step fixed-point
# format, matching the reduced-precision intermediates of fast decoders.
_BASIS32 = dct_matrix(dtype=np.float32)
_EVEN32 = _BASIS32[0::2, :4].T.copy()    # (4 outputs, 4 even coeffs)
_ODD32 = _BASIS32[1::2, :4].T.copy()     # (4 outputs, 4 odd coeffs)


def _idct8_chen_1d(v: np.ndarray) -> np.ndarray:
    """Even/odd-split fast 8-point inverse DCT along the last axis (float32)."""
    v = v.astype(np.float32)
    even = v[..., 0::2] @ _EVEN32.T       # E[n], n = 0..3
    odd = v[..., 1::2] @ _ODD32.T         # O[n], n = 0..3
    out = np.empty_like(v)
    out[..., :4] = even + odd
    out[..., 4:] = (even - odd)[..., ::-1]
    return out


def idct_chen(coeffs: np.ndarray) -> np.ndarray:
    """Fast iDCT via even/odd butterflies in float32 with fixed-point rows."""
    rows = _idct8_chen_1d(coeffs)
    rows = np.round(rows * 32.0) / np.float32(32.0)   # intermediate storage
    cols = _idct8_chen_1d(np.swapaxes(rows, -1, -2))
    return np.swapaxes(cols, -1, -2).astype(np.float64)


# ---------------------------------------------------------------------------
# Scaled-integer iDCT ("islow" style): 13-bit fixed point
# ---------------------------------------------------------------------------

_FIX_BITS = 13
_FIX = 1 << _FIX_BITS
_CI = np.round(dct_matrix() * _FIX).astype(np.int64)   # fixed-point basis


def idct_integer(coeffs: np.ndarray) -> np.ndarray:
    """Fixed-point iDCT: 13-bit integer basis with rounding shifts.

    Mirrors the ``jpeg_idct_islow`` strategy of libjpeg: the cosine basis is
    quantised to integers, each 1-D pass accumulates in wide integers and
    shifts back with round-half-away rounding.  The double rounding makes the
    output differ from the float transforms by up to ±1 for typical blocks.
    """
    # Scale inputs to integer domain (coefficients are already dequantised
    # reals; libjpeg keeps them integer — we round once on entry).
    x = np.round(coeffs * 4.0).astype(np.int64)        # 2 fractional bits
    half = _FIX >> 1
    # Row pass: y = C^T x  (accumulate in int64, shift with rounding)
    y = np.einsum("ki,...kj->...ij", _CI, x)
    y = (y + half) >> _FIX_BITS
    # Column pass
    z = np.einsum("kj,...ik->...ij", _CI, y)
    z = (z + half) >> _FIX_BITS
    return z.astype(np.float64) / 4.0


def idct_rowcol_f32(coeffs: np.ndarray) -> np.ndarray:
    """Float32 row–column iDCT with an intermediate round to 1/8 steps.

    Models SIMD decoders that run the two 1-D passes in single precision and
    store the intermediate rows in a reduced-precision register format.
    """
    c = _C32
    rows = (c.T @ coeffs.astype(np.float32))
    rows = np.round(rows * 8.0) / np.float32(8.0)       # intermediate storage
    out = rows @ c
    return out.astype(np.float64)


#: name -> callable registry used by the JPEG decoder
IDCT_VARIANTS = {
    "reference": idct_reference,
    "chen": idct_chen,
    "integer": idct_integer,
    "rowcol_f32": idct_rowcol_f32,
}
