"""Vectorized JPEG entropy coding: batched RLE/Huffman over all blocks.

The scalar coder in :mod:`repro.image.jpeg` walks every coefficient (and on
decode every *bit*) in Python — faithful to T.81's prose, but two to three
orders of magnitude off what the arithmetic actually costs.  This module is
the fast path the codec uses by default:

encode
    Zig-zag, DC DPCM, magnitude categories, zero-run splitting and ZRL/EOB
    insertion all run as whole-batch NumPy array programs.  Each Huffman
    symbol / appended-magnitude pair becomes one ``(codeword, bitlength)``
    chunk; every chunk's position in the stream is computed directly from
    segmented (per-block) offset cumsums — no sort — and the chunks are
    packed into bytes with one vectorized bit-expansion + ``np.packbits``
    pass.

decode
    Huffman streams are sequential by construction, so the fast path makes
    the *per-symbol* work O(1) instead of per-bit: the payload is expanded
    once into a 24-bit-per-byte-offset window list, and flat 65536-entry
    tables resolve any 16-bit window to a packed ``(symbol, code length)``
    int in a single lookup.  Decoding follows the symbol chain through
    plain Python lists — no per-bit reads, no dict probes, no per-payload
    table construction.

Both directions are bit-exact with the scalar coder — ``tests``/
``benchmarks/bench_perf.py`` enforce it — so ``entropy="scalar"`` and
``entropy="vector"`` are interchangeable per call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["encode_planes", "ComponentDecoder"]

# The four standard tables live with the scalar coder; import lazily to keep
# module import order flexible (jpeg.py imports us too).


def _huff_tables():
    from .jpeg import _HUFF
    return _HUFF


# ---------------------------------------------------------------------------
# Encode-side lookup arrays: symbol value -> (codeword, bit length)
# ---------------------------------------------------------------------------

_ENC_CACHE: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}


def _enc_arrays(kind: str, table: int) -> tuple[np.ndarray, np.ndarray]:
    key = (kind, table)
    hit = _ENC_CACHE.get(key)
    if hit is not None:
        return hit
    enc, _ = _huff_tables()[key]
    size = 256 if kind == "ac" else 12
    codes = np.zeros(size, dtype=np.int64)
    lengths = np.zeros(size, dtype=np.int64)
    for sym, (code, length) in enc.items():
        codes[sym] = code
        lengths[sym] = length
    _ENC_CACHE[key] = (codes, lengths)
    return codes, lengths


def _bit_length(mag: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for non-negative int64 arrays."""
    # frexp is exact for integers below 2**53; JPEG coefficients are < 2**12.
    return np.frexp(mag.astype(np.float64))[1].astype(np.int64)


def _signed_magnitude(v: np.ndarray, size: np.ndarray) -> np.ndarray:
    """JPEG signed-magnitude bits of ``v`` given its category ``size``."""
    return np.where(v < 0, v + (1 << size) - 1, v)


def _enc_stacked(kind: str) -> tuple[np.ndarray, np.ndarray]:
    """Tables 0 and 1 stacked for 2-D ``[table_id, symbol]`` lookups."""
    c0, l0 = _enc_arrays(kind, 0)
    c1, l1 = _enc_arrays(kind, 1)
    return np.stack([c0, c1]), np.stack([l0, l1])


def _plane_chunks(zz: np.ndarray, table_ids: np.ndarray,
                  comp_starts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(codewords, bit lengths) of the full symbol stream, in stream order.

    ``zz`` holds *every* component's zig-zagged blocks concatenated
    (components are contiguous, starting at ``comp_starts``), ``table_ids``
    names each block's Huffman table pair — one fused pass entropy-codes all
    three planes.
    """
    dc_codes, dc_lens = _enc_stacked("dc")
    ac_codes, ac_lens = _enc_stacked("ac")
    n = len(zz)

    # DC: DPCM chains, reset at every component boundary.
    dc = zz[:, 0]
    prev = np.concatenate([[0], dc[:-1]])
    prev[comp_starts] = 0
    diff = dc - prev
    dsize = _bit_length(np.abs(diff))
    dmag = _signed_magnitude(diff, dsize)

    # AC: zero runs between nonzeros, split per block.
    ac = zz[:, 1:]
    bidx, pos = np.nonzero(ac)                  # row-major == stream order
    vals = ac[bidx, pos]
    tix = table_ids[bidx]
    first = np.empty(len(pos), dtype=bool)
    if len(pos):
        first[0] = True
        first[1:] = bidx[1:] != bidx[:-1]
    prevpos = np.concatenate([[-1], pos[:-1]]) if len(pos) else pos
    run = np.where(first, pos, pos - prevpos - 1)
    n_zrl = run >> 4                            # while run > 15: ZRL; run -= 16
    rem = run & 15
    asize = _bit_length(np.abs(vals))
    amag = _signed_magnitude(vals, asize)
    sym = (rem << 4) | asize

    # EOB wherever the block's last nonzero leaves trailing zeros (or the
    # block has no AC energy at all).
    lastpos = np.full(n, -1, dtype=np.int64)
    lastpos[bidx] = pos                         # last write per block wins
    eob = lastpos < 62
    eob_blocks = np.nonzero(eob)[0]

    # Stream layout per block: DC codeword, DC magnitude, then per nonzero
    # (ZRLs..., AC codeword, AC magnitude), then EOB.  Compute every chunk's
    # slot directly from segmented offset cumsums — no sort needed.
    chunks_per_nz = n_zrl + 2
    ac_per_block = np.bincount(bidx, weights=chunks_per_nz,
                               minlength=n).astype(np.int64)
    per_block = 2 + ac_per_block + eob
    base = np.cumsum(per_block) - per_block     # first slot of each block

    # Within-block offset of each nonzero's first chunk (its first ZRL).
    excl = np.cumsum(chunks_per_nz) - chunks_per_nz
    block_first = np.zeros(n, dtype=np.int64)
    if len(pos):
        block_first[bidx[first]] = excl[first]
    nz_slot = base[bidx] + 2 + (excl - block_first[bidx])

    total_zrl = int(n_zrl.sum())
    zrl_owner = np.repeat(np.arange(len(vals)), n_zrl)
    zrl_sub = (np.arange(total_zrl)
               - np.repeat(np.cumsum(n_zrl) - n_zrl, n_zrl))

    total = int(per_block.sum())
    codes = np.empty(total, dtype=np.int64)
    lengths = np.empty(total, dtype=np.int64)
    dc_slot = base
    codes[dc_slot] = dc_codes[table_ids, dsize]
    lengths[dc_slot] = dc_lens[table_ids, dsize]
    codes[dc_slot + 1] = dmag
    lengths[dc_slot + 1] = dsize
    if total_zrl:
        zrl_slot = nz_slot[zrl_owner] + zrl_sub
        codes[zrl_slot] = ac_codes[tix[zrl_owner], 0xF0]
        lengths[zrl_slot] = ac_lens[tix[zrl_owner], 0xF0]
    codes[nz_slot + n_zrl] = ac_codes[tix, sym]
    lengths[nz_slot + n_zrl] = ac_lens[tix, sym]
    codes[nz_slot + n_zrl + 1] = amag
    lengths[nz_slot + n_zrl + 1] = asize
    eob_slot = (base + per_block - 1)[eob_blocks]
    codes[eob_slot] = ac_codes[table_ids[eob_blocks], 0x00]
    lengths[eob_slot] = ac_lens[table_ids[eob_blocks], 0x00]
    return codes, lengths


def encode_planes(quantised_planes: list[tuple[np.ndarray, int]],
                  zigzag: np.ndarray) -> bytes:
    """Entropy-code ``[(blocks, table), ...]`` into one packed payload.

    Bit-exact with writing each component through the scalar ``_BitWriter``
    (including the trailing 1-bit padding).
    """
    flats = [blocks.reshape(-1, 64) for blocks, _ in quantised_planes]
    counts = [len(f) for f in flats]
    zz = np.concatenate(flats)[:, zigzag].astype(np.int64)
    table_ids = np.repeat([table for _, table in quantised_planes], counts)
    comp_starts = np.cumsum([0] + counts[:-1])
    codes, lengths = _plane_chunks(zz, table_ids, comp_starts)

    total = int(lengths.sum())
    if total == 0:
        return b""
    starts = np.cumsum(lengths) - lengths
    owner = np.repeat(np.arange(len(codes)), lengths)
    within = np.arange(total) - np.repeat(starts, lengths)
    shift = lengths[owner] - 1 - within
    bits = ((codes[owner] >> shift) & 1).astype(np.uint8)
    pad = (-total) % 8
    if pad:
        bits = np.concatenate([bits, np.ones(pad, dtype=np.uint8)])
    return np.packbits(bits).tobytes()


# ---------------------------------------------------------------------------
# Decode-side flat window tables: 16-bit prefix -> packed (symbol, length)
# ---------------------------------------------------------------------------

_DEC_CACHE: dict[tuple[str, int], list[int]] = {}

#: Signed-magnitude decode helpers indexed by size category:
#: value = mag if mag >= _HALF[size] else mag - _BIAS[size].
_HALF = [0] + [1 << (s - 1) for s in range(1, 17)]
_BIAS = [0] + [(1 << s) - 1 for s in range(1, 17)]


def _dec_packed(kind: str, table: int) -> list[int]:
    """65536-entry list mapping a 16-bit window to ``(symbol << 8) | length``.

    Windows that are not a valid codeword prefix map to -1.  A flat Python
    list makes the decode loop a single ``lst[window]`` per symbol.
    """
    key = (kind, table)
    hit = _DEC_CACHE.get(key)
    if hit is not None:
        return hit
    _, dec = _huff_tables()[key]
    packed = np.full(1 << 16, -1, dtype=np.int64)
    for (code, length), sym in dec.items():
        base = code << (16 - length)
        span = 1 << (16 - length)
        packed[base:base + span] = (sym << 8) | length
    out = packed.tolist()
    _DEC_CACHE[key] = out
    return out


class ComponentDecoder:
    """Chain-following Huffman decoder over a byte-aligned window list.

    One instance wraps one payload; :meth:`decode_component` is called per
    colour component exactly like the scalar ``_decode_component``, sharing
    the running bit position.  The 16-bit window at bit offset ``p`` is
    sliced out of a precomputed 24-bit-per-byte-offset list, so the
    per-payload setup is O(bytes), not O(bits).
    """

    def __init__(self, payload: bytes):
        self.n_bits = 8 * len(payload)
        data = np.frombuffer(payload, dtype=np.uint8).astype(np.int64)
        # Pad with 1-bits so 16-bit windows near the end stay in bounds
        # (matching the writer's 1-padding; never followed on valid streams).
        data = np.concatenate([data, np.full(4, 0xFF, dtype=np.int64)])
        self._by24 = ((data[:-2] << 16) | (data[1:-1] << 8) | data[2:]).tolist()
        self.pos = 0

    def decode_component(self, n_blocks: int, table: int,
                         unzigzag: np.ndarray) -> np.ndarray:
        coeffs = np.array(self.decode_component_flat(n_blocks, table),
                          dtype=np.int32).reshape(n_blocks, 64)
        return coeffs[:, unzigzag].reshape(n_blocks, 8, 8)

    def decode_component_flat(self, n_blocks: int, table: int) -> list[int]:
        """One component's coefficients as a flat zig-zag-order list.

        The batch decoder concatenates these across streams and does the
        array conversion + un-zig-zag once per component instead of per
        stream.
        """
        by24 = self._by24
        dpack = _dec_packed("dc", table)
        apack = _dec_packed("ac", table)
        half, bias = _HALF, _BIAS
        out = [0] * (n_blocks * 64)
        pos = self.pos
        prev_dc = 0
        for b in range(n_blocks):
            base = b * 64
            p = dpack[(by24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF]
            if p < 0:
                raise ValueError("corrupt Huffman stream")
            size = p >> 8
            pos += p & 255
            if size:
                mag = (by24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
                mag >>= 16 - size
                prev_dc += mag if mag >= half[size] else mag - bias[size]
                pos += size
            out[base] = prev_dc
            k = 1
            while k < 64:
                p = apack[(by24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF]
                if p < 0:
                    raise ValueError("corrupt Huffman stream")
                sym = p >> 8
                pos += p & 255
                if sym == 0x00:                  # EOB
                    break
                if sym == 0xF0:                  # ZRL
                    k += 16
                    continue
                k += sym >> 4
                size = sym & 15
                mag = (by24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
                mag >>= 16 - size
                if k > 63:
                    raise ValueError("corrupt Huffman stream")
                out[base + k] = mag if mag >= half[size] else mag - bias[size]
                pos += size
                k += 1
        self.pos = pos
        return out
