"""Image substrate: JPEG codec, resize kernels, colour conversion.

These are the from-scratch replacements for Pillow / OpenCV / FFmpeg / DALI /
Ascend ACL whose implementation differences *are* the paper's pre-processing
SysNoise.
"""

from .color import (COLOR_PIPELINES, color_roundtrip, rgb_to_yuv_bt601,
                    subsample_420, upsample_420, yuv_to_rgb_bt601,
                    yuv_to_rgb_integer)
from .dct import (IDCT_VARIANTS, dct2, dct_matrix, idct_chen, idct_integer,
                  idct_reference, idct_rowcol_f32)
from .jpeg import (DECODER_LIBRARIES, ENTROPY_CODERS, JpegBitstream, decode,
                   decode_batch, decode_with, default_entropy, encode,
                   iter_decode_batches, quality_tables, set_default_entropy,
                   zigzag_order)
from .learned_codec import LearnedCodec
from .resize import (OPENCV_METHODS, PILLOW_METHODS, RESIZE_METHODS,
                     iter_resize_batches, resize, resize_batch, resize_matrix)

__all__ = [
    "dct_matrix", "dct2", "idct_reference", "idct_chen", "idct_integer",
    "idct_rowcol_f32", "IDCT_VARIANTS",
    "encode", "decode", "decode_batch", "decode_with", "iter_decode_batches",
    "DECODER_LIBRARIES", "JpegBitstream",
    "quality_tables", "zigzag_order", "ENTROPY_CODERS", "default_entropy",
    "set_default_entropy",
    "resize", "resize_batch", "iter_resize_batches", "resize_matrix",
    "RESIZE_METHODS",
    "PILLOW_METHODS", "OPENCV_METHODS",
    "rgb_to_yuv_bt601", "yuv_to_rgb_bt601", "yuv_to_rgb_integer",
    "subsample_420", "upsample_420", "color_roundtrip", "COLOR_PIPELINES",
    "LearnedCodec",
]
