"""STFT implementations with deployment-level disagreement (paper Appendix C).

The paper's text-to-speech appendix finds that *different STFT operator
implementations* in the deployment stack introduce SysNoise.  Real stacks
disagree on: window symmetry (periodic vs symmetric Hann), accumulation
precision (float32 vs float64), and magnitude computation order.  The two
variants here reproduce exactly those axes:

``stft_reference``   float64, periodic Hann (librosa/torch.stft behaviour);
``stft_deployed``    float32, *symmetric* Hann, magnitude computed as
                     sqrt(re² + im²) in float32 (a common DSP-kernel recipe).
"""

from __future__ import annotations

import numpy as np

__all__ = ["stft_reference", "stft_deployed", "STFT_VARIANTS", "mel_filterbank",
           "mel_spectrogram"]


def _frame(signal: np.ndarray, n_fft: int, hop: int) -> np.ndarray:
    n_frames = 1 + max(0, (len(signal) - n_fft)) // hop
    idx = np.arange(n_fft)[None, :] + hop * np.arange(n_frames)[:, None]
    return signal[idx]


def stft_reference(signal: np.ndarray, n_fft: int = 128, hop: int = 64) -> np.ndarray:
    """Magnitude STFT, float64, periodic Hann window."""
    window = 0.5 - 0.5 * np.cos(2 * np.pi * np.arange(n_fft) / n_fft)
    frames = _frame(signal.astype(np.float64), n_fft, hop) * window
    return np.abs(np.fft.rfft(frames, axis=-1))


def stft_deployed(signal: np.ndarray, n_fft: int = 128, hop: int = 64) -> np.ndarray:
    """Magnitude STFT, float32, symmetric Hann, float32 magnitude math."""
    window = (0.5 - 0.5 * np.cos(2 * np.pi * np.arange(n_fft)
                                 / (n_fft - 1))).astype(np.float32)
    frames = _frame(signal.astype(np.float32), n_fft, hop) * window
    spec = np.fft.rfft(frames.astype(np.float32), axis=-1)
    re = spec.real.astype(np.float32)
    im = spec.imag.astype(np.float32)
    return np.sqrt(re * re + im * im).astype(np.float64)


STFT_VARIANTS = {"reference": stft_reference, "deployed": stft_deployed}


def mel_filterbank(n_mels: int, n_fft: int, sample_rate: int) -> np.ndarray:
    """Triangular mel filterbank (n_mels, n_fft//2 + 1)."""
    def hz_to_mel(f):
        return 2595.0 * np.log10(1.0 + f / 700.0)

    def mel_to_hz(m):
        return 700.0 * (10.0 ** (m / 2595.0) - 1.0)

    n_bins = n_fft // 2 + 1
    fmax = sample_rate / 2
    mels = np.linspace(0, hz_to_mel(fmax), n_mels + 2)
    freqs = mel_to_hz(mels)
    bins = np.floor((n_fft + 1) * freqs / sample_rate).astype(int)
    fb = np.zeros((n_mels, n_bins))
    for i in range(n_mels):
        lo, mid, hi = bins[i], bins[i + 1], bins[i + 2]
        if mid > lo:
            fb[i, lo:mid] = (np.arange(lo, mid) - lo) / (mid - lo)
        if hi > mid:
            fb[i, mid:hi] = (hi - np.arange(mid, hi)) / (hi - mid)
    return fb


def mel_spectrogram(signal: np.ndarray, variant: str = "reference",
                    n_fft: int = 128, hop: int = 64, n_mels: int = 16,
                    sample_rate: int = 4000) -> np.ndarray:
    """Log-mel spectrogram (frames, n_mels) via the named STFT variant."""
    if variant not in STFT_VARIANTS:
        raise ValueError(f"unknown STFT variant {variant!r}")
    mag = STFT_VARIANTS[variant](signal, n_fft, hop)
    fb = mel_filterbank(n_mels, n_fft, sample_rate)
    mel = mag @ fb.T
    return np.log(mel + 1e-5)
