"""Audio substrate: STFT variants + toy TTS models (paper Appendix C)."""

from .stft import (STFT_VARIANTS, mel_filterbank, mel_spectrogram,
                   stft_deployed, stft_reference)
from .tts import (FRAMES_PER_TOKEN, FastSpeechLite, TacotronLite,
                  TTSTrainConfig, mel_targets, train_tts,
                  tts_deployment_model, tts_mse, tts_mse_range)

__all__ = [
    "stft_reference", "stft_deployed", "STFT_VARIANTS", "mel_filterbank",
    "mel_spectrogram",
    "FastSpeechLite", "TacotronLite", "TTSTrainConfig", "train_tts",
    "tts_mse", "tts_deployment_model", "tts_mse_range", "mel_targets",
    "FRAMES_PER_TOKEN",
]
