"""Toy TTS models + the Table 10 SysNoise measurement.

Two architectures stand in for FastSpeech 2 and Tacotron 2:

* **FastSpeechLite** — parallel (non-autoregressive): each phoneme embedding
  is mapped by an MLP directly to its block of mel frames;
* **TacotronLite**  — sequential flavour: embeddings pass through a causal
  conv over the token sequence before frame expansion (so each frame depends
  on past context, a lightweight autoregressive analogue).

Both are trained to regress log-mel targets computed with the *reference*
STFT.  At deployment, Table 10 measures the MSE added by (a) casting the
model to FP16/INT8 and (b) computing features with the *deployed* STFT
variant — and their combination.
"""

from __future__ import annotations

import numpy as np

import repro.nn as nn
from repro.nn import Tensor, no_grad

from ..data.audio import PHONEME_COUNT, SAMPLE_RATE, TOKEN_SAMPLES, TTSDataset
from .stft import mel_spectrogram

__all__ = ["FastSpeechLite", "TacotronLite", "TTSTrainConfig", "train_tts",
           "tts_mse", "tts_deployment_model", "tts_mse_range",
           "FRAMES_PER_TOKEN", "mel_targets"]

N_FFT, HOP, N_MELS = 128, 64, 16
# Frames contributed by one token's samples (see data.audio.TOKEN_SAMPLES).
FRAMES_PER_TOKEN = TOKEN_SAMPLES // HOP


class FastSpeechLite(nn.Module):
    """Parallel token → mel-frame-block regressor."""

    def __init__(self, dim: int = 24, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.emb = nn.Embedding(PHONEME_COUNT, dim, rng=rng)
        self.fc1 = nn.Linear(dim, 2 * dim, rng=rng)
        self.fc2 = nn.Linear(2 * dim, FRAMES_PER_TOKEN * N_MELS, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """tokens (L,) -> mel (L * FRAMES_PER_TOKEN, N_MELS)."""
        x = self.emb(np.asarray(tokens))                   # (L, D)
        out = self.fc2(self.fc1(x).relu())                 # (L, F*M)
        return out.reshape(len(tokens) * FRAMES_PER_TOKEN, N_MELS)


class TacotronLite(nn.Module):
    """Sequential flavour: causal mixing over tokens before frame expansion."""

    def __init__(self, dim: int = 24, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.emb = nn.Embedding(PHONEME_COUNT, dim, rng=rng)
        self.mix_prev = nn.Linear(dim, dim, rng=rng)       # context from t-1
        self.mix_cur = nn.Linear(dim, dim, rng=rng)
        self.fc = nn.Linear(dim, FRAMES_PER_TOKEN * N_MELS, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        x = self.emb(tokens)                               # (L, D)
        prev = np.concatenate([[0], tokens[:-1]])
        ctx = self.emb(prev)
        h = (self.mix_cur(x) + self.mix_prev(ctx)).relu()
        return self.fc(h).reshape(len(tokens) * FRAMES_PER_TOKEN, N_MELS)


def mel_targets(waveform: np.ndarray, n_tokens: int,
                variant: str = "reference") -> np.ndarray:
    """Log-mel target matrix aligned to the model's frame grid."""
    mel = mel_spectrogram(waveform, variant=variant, n_fft=N_FFT, hop=HOP,
                          n_mels=N_MELS, sample_rate=SAMPLE_RATE)
    return mel[:n_tokens * FRAMES_PER_TOKEN]


class TTSTrainConfig:
    def __init__(self, epochs: int = 40, lr: float = 3e-3, seed: int = 0):
        self.epochs, self.lr, self.seed = epochs, lr, seed


def train_tts(model: nn.Module, dataset: TTSDataset,
              cfg: TTSTrainConfig | None = None) -> list[float]:
    """MSE regression onto reference-STFT log-mel targets."""
    cfg = cfg or TTSTrainConfig()
    rng = np.random.default_rng(cfg.seed)
    opt = nn.Adam(model.parameters(), lr=cfg.lr)
    targets = [mel_targets(w, len(t))
               for t, w in zip(dataset.token_seqs, dataset.waveforms)]
    history = []
    model.train()
    for _ in range(cfg.epochs):
        order = rng.permutation(len(dataset))
        losses = []
        for i in order:
            pred = model(dataset.token_seqs[i])
            # Frame counts can differ by 1 at the tail; align conservatively.
            n = min(pred.shape[0], targets[i].shape[0])
            loss = ((pred[:n] - Tensor(targets[i][:n])) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
    model.eval()
    return history


def tts_mse(model: nn.Module, dataset: TTSDataset, *,
            precision: str = "fp32", stft_variant: str = "reference",
            calib_tokens: np.ndarray | None = None) -> float:
    """Mean MSE between model output and deployment-side log-mel targets.

    ``precision`` converts the model (FP16/INT8); ``stft_variant`` selects the
    deployment STFT used for the comparison targets.  Matches the Table 10
    protocol: MSE grows when either side of the pipeline changes.
    """
    qmodel = tts_deployment_model(model, precision, dataset, calib_tokens)
    errs = tts_mse_range(qmodel, dataset, 0, len(dataset),
                         stft_variant=stft_variant)
    return float(np.mean(errs))


def tts_deployment_model(model: nn.Module, precision: str,
                         dataset: TTSDataset,
                         calib_tokens: np.ndarray | None = None) -> nn.Module:
    """The precision-converted, eval-mode TTS deployment copy.

    INT8 calibration pins to the dataset's *first* utterance (the
    calibration shard): a shard evaluated in isolation must calibrate on
    the same tokens the monolithic path does, so it always draws them from
    the full dataset, never from its own slice.
    """
    from repro.nn import apply_precision
    calibrate = None
    if precision == "int8":
        toks = calib_tokens if calib_tokens is not None else dataset.token_seqs[0]
        calibrate = lambda m: m(toks)
    qmodel = apply_precision(model, precision, calibrate)
    qmodel.eval()
    return qmodel


def tts_mse_range(qmodel: nn.Module, dataset: TTSDataset, start: int,
                  stop: int, *, stft_variant: str = "reference") -> list[float]:
    """Per-utterance MSEs for items ``[start, stop)`` (the shard work unit).

    Utterances score independently, so ranged lists concatenate (in index
    order) to exactly the list the monolithic :func:`tts_mse` averages.
    """
    errs = []
    with no_grad():
        for i in range(start, stop):
            tokens, wave = dataset.token_seqs[i], dataset.waveforms[i]
            pred = qmodel(tokens).data
            target = mel_targets(wave, len(tokens), variant=stft_variant)
            n = min(len(pred), len(target))
            errs.append(float(((pred[:n] - target[:n]) ** 2).mean()))
    return errs
