"""Integration tests: detectors train on synthetic scenes and detect objects."""

import numpy as np
import pytest

from repro.data import make_detection_dataset
from repro.detection import (DetBackbone, DetTrainConfig, FasterRCNNLite, FPN,
                             RetinaNetLite, assign_anchors,
                             mean_average_precision, roi_align, train_detector)
from repro.nn import Tensor


def to_input(images):
    return images.astype(np.float64).transpose(0, 3, 1, 2) / 255.0 - 0.5


class TestBackboneAndFPN:
    def test_feature_strides(self):
        bb = DetBackbone("resnet-34")
        c3, c4 = bb(Tensor(np.random.default_rng(0).standard_normal((1, 3, 32, 32))))
        assert c3.shape[2:] == (8, 8)    # stride 4
        assert c4.shape[2:] == (4, 4)    # stride 8

    def test_mobilenet_backbone_has_no_pool(self):
        assert DetBackbone("mobilenetv2").pool is None
        assert DetBackbone("resnet-50").pool is not None

    def test_unknown_backbone(self):
        with pytest.raises(ValueError):
            DetBackbone("vgg")

    def test_fpn_output_channels_uniform(self):
        bb = DetBackbone("resnet-34")
        fpn = FPN(bb.out_channels, 16)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 3, 32, 32)))
        p3, p4 = fpn(*bb(x))
        assert p3.shape[1] == p4.shape[1] == 16

    def test_fpn_upsample_mode_changes_output(self):
        bb = DetBackbone("resnet-34")
        fpn = FPN(bb.out_channels, 8, upsample_mode="nearest")
        bb.eval(), fpn.eval()
        x = Tensor(np.random.default_rng(2).standard_normal((1, 3, 32, 32)))
        p3_near, _ = fpn(*bb(x))
        fpn.upsample_mode = "bilinear"
        p3_bil, _ = fpn(*bb(x))
        assert not np.allclose(p3_near.data, p3_bil.data)

    def test_fpn_handles_ceil_mode_size_drift(self):
        """Ceil-mode flip grows C3/C4; FPN must still align them."""
        bb = DetBackbone("resnet-50")
        fpn = FPN(bb.out_channels, 8)
        bb.eval(), fpn.eval()
        x = Tensor(np.random.default_rng(3).standard_normal((1, 3, 36, 36)))
        bb.pool.ceil_mode = True
        p3, p4 = fpn(*bb(x))
        assert p3.shape[2] >= 9   # grew relative to floor mode


class TestAssignment:
    def test_perfect_anchor_positive(self):
        anchors = np.array([[0, 0, 10, 10], [50, 50, 60, 60]], dtype=float)
        gt = np.array([[0.0, 0, 0, 10, 10]])
        labels, matched = assign_anchors(anchors, gt)
        assert labels[0] == 1 and matched[0] == 0

    def test_empty_gt_all_background(self):
        anchors = np.array([[0, 0, 10, 10]], dtype=float)
        labels, _ = assign_anchors(anchors, np.empty((0, 5)))
        assert labels[0] == 0

    def test_every_gt_gets_an_anchor(self):
        rng = np.random.default_rng(0)
        anchors = np.concatenate([rng.uniform(0, 30, (50, 2)),
                                  rng.uniform(34, 64, (50, 2))], axis=1)
        gt = np.array([[0.0, 1, 1, 8, 8], [1.0, 40, 40, 60, 60]])
        labels, matched = assign_anchors(anchors, gt)
        assert set(matched[labels == 1]) == {0, 1}


class TestRoIAlign:
    def test_full_image_roi_matches_downsample(self):
        feat = Tensor(np.arange(64.0).reshape(1, 1, 8, 8))
        rois = np.array([[0, 0, 0, 32, 32]], dtype=float)   # full map at stride 4
        crop = roi_align(feat, rois, out_size=8, stride=4)
        np.testing.assert_allclose(crop.data[0, 0], feat.data[0, 0], atol=1e-9)

    def test_shape(self):
        feat = Tensor(np.random.default_rng(0).standard_normal((2, 3, 8, 8)))
        rois = np.array([[0, 4, 4, 16, 16], [1, 0, 0, 8, 8]], dtype=float)
        crop = roi_align(feat, rois, out_size=4, stride=4)
        assert crop.shape == (2, 3, 4, 4)

    def test_gradient_flows_to_features(self):
        feat = Tensor(np.random.default_rng(1).standard_normal((1, 2, 8, 8)),
                      requires_grad=True)
        rois = np.array([[0, 0, 0, 16, 16]], dtype=float)
        roi_align(feat, rois, 4, stride=4).sum().backward()
        assert feat.grad is not None and np.abs(feat.grad).sum() > 0


@pytest.fixture(scope="module")
def tiny_det_data():
    # native_scale=1.0 keeps image pixels in GT coordinates for direct training.
    ds = make_detection_dataset(n=48, size=48, seed=0, max_objects=2,
                                native_scale=1.0)
    return to_input(ds.images), ds.gt_boxes


@pytest.fixture(scope="module")
def trained_retinanet(tiny_det_data):
    x, gts = tiny_det_data
    model = RetinaNetLite(backbone="resnet-34", num_classes=3, fpn_channels=12,
                          seed=0)
    history = train_detector(model, x, gts,
                             DetTrainConfig(epochs=10, batch_size=8, lr=4e-3))
    return model, history


class TestRetinaNetEndToEnd:
    def test_loss_decreases(self, trained_retinanet):
        _, history = trained_retinanet
        assert history[-1] < history[0]

    def test_detects_objects(self, trained_retinanet, tiny_det_data):
        model, _ = trained_retinanet
        x, gts = tiny_det_data
        dets = model.predict(x[:16], score_threshold=0.3)
        mAP = mean_average_precision(dets, gts[:16], 3)
        assert mAP > 10.0    # far above the ~0 of an untrained net

    def test_untrained_is_worse(self, trained_retinanet, tiny_det_data):
        model, _ = trained_retinanet
        x, gts = tiny_det_data
        fresh = RetinaNetLite(backbone="resnet-34", num_classes=3,
                              fpn_channels=12, seed=9)
        trained_map = mean_average_precision(model.predict(x[:12]), gts[:12], 3)
        fresh_map = mean_average_precision(fresh.predict(x[:12]), gts[:12], 3)
        assert trained_map > fresh_map

    def test_detection_format(self, trained_retinanet, tiny_det_data):
        model, _ = trained_retinanet
        x, _ = tiny_det_data
        for det in model.predict(x[:4]):
            assert det.ndim == 2 and det.shape[1] == 6
            if len(det):
                assert det[:, 0].max() < 3        # class ids
                assert (det[:, 1] >= 0.0).all()   # scores

    def test_aligned_offset_changes_boxes(self, trained_retinanet, tiny_det_data):
        model, _ = trained_retinanet
        x, _ = tiny_det_data
        base = model.predict(x[:4])
        model.aligned_offset = 1.0
        shifted = model.predict(x[:4])
        model.aligned_offset = 0.0
        moved = any(len(a) and len(b) and not np.allclose(a[:, 2:], b[:len(a), 2:])
                    for a, b in zip(base, shifted))
        assert moved


class TestFasterRCNN:
    def test_trains_and_detects(self, tiny_det_data):
        x, gts = tiny_det_data
        model = FasterRCNNLite(backbone="resnet-34", num_classes=3,
                               fpn_channels=12, seed=0)
        history = train_detector(model, x[:32], gts[:32],
                                 DetTrainConfig(epochs=8, batch_size=8, lr=4e-3))
        assert history[-1] < history[0]
        dets = model.predict(x[:12], score_threshold=0.4)
        mAP = mean_average_precision(dets, gts[:12], 3)
        assert mAP > 5.0

    def test_predict_empty_safe(self):
        model = FasterRCNNLite(backbone="mobilenetv2", num_classes=3, seed=1)
        x = np.zeros((1, 3, 32, 32))
        dets = model.predict(x, score_threshold=0.99)
        assert dets[0].shape[1] == 6 or len(dets[0]) == 0
