"""Serialisation tests: model checkpoints (.npz) and deployment graphs."""

import numpy as np
import pytest

import repro.nn as nn
from repro.backend import (GraphBuilder, GraphError, ReferenceExecutor,
                           export_module, load_graph, save_graph)
from repro.models import create_model
from repro.nn import (CheckpointError, Tensor, load_checkpoint, no_grad,
                      save_checkpoint)

RNG = np.random.default_rng(5)
X = RNG.normal(size=(2, 3, 32, 32))


def forward(model):
    model.eval()
    with no_grad():
        return model(Tensor(X)).data


class TestCheckpoint:
    def test_roundtrip_preserves_outputs(self, tmp_path):
        model = create_model("resnet18x0.25", num_classes=5, seed=1)
        want = forward(model)
        path = save_checkpoint(model, tmp_path / "ckpt.npz")
        fresh = create_model("resnet18x0.25", num_classes=5, seed=99)
        assert np.abs(forward(fresh) - want).max() > 0   # different init
        load_checkpoint(fresh, path)
        np.testing.assert_array_equal(forward(fresh), want)

    def test_buffers_roundtrip(self, tmp_path):
        """BatchNorm running statistics must survive, not just parameters."""
        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.BatchNorm2d(4))
        bn = model[1]
        bn.running_mean[...] = np.arange(4.0)
        path = save_checkpoint(model, tmp_path / "c.npz")
        fresh = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.BatchNorm2d(4))
        load_checkpoint(fresh, path)
        np.testing.assert_array_equal(fresh[1].running_mean, np.arange(4.0))

    def test_npz_suffix_added(self, tmp_path):
        model = nn.Sequential(nn.Linear(2, 2))
        path = save_checkpoint(model, tmp_path / "weights")
        assert path.suffix == ".npz" and path.exists()

    def test_architecture_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(create_model("resnet18x0.25", num_classes=5),
                               tmp_path / "c.npz")
        other = create_model("mobilenetv2-0.5", num_classes=5)
        with pytest.raises(CheckpointError, match="state mismatch"):
            load_checkpoint(other, path)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(nn.Sequential(nn.Linear(4, 2)),
                               tmp_path / "c.npz")
        with pytest.raises(CheckpointError, match="shape mismatch"):
            load_checkpoint(nn.Sequential(nn.Linear(8, 2)), path)

    def test_foreign_npz_rejected(self, tmp_path):
        np.savez(tmp_path / "c.npz", junk=np.ones(3))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(nn.Sequential(nn.Linear(2, 2)),
                            tmp_path / "c.npz")

    def test_load_returns_model(self, tmp_path):
        model = nn.Sequential(nn.Linear(2, 2))
        path = save_checkpoint(model, tmp_path / "c.npz")
        assert load_checkpoint(model, path) is model


class TestGraphSerialize:
    def test_roundtrip_preserves_execution(self, tmp_path):
        graph = export_module(create_model("mobilenetv2-0.5", num_classes=5,
                                           seed=2))
        path = save_graph(graph, tmp_path / "g.npz")
        loaded = load_graph(path)
        np.testing.assert_array_equal(ReferenceExecutor().run(loaded, X),
                                      ReferenceExecutor().run(graph, X))

    def test_structure_preserved(self, tmp_path):
        graph = export_module(create_model("resnet18x0.25", num_classes=5))
        loaded = load_graph(save_graph(graph, tmp_path / "g.npz"))
        assert [n.op for n in loaded.nodes] == [n.op for n in graph.nodes]
        assert [n.name for n in loaded.nodes] == [n.name for n in graph.nodes]
        assert loaded.input == graph.input and loaded.output == graph.output
        assert set(loaded.initializers) == set(graph.initializers)

    def test_array_attrs_roundtrip(self, tmp_path):
        """constant nodes carry ndarray attrs, which spill to array storage."""
        b = GraphBuilder("const")
        c = b.emit("constant", [], attrs=dict(value=np.arange(6.0).reshape(2, 3)))
        out = b.emit("add", ["x", c])
        graph = b.finish(out)
        loaded = load_graph(save_graph(graph, tmp_path / "g.npz"))
        np.testing.assert_array_equal(loaded.nodes[0].attrs["value"],
                                      np.arange(6.0).reshape(2, 3))

    def test_tuple_attrs_roundtrip(self, tmp_path):
        b = GraphBuilder("rs")
        out = b.emit("reshape", ["x"], attrs=dict(shape=(0, -1, 1, 1)))
        loaded = load_graph(save_graph(b.finish(out), tmp_path / "g.npz"))
        assert loaded.nodes[0].attrs["shape"] == (0, -1, 1, 1)

    def test_foreign_file_rejected(self, tmp_path):
        np.savez(tmp_path / "g.npz", junk=np.ones(3))
        with pytest.raises(GraphError, match="not a repro graph"):
            load_graph(tmp_path / "g.npz")

    def test_invalid_graph_not_saved(self, tmp_path):
        from repro.backend import Graph, Node
        bad = Graph("bad", "x", "missing",
                    nodes=[Node("relu", ("ghost",), "y")])
        with pytest.raises(GraphError):
            save_graph(bad, tmp_path / "g.npz")
