"""Tests for the TaskAdapter registry: every built-in round-trips
build_model → load_dataset → (train) → evaluate on a tiny dataset."""

import numpy as np
import pytest

from repro.core import (TRAIN_CONFIG, TaskAdapter, get_task, register_task,
                        task_names, unregister_task)


class TestTaskRegistry:
    def test_builtin_tasks_registered(self):
        assert task_names() == ["cls", "det", "seg", "nlp", "audio"]

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError, match="unknown task"):
            get_task("speech-to-speech")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_task(get_task("cls"))

    def test_custom_task_single_registration(self):
        class EchoAdapter(TaskAdapter):
            name = "echo"
            metric_name = "ACC"

            def evaluate(self, model, ds, cfg=TRAIN_CONFIG, *, cache=None):
                return 100.0

        register_task(EchoAdapter)
        try:
            assert get_task("echo").evaluate(None, None) == 100.0
            assert "echo" in task_names()
        finally:
            unregister_task("echo")
        assert "echo" not in task_names()

    def test_noises_view_derives_from_registry(self):
        assert get_task("cls").noises == ["decoder", "resize", "color",
                                          "precision", "ceil_mode"]
        assert get_task("audio").noises == ["precision"]


class TestClassificationAdapter:
    @pytest.fixture(scope="class")
    def setup(self):
        adapter = get_task("cls")
        ds = adapter.load_dataset(n=60, native_size=40, input_size=32, seed=0)
        train, val = ds.split(44)
        model = adapter.build_model("resnet18x0.25",
                                    num_classes=train.num_classes, seed=0)
        adapter.train(model, train, model_name="resnet18x0.25", epochs=6)
        return adapter, model, val

    def test_round_trip_metric_range(self, setup):
        adapter, model, val = setup
        acc = adapter.evaluate(model, val, TRAIN_CONFIG)
        assert 0.0 <= acc <= 100.0

    def test_noise_config_changes_pixels_not_crash(self, setup):
        adapter, model, val = setup
        noised = adapter.evaluate(model, val,
                                  TRAIN_CONFIG.with_(resize_method="cv-nearest"))
        assert 0.0 <= noised <= 100.0


class TestDetectionAdapter:
    def test_round_trip(self):
        adapter = get_task("det")
        ds = adapter.load_dataset(n=10, size=48, seed=0)
        model = adapter.build_model("retinanet", num_classes=ds.num_classes)
        mAP = adapter.evaluate(model, ds, TRAIN_CONFIG)
        assert 0.0 <= mAP <= 100.0

    def test_rcnn_builds(self):
        adapter = get_task("det")
        model = adapter.build_model("rcnn", num_classes=3)
        assert type(model).__name__ == "FasterRCNNLite"


class TestSegmentationAdapter:
    def test_round_trip_with_training(self):
        adapter = get_task("seg")
        ds = adapter.load_dataset(n=12, size=32, seed=0)
        train, val = ds.split(8)
        model = adapter.build_model("unet", num_classes=ds.num_classes)
        adapter.train(model, train, epochs=2)
        miou = adapter.evaluate(model, val, TRAIN_CONFIG)
        assert 0.0 <= miou <= 100.0


class TestNLPAdapter:
    @pytest.fixture(scope="class")
    def setup(self):
        adapter = get_task("nlp")
        ds = adapter.load_dataset(task="piqa", n=8, seed=0)
        model = adapter.build_model("opt-125m", seed=0)
        return adapter, model, ds

    def test_round_trip_fp32(self, setup):
        adapter, model, ds = setup
        acc = adapter.evaluate(model, ds, TRAIN_CONFIG)
        assert 0.0 <= acc <= 100.0

    def test_precision_noise_handles_int8_calibration(self, setup):
        adapter, model, ds = setup
        acc = adapter.evaluate(model, ds, TRAIN_CONFIG.with_(precision="int8"))
        assert 0.0 <= acc <= 100.0


class TestAudioAdapter:
    def test_round_trip_with_training(self):
        adapter = get_task("audio")
        ds = adapter.load_dataset(n=6, seed=0)
        model = adapter.build_model("fastspeech2", seed=0)
        adapter.train(model, ds, epochs=2)
        clean = adapter.evaluate(model, ds, TRAIN_CONFIG)
        fp16 = adapter.evaluate(model, ds, TRAIN_CONFIG.with_(precision="fp16"))
        assert np.isfinite(clean) and np.isfinite(fp16)
        assert clean >= 0.0
