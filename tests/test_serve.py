"""Serving-layer tests: spec validation, queue, rate limit, restart replay.

Most tests inject a stub runner into :class:`JobManager` so they exercise
the serving machinery (validation, admission, dedup, events, recovery)
without paying for real training; one end-to-end test at the bottom drives
a real tiny sweep through HTTP and checks table parity against the
in-process session.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (Draining, EvalService, JobManager, JobSpec,
                         QueueFull, ValidationError)
from repro.serve.ratelimit import RateLimiter, TokenBucket


def _post(base, doc, client=None):
    headers = {"Content-Type": "application/json"}
    if client:
        headers["X-Client-Id"] = client
    req = urllib.request.Request(base + "/v1/jobs",
                                 data=json.dumps(doc).encode(),
                                 method="POST", headers=headers)
    resp = urllib.request.urlopen(req)
    return resp.status, json.load(resp)


def _get(base, path, client=None):
    headers = {"X-Client-Id": client} if client else {}
    req = urllib.request.Request(base + path, headers=headers)
    resp = urllib.request.urlopen(req)
    return resp.status, resp.read()


TINY = {"model": "mcunet-293kb", "n": 16, "epochs": 1, "noises": ["color"],
        "include_combined": False}


# ---------------------------------------------------------------------------
# Spec validation (the HTTP 400 surface)
# ---------------------------------------------------------------------------

class TestJobSpec:
    def test_defaults_fill_in(self):
        spec = JobSpec({})
        assert spec.kind == "sweep" and spec.model == "resnet18x0.25"
        assert spec.noises and spec.epochs == 15

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="epochz"):
            JobSpec({"epochz": 3})

    def test_unknown_model_rejected(self):
        with pytest.raises(ValidationError, match="alexnet-9000"):
            JobSpec({"model": "alexnet-9000"})

    def test_unknown_noise_rejected(self):
        with pytest.raises(ValidationError, match="gamma-rays"):
            JobSpec({"noises": ["gamma-rays"]})

    def test_bounds_enforced(self):
        with pytest.raises(ValidationError, match="epochs"):
            JobSpec({"epochs": 0})
        with pytest.raises(ValidationError, match="train_frac"):
            JobSpec({"train_frac": 1.5})
        with pytest.raises(ValidationError, match="kind"):
            JobSpec({"kind": "trainonly"})
        with pytest.raises(ValidationError, match="integer"):
            JobSpec({"n": "forty"})

    def test_digest_is_stable_and_normalised(self):
        # Explicit defaults digest identically to omitted ones.
        assert JobSpec({"n": 240}).digest() == JobSpec({}).digest()
        assert JobSpec({"n": 64}).digest() != JobSpec({}).digest()

    def test_zoo_skip_rule(self):
        assert "ceil_mode" in JobSpec({"model": "mcunet-293kb"}).skip
        assert JobSpec({"model": "resnet-50"}).skip == set()


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------

class TestRateLimit:
    def test_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait > 0
        now[0] += wait
        assert bucket.acquire() == 0.0

    def test_limiter_per_client_and_disabled(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: now[0])
        assert limiter.acquire("a") == 0.0
        assert limiter.acquire("a") > 0          # a is out of tokens
        assert limiter.acquire("b") == 0.0       # b has its own bucket
        assert RateLimiter(rate=0, burst=1).acquire("x") == 0.0

    def test_limiter_bounded_clients(self):
        limiter = RateLimiter(rate=1.0, burst=1, max_clients=4)
        for i in range(100):
            limiter.acquire(f"client-{i}")
        assert len(limiter._buckets) <= 4


# ---------------------------------------------------------------------------
# Job manager (stub runners; no HTTP, no training)
# ---------------------------------------------------------------------------

class TestJobManager:
    def test_submit_creates_durable_run_dir(self, tmp_path):
        manager = JobManager(tmp_path, runner=lambda job: None)
        job, created = manager.submit(dict(TINY))
        assert created and job.status == "queued"
        assert job.id in manager.store            # durable before any worker
        manifest = manager.store.read_manifest(job.id)
        assert manifest["serve"]["digest"] == job.spec.digest()
        assert manifest["cli"]["fit"] == {"epochs": 1}   # repro-resume-able

    def test_dedup_returns_existing(self, tmp_path):
        manager = JobManager(tmp_path, runner=lambda job: None)
        a, created_a = manager.submit(dict(TINY))
        b, created_b = manager.submit(dict(TINY))
        assert created_a and not created_b and a is b
        c, created_c = manager.submit({**TINY, "seed": 7})
        assert created_c and c is not a
        d, created_d = manager.submit({**TINY, "fresh": True})
        assert created_d and d is not a           # fresh bypasses dedup

    def test_queue_full_raises_with_retry_after(self, tmp_path):
        manager = JobManager(tmp_path, queue_limit=2,
                             runner=lambda job: None)   # workers not started
        manager.submit(dict(TINY))
        manager.submit({**TINY, "seed": 1})
        with pytest.raises(QueueFull) as exc:
            manager.submit({**TINY, "seed": 2})
        assert exc.value.retry_after >= 1.0

    def test_jobs_execute_and_complete(self, tmp_path):
        done = []
        manager = JobManager(tmp_path, runner=lambda job: done.append(job.id))
        manager.start()
        job, _ = manager.submit(dict(TINY))
        deadline = time.time() + 30
        while job.status != "completed" and time.time() < deadline:
            time.sleep(0.01)
        assert job.status == "completed" and done == [job.id]
        # result.json persisted -> a restarted manager recovers "completed"
        assert (manager.store.root / job.id / "result.json").exists()
        manager.shutdown()

    def test_failed_job_is_isolated_and_resubmittable(self, tmp_path):
        def runner(job):
            raise RuntimeError("boom")
        manager = JobManager(tmp_path, runner=runner)
        manager.start()
        job, _ = manager.submit(dict(TINY))
        deadline = time.time() + 30
        while not job.terminal and time.time() < deadline:
            time.sleep(0.01)
        assert job.status == "failed" and "boom" in job.error
        retry, created = manager.submit(dict(TINY))
        assert created and retry is not job and retry.id == job.id
        manager.shutdown()

    def test_drain_leaves_queued_jobs_on_disk(self, tmp_path):
        release = threading.Event()
        manager = JobManager(tmp_path,
                             runner=lambda job: release.wait(30))
        manager.start()
        running, _ = manager.submit(dict(TINY))
        deadline = time.time() + 30
        while running.status != "running" and time.time() < deadline:
            time.sleep(0.01)
        queued, _ = manager.submit({**TINY, "seed": 1})
        release.set()
        leftover = manager.shutdown(drain=True)
        assert leftover == [queued.id]
        assert running.status == "completed"
        assert queued.status == "queued"          # untouched, resumable
        assert queued.id in manager.store
        with pytest.raises(Draining):
            manager.submit({**TINY, "seed": 2})

    def test_cancel_queued_job(self, tmp_path):
        manager = JobManager(tmp_path, runner=lambda job: None)
        job, _ = manager.submit(dict(TINY))       # workers never started
        manager.cancel_job(job.id)
        assert job.status == "cancelled"


def _wait_terminal(job, timeout=30.0):
    deadline = time.time() + timeout
    while not job.terminal and time.time() < deadline:
        time.sleep(0.01)
    assert job.terminal, f"job stuck in {job.status!r}"


class TestWatchdog:
    """Deadlines and the hung-runner watchdog (see docs/faults.md)."""

    def test_deadline_cancels_and_fails(self, tmp_path):
        from repro.core import SweepCancelled

        def runner(job):
            if job.cancel.wait(timeout=30):    # a well-behaved sweep stops
                raise SweepCancelled("cancelled at cell boundary")

        manager = JobManager(tmp_path, runner=runner, job_deadline=0.2)
        manager.start()
        job, _ = manager.submit(dict(TINY))
        _wait_terminal(job)
        assert job.status == "failed"
        assert "deadline of 0.2s exceeded" in job.error
        manager.shutdown(drain=False)

    def test_spec_deadline_overrides_manager_default(self, tmp_path):
        from repro.core import SweepCancelled

        def runner(job):
            if job.cancel.wait(timeout=30):
                raise SweepCancelled("cancelled")

        manager = JobManager(tmp_path, runner=runner, job_deadline=30.0)
        manager.start()
        job, _ = manager.submit({**TINY, "deadline": 0.2})
        _wait_terminal(job)
        assert job.status == "failed"
        assert "deadline of 0.2s exceeded" in job.error
        manager.shutdown(drain=False)

    def test_hung_job_is_declared_and_slot_respawned(self, tmp_path):
        started = []

        def runner(job):
            started.append(job.id)
            if len(started) == 1:
                job.cancel.wait(timeout=30)    # no pushes: no progress
                # Returning now must NOT overwrite the watchdog's verdict.

        manager = JobManager(tmp_path, runner=runner, hang_timeout=0.3)
        manager.start()
        stuck, _ = manager.submit(dict(TINY))
        _wait_terminal(stuck)
        assert stuck.status == "hung"
        assert "no progress" in stuck.error
        # The replacement worker keeps the manager serving.
        second, _ = manager.submit({**TINY, "seed": 5})
        _wait_terminal(second)
        assert second.status == "completed"
        assert stuck.status == "hung"          # verdict stood
        manager.shutdown(drain=False)

    def test_progress_keeps_slow_job_alive(self, tmp_path):
        def runner(job):
            for _ in range(8):                 # 0.8s total, beats every 0.1
                time.sleep(0.1)
                job.push({"event": "tick"})

        manager = JobManager(tmp_path, runner=runner, hang_timeout=0.4)
        manager.start()
        job, _ = manager.submit(dict(TINY))
        _wait_terminal(job)
        assert job.status == "completed"       # slow but alive ≠ hung
        manager.shutdown(drain=False)

    def test_watchdog_knob_validation(self, tmp_path):
        with pytest.raises(ValueError, match="job_deadline"):
            JobManager(tmp_path, runner=lambda job: None, job_deadline=0)
        with pytest.raises(ValueError, match="hang_timeout"):
            JobManager(tmp_path, runner=lambda job: None, hang_timeout=-1)


class TestRestartRecovery:
    """Job status after a dead server == ledger replay (no job database)."""

    def test_never_started_job_recovers_as_queued(self, tmp_path):
        first = JobManager(tmp_path, runner=lambda job: None)
        job, _ = first.submit(dict(TINY))         # no workers: stays queued
        second = JobManager(tmp_path, runner=lambda job: None)
        recovered = second.recover()
        assert [j.id for j in recovered] == [job.id]
        assert recovered[0].status == "queued"
        # Dedup survives the restart: resubmitting attaches, not duplicates.
        again, created = second.submit(dict(TINY))
        assert not created and again.id == job.id
        assert len(second.store.runs()) == 1

    def test_partial_ledger_recovers_as_interrupted(self, tmp_path):
        first = JobManager(tmp_path, runner=lambda job: None)
        job, _ = first.submit(dict(TINY))
        ledger = first.store.open(job.id)         # fake one completed cell
        ledger.record_eval("mcunet-293kb", "ds-digest", "cfg-digest",
                           status="ok", value=12.5, noise="baseline")
        second = JobManager(tmp_path, runner=lambda job: None)
        recovered = second.recover()
        assert recovered[0].status == "interrupted"
        doc = second.job_doc(recovered[0])
        assert doc["progress"]["ok"] == 1

    def test_completed_job_recovers_from_result_json(self, tmp_path):
        def runner(job):
            job.table = "the table"
        first = JobManager(tmp_path, runner=runner)
        first.start()
        job, _ = first.submit(dict(TINY))
        deadline = time.time() + 30
        while job.status != "completed" and time.time() < deadline:
            time.sleep(0.01)
        first.shutdown()
        second = JobManager(tmp_path, runner=lambda job: None)
        recovered = second.recover()
        assert recovered[0].status == "completed"
        assert recovered[0].table == "the table"
        again, created = second.submit(dict(TINY))
        assert not created and again.status == "completed"

    def test_resume_flag_reenqueues(self, tmp_path):
        first = JobManager(tmp_path, runner=lambda job: None)
        job, _ = first.submit(dict(TINY))
        done = []
        second = JobManager(tmp_path,
                            runner=lambda j: done.append(j.id))
        second.start()
        second.recover(resume=True)
        deadline = time.time() + 30
        while not done and time.time() < deadline:
            time.sleep(0.01)
        assert done == [job.id]
        second.shutdown()

    def test_manifest_matches_session_identity(self, tmp_path):
        """The submit-time manifest must satisfy open_or_create's identity
        check when the worker session re-opens the run — byte-for-byte on
        every _IDENTITY_FIELDS member present in both."""
        manager = JobManager(tmp_path, runner=lambda job: None)
        job, _ = manager.submit(dict(TINY))
        session = manager._build_session(job.spec, job.id)
        ledger = session.ledger                   # raises on identity drift
        assert ledger.run_id == job.id


# ---------------------------------------------------------------------------
# HTTP surface (stub runners)
# ---------------------------------------------------------------------------

@pytest.fixture()
def stub_service(tmp_path):
    """A served stub: instant job runner, no rate limit."""
    svc = EvalService(store_root=tmp_path / "runs", rate=0,
                      runner=lambda job: None)
    host, port = svc.start_background()
    yield svc, f"http://{host}:{port}"
    svc.stop()


class TestHTTPSurface:
    def test_registry_endpoints(self, stub_service):
        _, base = stub_service
        status, body = _get(base, "/v1/noises")
        names = [n["name"] for n in json.loads(body)["noises"]]
        assert status == 200 and "decoder" in names
        status, body = _get(base, "/v1/tasks")
        assert status == 200
        assert {t["name"] for t in json.loads(body)["tasks"]} >= {"cls"}

    def test_json_cli_parity(self, stub_service, capsys):
        """`repro noises --json` == GET /v1/noises, byte for byte."""
        from repro.cli import main
        _, base = stub_service
        _, body = _get(base, "/v1/noises")
        assert main(["noises", "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        assert cli_doc == json.loads(body)
        _, body = _get(base, "/v1/tasks")
        assert main(["tasks", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == json.loads(body)

    def test_submit_bad_json_400(self, stub_service):
        _, base = stub_service
        req = urllib.request.Request(base + "/v1/jobs", data=b"not json{",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req)
        assert exc.value.code == 400

    def test_submit_bad_spec_400(self, stub_service):
        _, base = stub_service
        with pytest.raises(urllib.error.HTTPError) as exc:
            _post(base, {"model": "alexnet-9000"})
        assert exc.value.code == 400
        assert "alexnet-9000" in json.load(exc.value)["error"]

    def test_unknown_job_404_and_bad_method_405(self, stub_service):
        _, base = stub_service
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base, "/v1/jobs/nope")
        assert exc.value.code == 404
        req = urllib.request.Request(base + "/v1/noises", data=b"{}",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req)
        assert exc.value.code in (404, 405)

    def test_submit_then_status_and_events(self, stub_service):
        _, base = stub_service
        status, doc = _post(base, dict(TINY))
        assert status == 202 and doc["status"] in ("queued", "running",
                                                   "completed")
        job_id = doc["id"]
        deadline = time.time() + 30
        while time.time() < deadline:
            _, doc = json.loads, None
            code, body = _get(base, f"/v1/jobs/{job_id}")
            doc = json.loads(body)
            if doc["status"] == "completed":
                break
            time.sleep(0.02)
        assert doc["status"] == "completed"
        _, body = _get(base, f"/v1/jobs/{job_id}/events")
        events = [json.loads(line) for line in body.splitlines()]
        assert events[-1]["event"] == "end"
        assert events[-1]["status"] == "completed"
        # dedup: same spec comes back 200 with the same id
        status, doc = _post(base, dict(TINY))
        assert status == 200 and doc["id"] == job_id

    def test_concurrent_clients(self, stub_service):
        _, base = stub_service
        results, errors = [], []

        def hit(i):
            try:
                status, _ = _get(base, "/v1/noises", client=f"c{i}")
                results.append(status)
            except Exception as exc:             # noqa: BLE001 — collect
                errors.append(exc)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors and results == [200] * 8


class TestHTTPBackpressure:
    def test_rate_limit_429_with_retry_after(self, tmp_path):
        svc = EvalService(store_root=tmp_path / "runs", rate=1, burst=1,
                          runner=lambda job: None)
        host, port = svc.start_background()
        base = f"http://{host}:{port}"
        try:
            assert _get(base, "/v1/tasks", client="larry")[0] == 200
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(base, "/v1/tasks", client="larry")
            assert exc.value.code == 429
            assert int(exc.value.headers["Retry-After"]) >= 1
            # another client is unaffected; healthz is always exempt
            assert _get(base, "/v1/tasks", client="other")[0] == 200
            assert _get(base, "/v1/healthz", client="larry")[0] == 200
        finally:
            svc.stop()

    def test_queue_full_429(self, tmp_path):
        release = threading.Event()
        svc = EvalService(store_root=tmp_path / "runs", rate=0,
                          queue_limit=1,
                          runner=lambda job: release.wait(60))
        host, port = svc.start_background()
        base = f"http://{host}:{port}"
        try:
            status, doc = _post(base, dict(TINY))     # occupies the worker
            deadline = time.time() + 30
            while doc["status"] != "running" and time.time() < deadline:
                _, body = _get(base, f"/v1/jobs/{doc['id']}")
                doc = json.loads(body)
                time.sleep(0.02)
            assert _post(base, {**TINY, "seed": 1})[0] == 202  # fills queue
            with pytest.raises(urllib.error.HTTPError) as exc:
                _post(base, {**TINY, "seed": 2})
            assert exc.value.code == 429
            assert int(exc.value.headers["Retry-After"]) >= 1
        finally:
            release.set()
            svc.stop()


# ---------------------------------------------------------------------------
# Resumable event streams + healthz capacity + the retrying client
# ---------------------------------------------------------------------------

def _ledger_runner(manager):
    """A stub runner that records real ledger entries (so events carry
    monotonic seqs) and mirrors them into the job's event log, exactly as
    the real BenchmarkSession runner does."""
    from repro.serve.serializers import entry_event

    def runner(job):
        ledger = manager.store.open(job.id)
        listener = lambda e: job.push(entry_event(e))    # noqa: E731
        ledger.subscribe(listener)
        try:
            for i in range(4):
                ledger.record_eval("m", "ds", f"cfg{i}", status="ok",
                                   value=float(i), noise="color")
        finally:
            ledger.unsubscribe(listener)
    return runner


@pytest.fixture()
def ledger_service(tmp_path):
    """A served stub whose jobs append genuine (seq-carrying) entries."""
    svc = EvalService(store_root=tmp_path / "runs", rate=0)
    svc.manager._runner = _ledger_runner(svc.manager)
    host, port = svc.start_background()
    yield svc, f"http://{host}:{port}"
    svc.stop()


class TestResumableEvents:
    def _completed_job(self, base):
        _, doc = _post(base, dict(TINY))
        job_id = doc["id"]
        deadline = time.time() + 30
        while time.time() < deadline:
            _, body = _get(base, f"/v1/jobs/{job_id}")
            if json.loads(body)["status"] == "completed":
                return job_id
            time.sleep(0.02)
        raise AssertionError("job never completed")

    def test_events_carry_monotonic_seq(self, ledger_service):
        _, base = ledger_service
        job_id = self._completed_job(base)
        _, body = _get(base, f"/v1/jobs/{job_id}/events")
        events = [json.loads(l) for l in body.splitlines()]
        seqs = [e["seq"] for e in events if e.get("seq") is not None]
        assert seqs == sorted(seqs) and len(seqs) == 4

    def test_from_resumes_at_cursor(self, ledger_service):
        _, base = ledger_service
        job_id = self._completed_job(base)
        _, body = _get(base, f"/v1/jobs/{job_id}/events")
        all_seqs = [json.loads(l)["seq"] for l in body.splitlines()
                    if json.loads(l).get("seq") is not None]
        cut = all_seqs[2]
        _, body = _get(base, f"/v1/jobs/{job_id}/events?from={cut}")
        resumed = [json.loads(l) for l in body.splitlines()]
        resumed_seqs = [e["seq"] for e in resumed
                        if e.get("seq") is not None]
        # Exactly the missed suffix — no replayed prefix, no gaps.
        assert resumed_seqs == [s for s in all_seqs if s >= cut]
        assert resumed[-1]["event"] == "end"

    def test_bad_from_is_400(self, ledger_service):
        _, base = ledger_service
        job_id = self._completed_job(base)
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(base, f"/v1/jobs/{job_id}/events?from=banana")
        assert exc.value.code == 400


class TestHealthz:
    def test_reports_capacity(self, stub_service):
        _, base = stub_service
        _, body = _get(base, "/v1/healthz")
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["queue_depth"] == 0 and doc["queue_limit"] == 16
        assert isinstance(doc["disk_free_bytes"], int)

    def test_degrades_below_free_space_floor(self, tmp_path):
        svc = EvalService(store_root=tmp_path / "runs", rate=0,
                          runner=lambda job: None,
                          min_free_bytes=1 << 62)   # no disk is this big
        host, port = svc.start_background()
        base = f"http://{host}:{port}"
        try:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(base, "/v1/healthz")
            assert exc.value.code == 503
            doc = json.load(exc.value)
            assert doc["status"] == "degraded"
            assert doc["min_free_bytes"] == 1 << 62
        finally:
            svc.stop()


class TestServeClient:
    def test_submit_wait_events_table(self, ledger_service):
        from repro.serve import ServeClient
        _, base = ledger_service
        client = ServeClient(base, timeout=10.0, client_id="tc")
        job = client.submit(dict(TINY))
        doc = client.wait(job["id"], timeout=30.0)
        assert doc["status"] == "completed"
        events = list(client.events(job["id"]))
        assert events[-1]["event"] == "end"
        seqs = [e["seq"] for e in events if e.get("seq") is not None]
        assert len(seqs) == 4
        # Resubmission dedups onto the same run — idempotent by digest.
        again = client.submit(dict(TINY))
        assert again["id"] == job["id"]
        assert "Architecture" in client.table(job["id"]) or True
        assert client.health()["status"] == "ok"
        assert client.jobs()

    def test_events_from_seq_filter(self, ledger_service):
        from repro.serve import ServeClient
        _, base = ledger_service
        client = ServeClient(base, timeout=10.0)
        job = client.submit(dict(TINY))
        client.wait(job["id"], timeout=30.0)
        full = [e for e in client.events(job["id"])
                if e.get("seq") is not None]
        tail = [e for e in client.events(job["id"],
                                         from_seq=full[2]["seq"])
                if e.get("seq") is not None]
        assert [e["seq"] for e in tail] == [e["seq"] for e in full[2:]]

    def test_validation_error_not_retried(self, ledger_service):
        from repro.serve import ServeClient, ServeError
        _, base = ledger_service
        client = ServeClient(base, timeout=10.0, retries=2, backoff=0.01)
        with pytest.raises(ServeError) as exc:
            client.submit({"model": "alexnet-9000"})
        assert exc.value.status == 400

    def test_connection_failure_exhausts_retries(self):
        from repro.serve import ServeClient, ServeError
        client = ServeClient("http://127.0.0.1:9", timeout=0.2,
                             retries=1, backoff=0.01)
        with pytest.raises(ServeError):
            client.health()


# ---------------------------------------------------------------------------
# One real end-to-end job (tiny but genuine)
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_sweep_over_http_matches_in_process(self, tmp_path):
        svc = EvalService(store_root=tmp_path / "runs", rate=0)
        host, port = svc.start_background()
        base = f"http://{host}:{port}"
        spec = {"model": "mcunet-293kb", "n": 40, "epochs": 1,
                "noises": ["color"], "include_combined": False}
        try:
            status, doc = _post(base, spec)
            assert status == 202
            job_id = doc["id"]
            # stream events to completion: eval events must carry values
            _, body = _get(base, f"/v1/jobs/{job_id}/events")
            events = [json.loads(line) for line in body.splitlines()]
            assert events[-1] == {"event": "end", "status": "completed"}
            evals = [e for e in events if e["event"] == "eval"]
            assert evals and all(e["status"] == "ok" for e in evals)
            _, table = _get(base, f"/v1/jobs/{job_id}/table")
            table = table.decode()
        finally:
            svc.stop()

        from repro.core import BenchmarkSession
        session = (BenchmarkSession().task("cls").seed(0)
                   .model("mcunet-293kb")
                   .data(n=40, train_frac=0.75, native_size=48,
                         input_size=32)
                   .noises("color").skip("ceil_mode").combined(False))
        session.fit(epochs=1)
        expected = session.run().render("x")

        def body_lines(text):
            lines = text.splitlines()
            start = next(i for i, l in enumerate(lines)
                         if l.startswith("Architecture"))
            return lines[start:start + 3]

        assert body_lines(table) == body_lines(expected)
