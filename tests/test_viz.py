"""Tests for the Fig.-5 difference-map visualisation."""

import numpy as np

from repro.data import make_classification_dataset
from repro.viz import (ascii_heatmap, difference_image, noise_difference_maps,
                       noise_statistics)


class TestDifferenceImage:
    def test_identical_images_zero(self):
        img = np.full((8, 8, 3), 100, dtype=np.uint8)
        np.testing.assert_array_equal(difference_image(img, img), 0)

    def test_rescaled_to_full_range(self):
        a = np.zeros((4, 4, 3), dtype=np.uint8)
        b = np.full((4, 4, 3), 2, dtype=np.uint8)
        out = difference_image(a, b)
        assert out.max() == 255      # paper scales noise to [0, 255]

    def test_dtype(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.ones((4, 4), dtype=np.uint8)
        assert difference_image(a, b).dtype == np.uint8


class TestNoiseMaps:
    def setup_method(self):
        ds = make_classification_dataset(n=2, native_size=40, input_size=32,
                                         seed=0)
        self.panels = noise_difference_maps(ds.streams[0], input_size=32)

    def test_four_panels(self):
        assert set(self.panels) == {"decode", "resize", "color", "int8"}

    def test_panels_shapes(self):
        for p in self.panels.values():
            assert p.shape == (32, 32, 3)

    def test_resize_noise_strongest(self):
        stats = noise_statistics(self.panels)
        assert stats["resize"]["nonzero_fraction"] >= stats["decode"]["nonzero_fraction"]

    def test_statistics_keys(self):
        stats = noise_statistics(self.panels)
        for s in stats.values():
            assert {"mean", "nonzero_fraction", "channel_spread"} <= set(s)

    def test_ascii_heatmap_renders(self):
        art = ascii_heatmap(self.panels["resize"])
        assert isinstance(art, str) and len(art.splitlines()) > 4

    def test_ascii_heatmap_gray_input(self):
        art = ascii_heatmap(np.eye(16) * 255)
        assert "@" in art
