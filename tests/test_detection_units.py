"""Unit tests for detection primitives: boxes, anchors, NMS, mAP, losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (average_precision, batched_nms, box_iou,
                             clip_boxes, decode_deltas, encode_deltas,
                             generate_anchors, generate_level_anchors,
                             mean_average_precision, nms, sigmoid_focal_loss,
                             smooth_l1)
from repro.detection.losses import binary_cross_entropy_logits
from repro.nn import Tensor


class TestBoxIoU:
    def test_identical_boxes(self):
        b = np.array([[0, 0, 10, 10]], dtype=float)
        np.testing.assert_allclose(box_iou(b, b), 1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0, 0, 5, 5]], dtype=float)
        b = np.array([[10, 10, 20, 20]], dtype=float)
        np.testing.assert_allclose(box_iou(a, b), 0.0)

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]], dtype=float)
        b = np.array([[0, 0, 10, 5]], dtype=float)
        np.testing.assert_allclose(box_iou(a, b), 0.5)

    def test_pairwise_shape(self):
        a = np.zeros((3, 4))
        b = np.zeros((5, 4))
        assert box_iou(a, b).shape == (3, 5)

    @given(st.floats(0, 50), st.floats(0, 50), st.floats(1, 30), st.floats(1, 30))
    @settings(max_examples=50, deadline=None)
    def test_property_iou_bounds(self, x, y, w, h):
        a = np.array([[x, y, x + w, y + h]])
        b = np.array([[x + w / 2, y, x + w * 1.5, y + h]])
        iou = box_iou(a, b)[0, 0]
        assert 0.0 <= iou <= 1.0


class TestDeltaCoding:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.anchors = np.stack([
            rng.uniform(0, 20, 16), rng.uniform(0, 20, 16),
            rng.uniform(25, 45, 16), rng.uniform(25, 45, 16)], axis=1)
        self.targets = self.anchors + rng.uniform(-3, 3, (16, 4))

    @pytest.mark.parametrize("offset", [0.0, 1.0])
    def test_encode_decode_roundtrip(self, offset):
        deltas = encode_deltas(self.anchors, self.targets, offset)
        back = decode_deltas(self.anchors, deltas, offset)
        np.testing.assert_allclose(back, self.targets, atol=1e-9)

    def test_aligned_offset_flip_shifts_boxes(self):
        """The post-processing noise: decoding with the wrong convention."""
        deltas = encode_deltas(self.anchors, self.targets, aligned_offset=0.0)
        wrong = decode_deltas(self.anchors, deltas, aligned_offset=1.0)
        err = np.abs(wrong - self.targets)
        assert err.max() > 0.4               # boxes visibly move
        assert err.max() < 3.0               # ... but only by ~a pixel

    def test_zero_deltas_recover_anchor(self):
        zero = np.zeros((16, 4))
        out = decode_deltas(self.anchors, zero, 0.0)
        np.testing.assert_allclose(out, self.anchors, atol=1e-9)

    def test_dw_clamped(self):
        deltas = np.array([[0.0, 0.0, 50.0, 50.0]])
        out = decode_deltas(self.anchors[:1], deltas)
        assert np.isfinite(out).all()

    def test_clip_boxes(self):
        boxes = np.array([[-5.0, -5.0, 100.0, 100.0]])
        out = clip_boxes(boxes, 64)
        np.testing.assert_array_equal(out, [[0, 0, 64, 64]])


class TestAnchors:
    def test_count(self):
        a = generate_level_anchors(4, 4, 8, scales=(1.0,), ratios=(1.0,))
        assert a.shape == (16, 4)

    def test_centres_on_stride_grid(self):
        a = generate_level_anchors(2, 2, 8, scales=(1.0,), ratios=(1.0,))
        cx = (a[:, 0] + a[:, 2]) / 2
        np.testing.assert_allclose(np.unique(cx), [4.0, 12.0])

    def test_ratio_changes_aspect(self):
        a = generate_level_anchors(1, 1, 8, scales=(1.0,), ratios=(0.5, 2.0))
        w = a[:, 2] - a[:, 0]
        h = a[:, 3] - a[:, 1]
        assert (w[0] > h[0]) != (w[1] > h[1])

    def test_multi_level_concat(self):
        a = generate_anchors([(4, 4), (2, 2)], [4, 8], scales=(1.0,),
                             ratios=(1.0,))
        assert a.shape == (20, 4)

    def test_anchor_area_scales_with_stride(self):
        a4 = generate_level_anchors(1, 1, 4, scales=(1.0,), ratios=(1.0,))
        a8 = generate_level_anchors(1, 1, 8, scales=(1.0,), ratios=(1.0,))
        area = lambda b: (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])
        assert area(a8)[0] > area(a4)[0]


class TestNMS:
    def test_suppresses_duplicates(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [30, 30, 40, 40]],
                         dtype=float)
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, 0.5)
        assert list(keep) == [0, 2]

    def test_keeps_order_by_score(self):
        boxes = np.array([[0, 0, 10, 10], [30, 30, 40, 40]], dtype=float)
        keep = nms(boxes, np.array([0.2, 0.9]), 0.5)
        assert list(keep) == [1, 0]

    def test_max_out(self):
        boxes = np.array([[i * 20, 0, i * 20 + 10, 10] for i in range(5)],
                         dtype=float)
        keep = nms(boxes, np.linspace(1, 0.5, 5), 0.5, max_out=2)
        assert len(keep) == 2

    def test_batched_nms_keeps_cross_class_overlaps(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]], dtype=float)
        scores = np.array([0.9, 0.8])
        classes = np.array([0, 1])
        keep = batched_nms(boxes, scores, classes, 0.5)
        assert len(keep) == 2

    def test_batched_nms_empty(self):
        assert len(batched_nms(np.empty((0, 4)), np.empty(0), np.empty(0))) == 0


class TestMAP:
    def test_perfect_detection_ap1(self):
        gt = [np.array([[0.0, 0, 0, 10, 10]])]
        det = [np.array([[0.0, 0.99, 0, 0, 10, 10]])]
        assert mean_average_precision(det, gt, 1) == pytest.approx(100.0)

    def test_missed_gt_zero(self):
        gt = [np.array([[0.0, 0, 0, 10, 10]])]
        det = [np.empty((0, 6))]
        assert mean_average_precision(det, gt, 1) == 0.0

    def test_false_positive_lowers_ap(self):
        gt = [np.array([[0.0, 0, 0, 10, 10]])]
        clean = [np.array([[0.0, 0.9, 0, 0, 10, 10]])]
        noisy = [np.array([[0.0, 0.95, 50, 50, 60, 60],
                           [0.0, 0.9, 0, 0, 10, 10]])]
        assert (mean_average_precision(noisy, gt, 1)
                < mean_average_precision(clean, gt, 1))

    def test_shifted_box_loses_high_iou_thresholds(self):
        gt = [np.array([[0.0, 0, 0, 10, 10]])]
        shifted = [np.array([[0.0, 0.9, 1, 1, 11, 11]])]
        exact = [np.array([[0.0, 0.9, 0, 0, 10, 10]])]
        m_shift = mean_average_precision(shifted, gt, 1)
        m_exact = mean_average_precision(exact, gt, 1)
        assert m_shift < m_exact

    def test_duplicate_detection_matches_one_gt_only(self):
        # Two GTs, both detections pile on the first one: the duplicate is an
        # FP and the second GT is missed, so recall caps at 0.5 and AP < 1.
        gt = [np.array([[0, 0, 10, 10], [30, 30, 40, 40]], dtype=float)]
        dets = [np.array([[0.9, 0, 0, 10, 10], [0.8, 0, 0, 10, 10]])]
        ap = average_precision(dets, gt, 0.5)
        assert ap <= 0.5 + 1e-9

    def test_ap_empty_everything(self):
        assert average_precision([np.empty((0, 5))], [np.empty((0, 4))], 0.5) == 0.0


class TestLosses:
    def test_bce_matches_reference(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(50)
        t = rng.integers(0, 2, 50).astype(float)
        ours = binary_cross_entropy_logits(Tensor(x), t).data
        p = 1 / (1 + np.exp(-x))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p))
        np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_focal_downweights_easy(self):
        easy = sigmoid_focal_loss(Tensor(np.array([6.0])), np.array([1.0]))
        hard = sigmoid_focal_loss(Tensor(np.array([-6.0])), np.array([1.0]))
        assert hard.item() > easy.item() * 100

    def test_focal_grad_finite(self):
        x = Tensor(np.array([2.0, -2.0]), requires_grad=True)
        sigmoid_focal_loss(x, np.array([1.0, 0.0])).backward()
        assert np.isfinite(x.grad).all()

    def test_smooth_l1_quadratic_then_linear(self):
        small = smooth_l1(Tensor(np.array([0.5])), np.array([0.0])).item()
        assert small == pytest.approx(0.125)
        big = smooth_l1(Tensor(np.array([3.0])), np.array([0.0])).item()
        assert big == pytest.approx(2.5)

    def test_smooth_l1_grad(self):
        x = Tensor(np.array([0.5, 3.0, -3.0]), requires_grad=True)
        smooth_l1(x, np.zeros(3)).backward()
        np.testing.assert_allclose(x.grad, [0.5, 1.0, -1.0])
