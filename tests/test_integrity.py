"""Self-healing storage tests: checksums, compaction, fsck, pruning.

The load-bearing property (hypothesis-driven): **flip any single byte of a
checksummed ledger and replay never yields a wrong entry** — the damaged
line is detected (CRC-refuted, unparseable, or a torn tail), every
surviving entry is byte-faithful to what was written, and ``fsck --repair``
restores the run to a clean, resumable state idempotently.
"""

import json
import shutil
import zlib
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (RunLedger, RunStore, checkpoint_digest, fsck_run,
                        fsck_store, run_manifest, verify_checkpoint)
from repro.core.runstore import _entry_crc


def _make_run(root: Path, run_id: str | None = None,
              n_eval: int = 3) -> RunLedger:
    store = RunStore(root)
    ledger = store.open_or_create(
        run_manifest(task="cls", model="m", seed=0, noises=["decoder"],
                     skip=set(), include_combined=False, metric="acc"),
        run_id)
    for i in range(n_eval):
        ledger.record_eval("m", "ds", f"cfg{i}", status="ok",
                           value=0.25 + i, noise="decoder")
    ledger.record_eval("m", "ds", "cfg-err", status="error", error="boom",
                       noise="decoder")
    ledger.record_shard("m", "ds", "cfg-sh", start=0, stop=4,
                        state={"kind": "accuracy", "correct": 3, "total": 4})
    return ledger


def _index(ledger: RunLedger) -> dict:
    """Replayed entries keyed by identity — the ground truth to compare."""
    out = {}
    for e in ledger.entries():
        key = (e.get("kind"), e.get("cfg"), e.get("shard") and
               tuple(e["shard"]))
        out[key] = (e.get("status"), e.get("value"), e.get("error"),
                    json.dumps(e.get("state"), sort_keys=True))
    return out


# ---------------------------------------------------------------------------
# The single-byte-flip property
# ---------------------------------------------------------------------------

class TestSingleByteFlip:
    @pytest.fixture(scope="class")
    def pristine(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("flip")
        ledger = _make_run(root, run_id="base")
        return (ledger.path, ledger.path.joinpath("ledger.jsonl").read_bytes(),
                _index(ledger))

    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_any_flip_is_detected_never_wrong(self, pristine, data,
                                              tmp_path_factory):
        src, raw, original = pristine
        pos = data.draw(st.integers(0, len(raw) - 1), label="byte")
        mask = data.draw(st.integers(1, 255), label="xor")
        damaged = bytearray(raw)
        damaged[pos] ^= mask

        run_dir = tmp_path_factory.mktemp("case") / "run"
        run_dir.mkdir()
        shutil.copy(src / "manifest.json", run_dir / "manifest.json")
        (run_dir / "ledger.jsonl").write_bytes(bytes(damaged))

        ledger = RunLedger(run_dir)
        replayed = _index(ledger)
        # Never a wrong entry: everything that replays is byte-faithful.
        for key, value in replayed.items():
            assert key in original, f"fabricated entry {key}"
            assert value == original[key], f"corrupted-but-accepted {key}"
        # Detect-or-survive: any lost entry must be accounted for as a
        # corrupt line or a torn tail — never silently absent.
        lost = len(original) - len(replayed)
        if lost:
            assert ledger.counts()["corrupt"] >= 1
            integ = ledger.integrity()
            assert (integ["bitrot"] + integ["unparseable"]
                    + integ["torn_tail"]) >= 1

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_fsck_repair_restores_and_is_idempotent(self, pristine, data,
                                                    tmp_path_factory):
        src, raw, original = pristine
        pos = data.draw(st.integers(0, len(raw) - 1), label="byte")
        mask = data.draw(st.integers(1, 255), label="xor")
        damaged = bytearray(raw)
        damaged[pos] ^= mask

        run_dir = tmp_path_factory.mktemp("case") / "run"
        run_dir.mkdir()
        shutil.copy(src / "manifest.json", run_dir / "manifest.json")
        (run_dir / "ledger.jsonl").write_bytes(bytes(damaged))

        first = fsck_run(run_dir, repair=True)
        assert first["ok"], first["issues"]
        second = fsck_run(run_dir, repair=True)
        assert second["ok"] and not second["repairs"], second
        # The repaired replay still only contains faithful entries.
        for key, value in _index(RunLedger(run_dir)).items():
            assert original.get(key) == value


# ---------------------------------------------------------------------------
# Checksums + classification units
# ---------------------------------------------------------------------------

class TestChecksums:
    def test_entries_carry_verifiable_crc(self, tmp_path):
        ledger = _make_run(tmp_path)
        for line in (ledger.path / "ledger.jsonl").read_bytes().splitlines():
            doc = json.loads(line)
            crc = doc.pop("crc")
            assert crc == _entry_crc(doc)

    def test_legacy_lines_still_replay(self, tmp_path):
        ledger = _make_run(tmp_path, n_eval=1)
        with open(ledger.path / "ledger.jsonl", "ab") as fh:
            fh.write(json.dumps({"kind": "eval", "model": "m",
                                 "dataset": "ds", "cfg": "old",
                                 "status": "ok", "value": 9.0}).encode()
                     + b"\n")
        reopened = RunLedger(ledger.path)
        assert reopened.lookup("m", "ds", "old")["value"] == 9.0
        integ = reopened.integrity()
        assert integ["legacy"] == 1 and integ["bitrot"] == 0

    def test_seq_is_monotonic_and_stable_across_reopen(self, tmp_path):
        ledger = _make_run(tmp_path)
        seqs = [e["seq"] for e in ledger.entries()]
        assert seqs == sorted(set(seqs))
        assert [e["seq"] for e in RunLedger(ledger.path).entries()] == seqs


# ---------------------------------------------------------------------------
# Compaction
# ---------------------------------------------------------------------------

class TestCompaction:
    def test_compact_preserves_replay_and_truncates_tail(self, tmp_path):
        ledger = _make_run(tmp_path)
        before = _index(ledger)
        result = ledger.compact()
        assert result["status"] == "ok"
        assert (ledger.path / "snapshot.json").exists()
        tail = ledger.path / "ledger.jsonl"
        assert not tail.exists() or tail.stat().st_size == 0
        assert not (ledger.path / "ledger.fold.jsonl").exists()
        assert _index(RunLedger(ledger.path)) == before

    def test_snapshot_doc_is_checksummed(self, tmp_path):
        ledger = _make_run(tmp_path)
        ledger.compact()
        doc = json.loads((ledger.path / "snapshot.json").read_text())
        crc = doc.pop("crc")
        assert crc == _entry_crc(doc)
        # ...and a corrupted snapshot is ignored, not trusted.
        doc["entries"][0]["value"] = 99.0
        doc["crc"] = crc                       # stale crc: refuted
        (ledger.path / "snapshot.json").write_text(json.dumps(doc))
        reopened = RunLedger(ledger.path)
        assert reopened.integrity()["snapshot_corrupt"]
        assert not any(e.get("value") == 99.0 for e in reopened.entries())

    def test_superseded_error_is_folded_away(self, tmp_path):
        ledger = _make_run(tmp_path, n_eval=1)
        ledger.record_eval("m", "ds", "cfg-err", status="ok", value=1.5,
                           noise="decoder")       # retry recovered the cell
        assert ledger.counts()["error"] == 0
        dropped = ledger.compact()["dropped"]
        assert dropped >= 1
        reopened = RunLedger(ledger.path)
        assert reopened.lookup("m", "ds", "cfg-err")["value"] == 1.5
        assert reopened.counts()["error"] == 0

    def test_append_after_compact_lands_in_new_tail(self, tmp_path):
        ledger = _make_run(tmp_path)
        ledger.compact()
        ledger.record_eval("m", "ds", "late", status="ok", value=7.0)
        assert (ledger.path / "ledger.jsonl").stat().st_size > 0
        reopened = RunLedger(ledger.path)
        assert reopened.lookup("m", "ds", "late")["value"] == 7.0
        assert reopened.lookup("m", "ds", "cfg0") is not None


# ---------------------------------------------------------------------------
# Checkpoint digests
# ---------------------------------------------------------------------------

class TestCheckpointDigest:
    def test_record_and_verify_roundtrip(self, tmp_path):
        ledger = _make_run(tmp_path)
        ck = ledger.path / "weights.npz"
        ck.write_bytes(b"weights" * 64)
        digest = ledger.record_checkpoint(ck)
        assert digest == checkpoint_digest(ck)
        assert verify_checkpoint(ledger)["status"] == "ok"

    def test_swap_is_refuted_and_repair_quarantines(self, tmp_path):
        ledger = _make_run(tmp_path)
        ck = ledger.path / "weights.npz"
        ck.write_bytes(b"weights" * 64)
        ledger.record_checkpoint(ck)
        ck.write_bytes(b"not the same weights")
        assert verify_checkpoint(ledger)["status"] == "mismatch"
        report = fsck_run(ledger.path, repair=True)
        assert report["ok"]
        assert not ck.exists()
        assert any(p.name.startswith("weights.npz.quarantined")
                   for p in ledger.path.iterdir())

    def test_absent_and_unrecorded(self, tmp_path):
        ledger = _make_run(tmp_path)
        assert verify_checkpoint(ledger)["status"] == "absent"
        (ledger.path / "weights.npz").write_bytes(b"legacy")
        assert verify_checkpoint(ledger)["status"] == "unrecorded"


# ---------------------------------------------------------------------------
# fsck + pruning
# ---------------------------------------------------------------------------

class TestFsck:
    def test_manifest_rebuild(self, tmp_path):
        ledger = _make_run(tmp_path)
        (ledger.path / "manifest.json").write_text("}{ rot")
        report = fsck_run(ledger.path, repair=True)
        assert report["ok"], report["issues"]
        doc = json.loads((ledger.path / "manifest.json").read_text())
        assert doc["rebuilt_by"] == "fsck" and doc["model"] == "m"

    def test_stale_lease_state_pruned(self, tmp_path):
        ledger = _make_run(tmp_path)
        leases = ledger.path / "leases"
        leases.mkdir()
        (leases / "eval-x.lease.tomb-ab12").write_text("{}")
        (leases / "eval-x.attempts").write_text('{"ts": 1}\n')
        report = fsck_run(ledger.path)
        assert any(i["kind"] == "stale-lease-state"
                   for i in report["issues"])
        report = fsck_run(ledger.path, repair=True)
        assert report["ok"]
        assert not any(leases.iterdir())

    def test_fsck_store_sees_manifestless_runs(self, tmp_path):
        ledger = _make_run(tmp_path)
        (ledger.path / "manifest.json").unlink()
        reports = fsck_store(tmp_path)
        assert len(reports) == 1
        assert any(i["kind"] == "manifest-unreadable"
                   for i in reports[0]["issues"])

    def test_workqueue_prune_counts(self, tmp_path):
        from repro.core import WorkQueue
        wq = WorkQueue(tmp_path / "run", ttl=30.0)
        lease = wq.try_claim("cell-a")
        assert lease is not None
        (wq.dir / "cell-b.lease.tomb-ffff").write_text("{}")
        removed = wq.prune()
        assert removed == {"tombstones": 1, "attempts": 1, "leases": 0}
        assert lease.still_owned()             # live leases survive
        removed = wq.prune(include_live=True)
        assert removed["leases"] == 1
        lease.release()

    def test_fsck_cli(self, tmp_path, capsys):
        from repro.cli import main
        ledger = _make_run(tmp_path)
        raw = bytearray((ledger.path / "ledger.jsonl").read_bytes())
        raw[len(raw) // 2] ^= 0x01
        (ledger.path / "ledger.jsonl").write_bytes(bytes(raw))
        assert main(["fsck", "--all", "--store", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ISSUE" in out
        assert main(["fsck", ledger.run_id, "--store", str(tmp_path),
                     "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert main(["fsck", "--all", "--store", str(tmp_path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["reports"][0]["ok"]

    def test_fsck_cli_arg_validation(self, capsys):
        from repro.cli import main
        assert main(["fsck", "--store", "/nonexistent"]) == 2
        assert main(["fsck", "rid", "--all", "--store", "/nonexistent"]) == 2


# ---------------------------------------------------------------------------
# Quarantine file
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_corrupt_bytes_preserved_verbatim_ish(self, tmp_path):
        ledger = _make_run(tmp_path, n_eval=1)
        lp = ledger.path / "ledger.jsonl"
        raw = bytearray(lp.read_bytes())
        raw[10] ^= 0x01
        lp.write_bytes(bytes(raw))
        reopened = RunLedger(ledger.path)
        assert reopened.compact()["quarantined"] == 1
        lines = (ledger.path / "quarantine.jsonl").read_text().splitlines()
        docs = [json.loads(l) for l in lines]
        assert len(docs) == 1 and docs[0]["raw"]
        # Quarantine is append-only evidence, never replayed as data.
        assert reopened.counts()["corrupt"] == 0
