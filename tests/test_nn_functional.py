"""Tests for conv / pooling / upsample / norm functional ops."""

import numpy as np
import pytest
from scipy import signal

import repro.nn.functional as F
from repro.nn import Tensor


def numeric_grad(fn, x, eps=1e-6):
    g = np.zeros_like(x)
    flat, gf = x.reshape(-1), g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = fn(x)
        flat[i] = old - eps
        lo = fn(x)
        flat[i] = old
        gf[i] = (hi - lo) / (2 * eps)
    return g


class TestConv2d:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_matches_scipy_correlate(self):
        x = self.rng.standard_normal((1, 1, 8, 8))
        w = self.rng.standard_normal((1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0)
        ref = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 0], ref, atol=1e-10)

    def test_multichannel_sums_over_input_channels(self):
        x = self.rng.standard_normal((2, 3, 6, 6))
        w = self.rng.standard_normal((4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1)
        assert out.shape == (2, 4, 6, 6)
        ref = sum(signal.correlate2d(np.pad(x[0, c], 1), w[1, c], mode="valid")
                  for c in range(3))
        np.testing.assert_allclose(out.data[0, 1], ref, atol=1e-10)

    def test_stride_and_padding_shapes(self):
        x = Tensor(self.rng.standard_normal((1, 2, 9, 9)))
        w = Tensor(self.rng.standard_normal((5, 2, 3, 3)))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 5, 5, 5)

    def test_dilation_shape(self):
        x = Tensor(self.rng.standard_normal((1, 1, 9, 9)))
        w = Tensor(self.rng.standard_normal((1, 1, 3, 3)))
        # effective kernel 5 -> out 9 with pad 2
        assert F.conv2d(x, w, padding=2, dilation=2).shape == (1, 1, 9, 9)

    def test_grouped_conv_is_blockwise(self):
        x = self.rng.standard_normal((1, 4, 5, 5))
        w = self.rng.standard_normal((4, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=2)
        # First 2 output channels only see first 2 input channels.
        ref = F.conv2d(Tensor(x[:, :2]), Tensor(w[:2]), padding=1)
        np.testing.assert_allclose(out.data[:, :2], ref.data, atol=1e-10)

    def test_depthwise_conv(self):
        x = self.rng.standard_normal((2, 3, 6, 6))
        w = self.rng.standard_normal((3, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1, groups=3)
        ref = signal.correlate2d(np.pad(x[0, 2], 1), w[2, 0], mode="valid")
        np.testing.assert_allclose(out.data[0, 2], ref, atol=1e-10)

    def test_bias_added_per_channel(self):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = F.conv2d(x, w, b, padding=1)
        np.testing.assert_allclose(out.data[0, 0], 1.0)
        np.testing.assert_allclose(out.data[0, 1], -2.0)

    def test_grad_x_numeric(self):
        x = self.rng.standard_normal((1, 2, 5, 5))
        w = self.rng.standard_normal((3, 2, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        wt = Tensor(w.copy(), requires_grad=True)
        bt = Tensor(np.zeros(3), requires_grad=True)
        F.conv2d(xt, wt, bt, stride=2, padding=1).sum().backward()
        num = numeric_grad(
            lambda a: F.conv2d(Tensor(a), Tensor(w), stride=2, padding=1).data.sum(),
            x.copy())
        np.testing.assert_allclose(xt.grad, num, atol=1e-5)
        num_w = numeric_grad(
            lambda a: F.conv2d(Tensor(x), Tensor(a), stride=2, padding=1).data.sum(),
            w.copy())
        np.testing.assert_allclose(wt.grad, num_w, atol=1e-5)
        np.testing.assert_allclose(bt.grad, np.full(3, 9.0), atol=1e-8)

    def test_grouped_grad_numeric(self):
        x = self.rng.standard_normal((1, 4, 4, 4))
        w = self.rng.standard_normal((4, 2, 3, 3))
        xt = Tensor(x.copy(), requires_grad=True)
        F.conv2d(xt, Tensor(w), padding=1, groups=2).sum().backward()
        num = numeric_grad(
            lambda a: F.conv2d(Tensor(a), Tensor(w), padding=1, groups=2).data.sum(),
            x.copy())
        np.testing.assert_allclose(xt.grad, num, atol=1e-5)


class TestPooling:
    def test_pool_output_size_floor_vs_ceil(self):
        # Paper Eq. 8: 6-wide map, k=3, s=2, p=0 -> floor 2, ceil 3
        assert F.pool_output_size(6, 3, 2, 0, ceil_mode=False) == 2
        assert F.pool_output_size(6, 3, 2, 0, ceil_mode=True) == 3
        # Exact division: both modes agree.
        assert F.pool_output_size(7, 3, 2, 0, ceil_mode=False) == 3
        assert F.pool_output_size(7, 3, 2, 0, ceil_mode=True) == 3

    def test_ceil_mode_window_not_fully_in_padding(self):
        # PyTorch rule: final window must start before size+pad.
        assert F.pool_output_size(4, 2, 2, 0, ceil_mode=True) == 2

    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2, 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_ceil_changes_shape_and_appends_border(self):
        x = np.arange(25.0).reshape(1, 1, 5, 5)
        floor_out = F.max_pool2d(Tensor(x), 2, 2, ceil_mode=False)
        ceil_out = F.max_pool2d(Tensor(x), 2, 2, ceil_mode=True)
        assert floor_out.shape == (1, 1, 2, 2)
        assert ceil_out.shape == (1, 1, 3, 3)
        # Interior agrees; ceil adds the off-edge windows.
        np.testing.assert_array_equal(ceil_out.data[0, 0, :2, :2],
                                      floor_out.data[0, 0])
        assert ceil_out.data[0, 0, 2, 2] == 24.0

    def test_maxpool_grad_is_indicator(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_maxpool_padding(self):
        x = np.full((1, 1, 4, 4), -5.0)
        out = F.max_pool2d(Tensor(x), 3, 2, padding=1)
        # padding is -inf, so outputs equal the max of real values
        assert (out.data == -5.0).all()

    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_excludes_padding_from_divisor(self):
        x = np.ones((1, 1, 2, 2))
        out = F.avg_pool2d(Tensor(x), 2, 2, padding=1, ceil_mode=False)
        # Every window has exactly one real pixel; mean must still be 1.
        np.testing.assert_allclose(out.data, 1.0)

    def test_avgpool_grad(self):
        x = Tensor(np.ones((1, 1, 4, 4)), requires_grad=True)
        F.avg_pool2d(x, 2, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_global_avg_pool(self):
        x = Tensor(np.arange(8.0).reshape(1, 2, 2, 2))
        out = F.global_avg_pool2d(x)
        np.testing.assert_allclose(out.data, [[1.5, 5.5]])


class TestUpsample:
    def test_nearest_2x(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.upsample2d(x, scale_factor=2, mode="nearest")
        np.testing.assert_array_equal(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]])

    def test_bilinear_2x_differs_from_nearest(self):
        x = Tensor(np.array([[[[0.0, 1.0], [2.0, 3.0]]]]))
        near = F.upsample2d(x, scale_factor=2, mode="nearest")
        bil = F.upsample2d(x, scale_factor=2, mode="bilinear")
        assert not np.allclose(near.data, bil.data)

    def test_bilinear_preserves_constant(self):
        x = Tensor(np.full((1, 1, 3, 3), 7.0))
        out = F.upsample2d(x, size=(7, 7), mode="bilinear")
        np.testing.assert_allclose(out.data, 7.0)

    def test_bilinear_align_corners_endpoints(self):
        x = Tensor(np.array([[[[0.0, 3.0]]]]))
        out = F.upsample2d(x, size=(1, 4), mode="bilinear", align_corners=True)
        np.testing.assert_allclose(out.data[0, 0, 0], [0, 1, 2, 3])

    def test_downsample_nearest(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.upsample2d(x, size=(2, 2), mode="nearest")
        assert out.shape == (1, 1, 2, 2)

    def test_upsample_grad_adjoint(self):
        # <M x, y> == <x, M^T y> for random x, y
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 1, 3, 5))
        y = rng.standard_normal((1, 1, 7, 9))
        xt = Tensor(x, requires_grad=True)
        out = F.upsample2d(xt, size=(7, 9), mode="bilinear")
        (out * Tensor(y)).sum().backward()
        lhs = (out.data * y).sum()
        rhs = (xt.grad * x).sum()
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            F.upsample2d(Tensor(np.ones((1, 1, 2, 2))), scale_factor=2,
                         mode="trilinear")


class TestNormsSoftmax:
    def setup_method(self):
        self.rng = np.random.default_rng(4)

    def test_batchnorm_train_normalises(self):
        x = Tensor(self.rng.standard_normal((8, 3, 4, 4)) * 5 + 2)
        gamma = Tensor(np.ones(3), requires_grad=True)
        beta = Tensor(np.zeros(3), requires_grad=True)
        rm, rv = np.zeros(3), np.ones(3)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_batchnorm_updates_running_stats(self):
        x = Tensor(np.full((4, 2, 2, 2), 10.0))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm(x, Tensor(np.ones(2)), Tensor(np.zeros(2)), rm, rv,
                     training=True, momentum=0.5)
        np.testing.assert_allclose(rm, [5.0, 5.0])

    def test_batchnorm_eval_uses_running_stats(self):
        x = Tensor(np.ones((2, 1, 2, 2)) * 4.0)
        rm, rv = np.array([2.0]), np.array([4.0])
        out = F.batch_norm(x, Tensor(np.ones(1)), Tensor(np.zeros(1)), rm, rv,
                           training=False)
        np.testing.assert_allclose(out.data, (4 - 2) / np.sqrt(4 + 1e-5), rtol=1e-4)

    def test_layernorm_normalises_last_dim(self):
        x = Tensor(self.rng.standard_normal((5, 16)) * 3 + 1)
        out = F.layer_norm(x, Tensor(np.ones(16)), Tensor(np.zeros(16)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0, atol=1e-8)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(self.rng.standard_normal((4, 10)) * 50)
        out = F.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-12)
        assert (out.data >= 0).all()

    def test_log_softmax_consistency(self):
        x = Tensor(self.rng.standard_normal((3, 7)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-10)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        np.testing.assert_allclose(loss.item(), np.log(4), rtol=1e-10)

    def test_cross_entropy_grad_numeric(self):
        x = self.rng.standard_normal((3, 5))
        y = np.array([0, 2, 4])
        xt = Tensor(x.copy(), requires_grad=True)
        F.cross_entropy(xt, y).backward()
        num = numeric_grad(lambda a: F.cross_entropy(Tensor(a), y).item(), x.copy())
        np.testing.assert_allclose(xt.grad, num, atol=1e-6)

    def test_label_smoothing_increases_loss_on_confident(self):
        logits = Tensor(np.array([[50.0, 0.0]]))
        plain = F.cross_entropy(logits, np.array([0]))
        smooth = F.cross_entropy(logits, np.array([0]), label_smoothing=0.1)
        assert smooth.item() > plain.item()

    def test_embedding_lookup_and_grad(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = F.embedding(table, np.array([1, 1, 3]))
        np.testing.assert_array_equal(out.data[0], [3, 4, 5])
        out.sum().backward()
        np.testing.assert_array_equal(table.grad[1], [2, 2, 2])
        np.testing.assert_array_equal(table.grad[0], [0, 0, 0])

    def test_dropout_eval_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_train_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        vals = np.unique(out.data)
        assert set(vals).issubset({0.0, 2.0})
        np.testing.assert_allclose(out.data.mean(), 1.0, atol=0.05)
