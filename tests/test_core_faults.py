"""The deterministic fault-injection harness (repro.core.faults)."""

import errno
import json
import subprocess
import sys
import time

import pytest

from repro.core import faults
from repro.core.faults import (CRASH_EXIT_CODE, FaultError, FaultInjector,
                               FaultRule, fault_point, install, uninstall)


@pytest.fixture(autouse=True)
def _clean_injector():
    yield
    uninstall()


class TestFaultRule:
    def test_fires_exactly_on_the_nth_hit(self):
        rule = FaultRule("p", op="sleep", at=3, seconds=0)
        hits = [rule.consider("p", "") for _ in range(5)]
        assert hits == [False, False, True, False, False]

    def test_every_fires_periodically_from_at(self):
        rule = FaultRule("p", op="sleep", at=2, every=2, seconds=0)
        hits = [rule.consider("p", "") for _ in range(6)]
        assert hits == [False, True, False, True, False, True]

    def test_label_substring_filter(self):
        rule = FaultRule("p", op="sleep", at=1, match="precision", seconds=0)
        assert not rule.consider("p", "decoder=pil")
        assert rule.consider("p", "precision=int8")

    def test_other_points_do_not_count(self):
        rule = FaultRule("p", op="sleep", at=1, seconds=0)
        assert not rule.consider("q", "")
        assert rule.consider("p", "")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-rule field"):
            FaultRule.from_dict({"point": "p", "opp": "crash"})

    def test_rejects_bad_op_and_bounds(self):
        with pytest.raises(ValueError, match="op must be"):
            FaultRule("p", op="explode")
        with pytest.raises(ValueError, match="at must be"):
            FaultRule("p", at=0)
        with pytest.raises(ValueError, match="every must be"):
            FaultRule("p", every=0)


class TestInjector:
    def test_unarmed_fault_point_is_a_noop(self):
        uninstall()
        assert fault_point("anything", "label") is None

    def test_raise_op_throws_enospc(self):
        install([{"point": "p", "op": "raise", "at": 1}])
        with pytest.raises(FaultError) as exc:
            fault_point("p")
        assert exc.value.errno == errno.ENOSPC

    def test_raise_op_custom_errno(self):
        install([{"point": "p", "op": "raise", "at": 1,
                  "errno_code": errno.EIO}])
        with pytest.raises(FaultError) as exc:
            fault_point("p")
        assert exc.value.errno == errno.EIO

    def test_torn_write_returns_cooperative_payload(self):
        install([{"point": "p", "op": "torn_write", "at": 2, "bytes": 7}])
        assert fault_point("p") is None
        assert fault_point("p") == {"op": "torn_write", "bytes": 7}
        assert fault_point("p") is None

    def test_sleep_op_sleeps(self):
        install([{"point": "p", "op": "sleep", "at": 1, "seconds": 0.05}])
        t0 = time.monotonic()
        fault_point("p")
        assert time.monotonic() - t0 >= 0.05

    def test_install_replaces_and_uninstall_disarms(self):
        install([{"point": "p", "op": "raise", "at": 1}])
        uninstall()
        assert fault_point("p") is None

    def test_determinism_two_injectors_same_plan_same_story(self):
        plan = [{"point": "p", "op": "torn_write", "at": 2, "every": 3}]
        stories = []
        for _ in range(2):
            inj = FaultInjector(plan)
            stories.append([inj.fire("p") is not None for _ in range(9)])
        assert stories[0] == stories[1]
        assert sum(stories[0]) == 3            # hits 2, 5, 8


class TestEnvArming:
    def test_env_spec_arms_subprocess_and_crash_exit_code(self, tmp_path):
        code = ("from repro.core.faults import fault_point\n"
                "fault_point('p')\n"
                "print('unreachable')\n")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_FAULTS":
                 json.dumps([{"point": "p", "op": "crash", "at": 1}]),
                 "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, cwd="/root/repo")
        assert proc.returncode == CRASH_EXIT_CODE
        assert "unreachable" not in proc.stdout

    def test_env_spec_from_file(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps([{"point": "p", "op": "raise", "at": 1}]))
        code = ("from repro.core.faults import fault_point, FaultError\n"
                "try:\n"
                "    fault_point('p')\n"
                "except FaultError:\n"
                "    print('raised')\n")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_FAULTS": f"@{plan}",
                 "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, cwd="/root/repo")
        assert proc.stdout.strip() == "raised"

    def test_unparseable_env_spec_raises_not_ignores(self, monkeypatch):
        # A typo'd chaos plan must not silently run the workload clean.
        monkeypatch.setenv(faults.ENV_VAR, "{not json")
        monkeypatch.setattr(faults, "_env_checked", False)
        monkeypatch.setattr(faults, "_injector", None)
        with pytest.raises(ValueError, match="unparseable"):
            fault_point("p")
