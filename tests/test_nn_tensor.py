"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, cat, no_grad, stack


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn w.r.t. array x."""
    g = np.zeros_like(x)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = fn(x)
        flat[i] = old - eps
        lo = fn(x)
        flat[i] = old
        gf[i] = (hi - lo) / (2 * eps)
    return g


def check_grad(op, shape, rng, positive=False, atol=1e-5):
    data = rng.standard_normal(shape)
    if positive:
        data = np.abs(data) + 0.5
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t)
    out.sum().backward() if out.size > 1 else out.backward()
    num = numeric_grad(lambda x: op(Tensor(x)).data.sum(), data.copy())
    np.testing.assert_allclose(t.grad, num, atol=atol)


class TestArithmetic:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_add_grads(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1, 1])
        np.testing.assert_array_equal(b.grad, [1, 1])

    def test_mul_grads(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, [3, 4])
        np.testing.assert_array_equal(b.grad, [1, 2])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(self.rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(self.rng.standard_normal(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_array_equal(b.grad, np.full(4, 3.0))

    def test_broadcast_scalar(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        (a * 3.0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.full((2, 2), 3.0))

    def test_div_grad(self):
        check_grad(lambda t: t / 2.5, (3, 3), self.rng)

    def test_rdiv_grad(self):
        check_grad(lambda t: 1.0 / t, (4,), self.rng, positive=True)

    def test_pow_grad(self):
        check_grad(lambda t: t ** 3, (5,), self.rng)

    def test_neg_and_sub(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        ((-a) - a).backward()
        np.testing.assert_array_equal(a.grad, [-2.0])

    def test_reuse_accumulates(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a * a).backward()
        np.testing.assert_array_equal(a.grad, [6.0])


class TestMatmulShape:
    def setup_method(self):
        self.rng = np.random.default_rng(1)

    def test_matmul_grad(self):
        a = Tensor(self.rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(self.rng.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        num_a = numeric_grad(lambda x: (x @ b.data).sum(), a.data.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)

    def test_batched_matmul_grad(self):
        a = Tensor(self.rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(self.rng.standard_normal((2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_batched_matmul_broadcast(self):
        a = Tensor(self.rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(self.rng.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert b.grad.shape == (4, 5)

    def test_reshape_grad(self):
        check_grad(lambda t: t.reshape(6), (2, 3), self.rng)

    def test_transpose_grad(self):
        a = Tensor(self.rng.standard_normal((2, 3, 4)), requires_grad=True)
        a.transpose(2, 0, 1).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3, 4)))

    def test_getitem_grad(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a[0].sum().backward()
        np.testing.assert_array_equal(a.grad, [[1, 1, 1], [0, 0, 0]])

    def test_pad_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        a.pad([(1, 1), (0, 2)]).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))


class TestReductionsAndFunctions:
    def setup_method(self):
        self.rng = np.random.default_rng(2)

    def test_sum_axis_grad(self):
        a = Tensor(self.rng.standard_normal((3, 4)), requires_grad=True)
        a.sum(axis=1).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((3, 4)))

    def test_mean_grad(self):
        a = Tensor(self.rng.standard_normal((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_max_grad_routes_to_argmax(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_array_equal(a.grad, [0, 1, 0])

    def test_max_axis_keepdims(self):
        a = Tensor(self.rng.standard_normal((3, 4)), requires_grad=True)
        out = a.max(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad.sum(), 3.0)

    @pytest.mark.parametrize("name", ["exp", "log", "sqrt", "relu", "sigmoid",
                                      "tanh", "gelu"])
    def test_elementwise_grads(self, name):
        positive = name in ("log", "sqrt")
        check_grad(lambda t: getattr(t, name)(), (6,), self.rng, positive=positive,
                   atol=1e-4)

    def test_clip_grad(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1, 1).sum().backward()
        np.testing.assert_array_equal(a.grad, [0, 1, 0])

    def test_var(self):
        a = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(a.var().item(), np.var([1, 2, 3, 4]))


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_backward_on_nonscalar_requires_grad_arg(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_detach_cuts_graph(self):
        a = Tensor(np.ones(2), requires_grad=True)
        assert not (a * 2).detach().requires_grad

    def test_deep_chain_no_recursion(self):
        a = Tensor(np.ones(1), requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.backward()
        np.testing.assert_array_equal(a.grad, [1.0])

    def test_diamond_graph_accumulation(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward()
        np.testing.assert_array_equal(a.grad, [7.0])

    def test_cat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        cat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b]).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))

    def test_zero_grad(self):
        a = Tensor(np.ones(1), requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None
