"""Tests for the model zoo: shapes, trainability, family properties."""

import numpy as np
import pytest

import repro.nn as nn
from repro.models import (MODEL_ZOO, create_model, family_of, model_names,
                          resnet_lite, swin_lite, vit_lite)
from repro.nn import Tensor


def rand_batch(n=2, size=32, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal((n, 3, size, size)))


class TestZooRegistry:
    def test_26_rows_like_paper_table2(self):
        assert len(MODEL_ZOO) == 26

    def test_families_present(self):
        fams = {s.family for s in MODEL_ZOO}
        assert fams == {"mcunet", "resnet", "mobilenet", "regnet",
                        "efficientnet", "vit", "swin"}

    def test_only_resnets_have_maxpool_flag(self):
        for s in MODEL_ZOO:
            assert s.has_maxpool == (s.family == "resnet")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            create_model("alexnet")

    def test_family_of(self):
        assert family_of("vit-base") == "vit"

    @pytest.mark.parametrize("name", model_names())
    def test_every_model_forward_shape(self, name):
        model = create_model(name, num_classes=10, seed=0)
        out = model(rand_batch())
        assert out.shape == (2, 10)

    def test_deterministic_construction(self):
        a = create_model("resnet-18", seed=3)
        b = create_model("resnet-18", seed=3)
        x = rand_batch()
        a.eval(), b.eval()
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_capacity_ordering_within_family(self):
        """Larger paper variants must have more parameters."""
        for small, large in [("resnet-18", "resnet-50"),
                             ("mobilenetv2-0.5", "mobilenetv2-1.4"),
                             ("regnetx-400m", "regnetx-3.2g"),
                             ("efficientnet-b0", "efficientnet-b4"),
                             ("vit-tiny", "vit-base"),
                             ("swin-tiny", "swin-base")]:
            assert (create_model(small).num_parameters()
                    < create_model(large).num_parameters())

    def test_mcunet_is_smallest(self):
        sizes = {n: create_model(n).num_parameters() for n in model_names()}
        assert min(sizes, key=sizes.get) == "mcunet-293kb"


class TestResNetSpecifics:
    def test_stem_pool_is_floor_mode(self):
        model = resnet_lite("resnet-18")
        assert model.pool.ceil_mode is False

    def test_ceil_mode_flip_changes_logits(self):
        model = resnet_lite("resnet-18")
        model.eval()
        x = rand_batch()
        base = model(x).data
        model.pool.ceil_mode = True
        flipped = model(x).data
        assert base.shape == flipped.shape        # head is GAP, shape-safe
        assert not np.allclose(base, flipped)     # but values shift

    def test_bottleneck_used_in_deep_variants(self):
        from repro.models.resnet import Bottleneck
        model = resnet_lite("resnet-50")
        assert any(isinstance(m, Bottleneck) for m in model.modules())

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            resnet_lite("resnet-1001")


class TestTransformerSpecifics:
    def test_vit_cls_token_trainable(self):
        model = vit_lite("vit-tiny")
        params = list(model.parameters())
        assert any(p is model.cls_token for p in params)

    def test_vit_patch_count(self):
        model = vit_lite("vit-tiny", img_size=32)
        tokens = model.embed(rand_batch())
        assert tokens.shape[1] == (32 // 8) ** 2

    def test_swin_forward_and_grad(self):
        model = swin_lite("swin-tiny")
        out = model(rand_batch())
        out.sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert sum(g is not None for g in grads) > len(grads) * 0.9

    def test_swin_shifted_windows_differ_from_unshifted(self):
        from repro.models.vit import SwinBlock
        rng = np.random.default_rng(0)
        plain = SwinBlock(8, 2, 4, shift=0, mlp_ratio=2.0, rng=np.random.default_rng(1))
        shifted = SwinBlock(8, 2, 4, shift=2, mlp_ratio=2.0, rng=np.random.default_rng(1))
        x = Tensor(rng.standard_normal((1, 8, 8, 8)))
        assert not np.allclose(plain(x).data, shifted(x).data)

    def test_roll_roundtrip(self):
        from repro.models.vit import _roll
        x = Tensor(np.arange(24.0).reshape(1, 4, 6, 1))
        back = _roll(_roll(x, -2, 1), 2, 1)
        np.testing.assert_array_equal(back.data, x.data)


class TestTrainability:
    """One representative per family must learn the synthetic task."""

    @pytest.mark.parametrize("name", ["resnet18x0.25", "mobilenetv2-0.5",
                                      "vit-tiny"])
    def test_model_learns_above_chance(self, name):
        rng = np.random.default_rng(0)
        n, k = 120, 4
        y = np.arange(n) % k
        x = rng.standard_normal((n, 3, 32, 32)) * 0.1
        # class-dependent quadrant brightness: easy but non-trivial signal
        for i, yi in enumerate(y):
            r, c = divmod(yi, 2)
            x[i, :, r * 16:(r + 1) * 16, c * 16:(c + 1) * 16] += 1.0
        model = create_model(name, num_classes=k, seed=0)
        if name.startswith("vit"):
            cfg = nn.TrainConfig(epochs=10, batch_size=16, lr=3e-3,
                                 optimizer="adam")
        else:
            cfg = nn.TrainConfig(epochs=6, batch_size=16, lr=0.05)
        nn.train_classifier(model, x, y, cfg)
        acc = nn.evaluate_classifier(model, x, y)
        assert acc > 50.0  # chance is 25%
