"""Unit tests for the pairwise noise-interaction analysis."""

import numpy as np
import pytest

from repro.core import (InteractionMatrix, TRAIN_CONFIG, pairwise_interaction,
                        render_interaction)
from repro.core.noise import NoiseConfig


def synthetic_evaluator(effects: dict[str, float], coupling: dict = ()):
    """A fake task whose metric drops by declared amounts per active noise.

    ``effects`` maps noise name -> Δ; ``coupling`` maps frozenset pairs to an
    extra Δ applied when both are active — so expected interaction terms are
    known exactly.
    """
    coupling = dict(coupling or {})

    def active(cfg: NoiseConfig) -> set[str]:
        names = set()
        if cfg.decoder != TRAIN_CONFIG.decoder:
            names.add("decoder")
        if cfg.resize_method != TRAIN_CONFIG.resize_method:
            names.add("resize")
        if cfg.color is not None:
            names.add("color")
        if cfg.precision != "fp32":
            names.add("precision")
        if cfg.ceil_mode:
            names.add("ceil_mode")
        return names

    def evaluate(model, ds, cfg):
        names = active(cfg)
        metric = 100.0 - sum(effects.get(n, 0.0) for n in names)
        for pair, extra in coupling.items():
            if pair <= names:
                metric -= extra
        return metric

    return evaluate


class TestPairwiseInteraction:
    def test_additive_noises_have_zero_interaction(self):
        evaluate = synthetic_evaluator({"decoder": 1.0, "resize": 2.0})
        m = pairwise_interaction(evaluate, None, None, ["decoder", "resize"])
        assert m.baseline == 100.0
        assert m.singles == {"decoder": 1.0, "resize": 2.0}
        assert m.interaction("decoder", "resize") == pytest.approx(0.0)

    def test_super_additive_coupling_recovered(self):
        evaluate = synthetic_evaluator(
            {"precision": 0.5, "ceil_mode": 1.0},
            {frozenset({"precision", "ceil_mode"}): 3.0})
        m = pairwise_interaction(evaluate, None, None,
                                 ["precision", "ceil_mode"])
        assert m.interaction("precision", "ceil_mode") == pytest.approx(3.0)

    def test_interaction_symmetric_lookup(self):
        evaluate = synthetic_evaluator(
            {"decoder": 1.0, "color": 0.5},
            {frozenset({"decoder", "color"}): -0.25})
        m = pairwise_interaction(evaluate, None, None, ["decoder", "color"])
        assert m.interaction("decoder", "color") == \
            m.interaction("color", "decoder")

    def test_pair_count(self):
        noises = ["decoder", "resize", "color", "precision"]
        m = pairwise_interaction(synthetic_evaluator({}), None, None, noises)
        assert len(m.pairs) == 6             # C(4, 2)

    def test_unknown_noise_rejected(self):
        with pytest.raises(ValueError, match="worst-case"):
            pairwise_interaction(synthetic_evaluator({}), None, None,
                                 ["decoder", "cosmic-rays"])

    def test_strongest_ranked_by_magnitude(self):
        evaluate = synthetic_evaluator(
            {"decoder": 1.0, "resize": 1.0, "color": 1.0},
            {frozenset({"decoder", "resize"}): 5.0,
             frozenset({"resize", "color"}): -2.0})
        m = pairwise_interaction(evaluate, None, None,
                                 ["decoder", "resize", "color"])
        top = m.strongest(top=2)
        assert {top[0][0], top[0][1]} == {"decoder", "resize"}
        assert top[0][2] == pytest.approx(5.0)
        assert abs(top[0][2]) >= abs(top[1][2])


class TestRenderInteraction:
    def test_render_contains_all_noises_and_diagonal(self):
        evaluate = synthetic_evaluator({"decoder": 1.5, "resize": 2.5})
        m = pairwise_interaction(evaluate, None, None, ["decoder", "resize"])
        text = render_interaction(m)
        assert "decoder" in text and "resize" in text
        assert "+1.50" in text and "+2.50" in text
        assert "strongest interactions" in text

    def test_render_handles_single_noise(self):
        m = InteractionMatrix(["decoder"], 100.0, {"decoder": 1.0}, {})
        text = render_interaction(m)
        assert "+1.00" in text
