"""The filesystem lease queue (repro.core.workqueue)."""

import json
import os
import threading
import time

import pytest

from repro.core import Lease, WorkQueue


def make_queue(tmp_path, **kw):
    kw.setdefault("ttl", 5.0)
    return WorkQueue(tmp_path / "run", **kw)


class TestClaim:
    def test_claim_creates_lease_and_release_removes_it(self, tmp_path):
        wq = make_queue(tmp_path)
        lease = wq.try_claim("cell-a")
        assert lease is not None
        assert lease.path.exists()
        body = json.loads(lease.path.read_text())
        assert body["owner"] == wq.owner
        assert body["item"] == "cell-a"
        lease.release()
        assert not lease.path.exists()

    def test_second_claim_on_held_item_fails(self, tmp_path):
        wq1 = make_queue(tmp_path, owner="w1")
        wq2 = make_queue(tmp_path, owner="w2")
        with wq1.try_claim("cell-a"):
            assert wq2.try_claim("cell-a") is None

    def test_distinct_items_claim_independently(self, tmp_path):
        wq = make_queue(tmp_path)
        with wq.try_claim("a"), wq.try_claim("b"):
            pass

    def test_exactly_one_winner_under_thread_race(self, tmp_path):
        queues = [make_queue(tmp_path, owner=f"w{i}") for i in range(8)]
        wins, barrier = [], threading.Barrier(8)

        def contend(wq):
            barrier.wait()
            lease = wq.try_claim("hot")
            if lease is not None:
                wins.append(lease)

        threads = [threading.Thread(target=contend, args=(q,))
                   for q in queues]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        wins[0].release()

    def test_context_manager_releases(self, tmp_path):
        wq = make_queue(tmp_path)
        with wq.try_claim("a") as lease:
            assert lease.path.exists()
        assert not lease.path.exists()


class TestExpiryAndReclaim:
    def test_expired_lease_is_reclaimed_by_next_claimer(self, tmp_path):
        wq1 = make_queue(tmp_path, owner="dead", ttl=0.2, retry_base=0.0)
        wq2 = make_queue(tmp_path, owner="live", ttl=0.2, retry_base=0.0)
        stale = wq1.try_claim("cell")
        stale._stop.set()                      # silence its heartbeat
        stale._thread.join()
        time.sleep(0.3)
        fresh = wq2.try_claim("cell")
        assert fresh is not None
        assert json.loads(fresh.path.read_text())["owner"] == "live"
        fresh.release()

    def test_heartbeat_keeps_lease_alive_past_ttl(self, tmp_path):
        wq1 = make_queue(tmp_path, owner="slow", ttl=0.4, retry_base=0.0)
        wq2 = make_queue(tmp_path, owner="thief", ttl=0.4, retry_base=0.0)
        lease = wq1.try_claim("cell")          # heartbeats every ttl/4
        try:
            time.sleep(0.7)                    # > ttl, but heartbeats ran
            assert wq2.try_claim("cell") is None
            assert lease.still_owned()
        finally:
            lease.release()

    def test_reclaimed_owner_fails_fencing_check(self, tmp_path):
        wq1 = make_queue(tmp_path, owner="stalled", ttl=0.2, retry_base=0.0)
        wq2 = make_queue(tmp_path, owner="reclaimer", ttl=0.2,
                         retry_base=0.0)
        stale = wq1.try_claim("cell")
        stale._stop.set()                      # simulate SIGSTOP
        stale._thread.join()
        time.sleep(0.3)
        fresh = wq2.try_claim("cell")
        assert fresh is not None
        # The stalled worker wakes: it must not think it still owns the
        # cell, and its heartbeat must not refresh the new owner's lease.
        assert not stale.still_owned()
        assert not stale.heartbeat()
        assert fresh.still_owned()
        stale.release()                        # must NOT unlink fresh lease
        assert fresh.path.exists()
        fresh.release()

    def test_release_after_reclaim_does_not_double_free(self, tmp_path):
        wq = make_queue(tmp_path, ttl=0.2, retry_base=0.0)
        stale = wq.try_claim("cell")
        stale._stop.set()
        stale._thread.join()
        time.sleep(0.3)
        other = make_queue(tmp_path, owner="o2", ttl=0.2, retry_base=0.0)
        fresh = other.try_claim("cell")
        stale.release()
        assert fresh.path.exists()
        fresh.release()


class TestAttemptsAndBackoff:
    def test_attempts_count_claims(self, tmp_path):
        wq = make_queue(tmp_path, retry_base=0.0)
        assert wq.attempts("cell") == 0
        wq.try_claim("cell").release()
        wq.try_claim("cell").release()
        assert wq.attempts("cell") == 2

    def test_backoff_blocks_immediate_reclaim(self, tmp_path):
        wq = make_queue(tmp_path, retry_base=30.0)
        wq.try_claim("cell").release()
        # Second claim must wait retry_base seconds after the first.
        assert wq.try_claim("cell") is None
        assert wq.attempts("cell") == 1

    def test_backoff_elapses(self, tmp_path):
        wq = make_queue(tmp_path, retry_base=0.05)
        wq.try_claim("cell").release()
        time.sleep(0.1)
        lease = wq.try_claim("cell")
        assert lease is not None
        lease.release()

    def test_poisoned_after_budget(self, tmp_path):
        wq = make_queue(tmp_path, max_attempts=2, retry_base=0.0)
        for _ in range(2):
            wq.try_claim("cell").release()
            assert not wq.poisoned("cell")
        lease = wq.try_claim("cell")           # 3rd claim: over budget
        assert wq.poisoned("cell")
        lease.release()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            make_queue(tmp_path, ttl=0)
        with pytest.raises(ValueError, match="max_attempts"):
            make_queue(tmp_path, max_attempts=0)


class TestIntrospection:
    def test_held_leases_lists_live_bodies(self, tmp_path):
        wq = make_queue(tmp_path, owner="me")
        with wq.try_claim("a"), wq.try_claim("b"):
            held = wq.held_leases()
            assert sorted(h["item"] for h in held) == ["a", "b"]
            assert all(h["owner"] == "me" for h in held)
        assert wq.held_leases() == []

    def test_manual_heartbeat_mode(self, tmp_path):
        wq = make_queue(tmp_path, ttl=0.3, retry_base=0.0)
        lease = wq.try_claim("cell", auto_heartbeat=False)
        assert lease._thread is None           # no background refresher
        time.sleep(0.15)
        assert lease.heartbeat()               # manual refresh works
        age = time.time() - os.stat(lease.path).st_mtime
        assert age < 0.1
        lease.release()

    def test_default_owner_includes_pid(self, tmp_path):
        wq = make_queue(tmp_path)
        assert str(os.getpid()) in wq.owner
