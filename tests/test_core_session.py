"""Tests for BenchmarkSession, the decode cache, and end-to-end pluggability.

The headline acceptance test registers a brand-new "gamma" pre-processing
noise — registration only, no edits to benchmark drivers or the CLI — and
sweeps it through a BenchmarkSession on the classification adapter.
"""

import gc

import numpy as np
import pytest

from repro.core import (CLS_NOISES, NOISE_TAXONOMY, TRAIN_CONFIG,
                        BenchmarkSession, DecodeCache, NoiseSource, Session,
                        streams_digest, temporary_noise)
from repro.data import make_classification_dataset


class GammaNoise(NoiseSource):
    """Toy deployment noise: the serving stack applies a gamma curve."""

    name = "gamma"
    stage = "pre-processing"
    tasks = ("cls",)
    input_dependent = True

    def variants(self):
        return [0.8, 1.25]

    def apply_image(self, image, variant):
        scaled = (image.astype(np.float64) / 255.0) ** variant
        return (scaled * 255.0).round().clip(0, 255).astype(np.uint8)


@pytest.fixture(scope="module")
def tiny_cls():
    ds = make_classification_dataset(n=30, native_size=40, input_size=32,
                                     seed=0)
    return ds.split(22)


class TestDecodeCache:
    def _streams(self, seed=0, n=4):
        ds = make_classification_dataset(n=n, native_size=24, input_size=16,
                                         seed=seed)
        return ds.streams

    def test_digest_frames_item_boundaries(self):
        class Raw:
            def __init__(self, b):
                self._b = b
            def tobytes(self):
                return self._b

        a = [Raw(b"ABC"), Raw(b"D")]
        b = [Raw(b"A"), Raw(b"BCD")]      # same concatenation, same count
        assert streams_digest(a) != streams_digest(b)

    def test_content_digest_stable_across_objects(self):
        a, b = self._streams(seed=3), self._streams(seed=3)
        assert a is not b
        assert streams_digest(a) == streams_digest(b)
        assert streams_digest(a) != streams_digest(self._streams(seed=4))

    def test_no_stale_entry_after_id_reuse(self):
        """The seed bug: id()-keyed caching could serve another dataset's
        pixels once the original list was garbage collected."""
        cache = DecodeCache(maxsize=4)
        decode = lambda streams, dec: np.stack(
            [np.full((2, 2, 3), i, dtype=np.uint8)
             for i, _ in enumerate(streams)])
        a = self._streams(seed=1)
        out_a = cache.decode(a, "pil", decode)
        del a
        gc.collect()
        b = self._streams(seed=2)          # may reuse the freed list's id
        out_b = cache.decode(b, "pil", decode)
        assert cache.misses == 2           # different contents → no false hit
        assert out_a is not out_b

    def test_hit_on_equal_contents(self):
        cache = DecodeCache(maxsize=4)
        calls = []
        decode = lambda streams, dec: (calls.append(1),
                                       np.zeros((len(streams), 2, 2, 3)))[1]
        cache.decode(self._streams(seed=5), "pil", decode)
        cache.decode(self._streams(seed=5), "pil", decode)
        assert len(calls) == 1 and cache.hits == 1

    def test_decoder_is_part_of_the_key(self):
        cache = DecodeCache(maxsize=4)
        decode = lambda streams, dec: np.zeros((1,))
        s = self._streams(seed=6)
        cache.decode(s, "pil", decode)
        cache.decode(s, "opencv", decode)
        assert cache.misses == 2

    def test_lru_bound_evicts_oldest(self):
        cache = DecodeCache(maxsize=2)
        decode = lambda streams, dec: np.zeros((1,))
        s = self._streams(seed=7)
        for dec in ("pil", "opencv", "ffmpeg"):
            cache.decode(s, dec, decode)
        assert len(cache) == 2
        cache.decode(s, "pil", decode)     # evicted → miss again
        assert cache.misses == 4

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            DecodeCache(maxsize=0)


class TestBenchmarkSession:
    def test_fluent_run_produces_row(self, tiny_cls):
        train, val = tiny_cls
        result = (Session()
                  .task("cls")
                  .model("mcunet-293kb")
                  .dataset(val)
                  .noises("color", "precision")
                  .run())
        assert result.metric == "ACC"
        assert set(result.results) == {"color", "precision"}
        assert len(result.results["precision"].values) == 2
        row = result.row()
        assert isinstance(row["trained"], float) and "combined" in row

    def test_skip_marks_none_and_render_shows_dash(self, tiny_cls):
        _, val = tiny_cls
        result = (Session().task("cls").model("mcunet-293kb").dataset(val)
                  .noises("color", "ceil_mode").skip("ceil_mode")
                  .combined(False).run())
        assert result.results["ceil_mode"] is None
        text = result.render()
        assert "mcunet-293kb" in text and "-" in text

    def test_session_cache_reused_across_sweeps(self, tiny_cls):
        _, val = tiny_cls
        session = (Session().task("cls").model("mcunet-293kb").dataset(val)
                   .noises("color").combined(False))
        session.run()
        misses_first = session.cache.misses
        session.run()
        assert session.cache.misses == misses_first   # second run: all hits
        assert session.cache.hits > 0

    def test_unknown_task_and_noise_fail_fast(self):
        with pytest.raises(ValueError, match="unknown task"):
            Session().task("quantum")
        with pytest.raises(ValueError, match="unknown noise"):
            Session().task("cls").noises("warp")

    def test_run_without_data_raises(self):
        with pytest.raises(ValueError, match="no evaluation data"):
            Session().task("cls").model("mcunet-293kb").run()

    def test_fit_without_train_split_raises(self, tiny_cls):
        _, val = tiny_cls
        with pytest.raises(ValueError, match="no training data"):
            Session().task("cls").model("mcunet-293kb").dataset(val).fit()

    def test_worst_case_curve_orders_like_fig3(self, tiny_cls):
        _, val = tiny_cls
        curve = (Session().task("cls").model("mcunet-293kb").dataset(val)
                 .worst_case(["precision", "resize"]))
        assert [n for n, _ in curve] == ["resize", "precision"]


class TestPluggabilityAcceptance:
    """ISSUE acceptance: a new noise type needs registration only."""

    def test_gamma_noise_sweeps_through_session(self, tiny_cls):
        train, val = tiny_cls
        with temporary_noise(GammaNoise):
            # The registry views see it immediately...
            assert "gamma" in [s.name for s in NOISE_TAXONOMY]
            assert "gamma" in CLS_NOISES
            # ...and a stock session sweeps it with zero driver edits.
            session = (BenchmarkSession()
                       .task("cls")
                       .model("mcunet-293kb")
                       .data(train, n_train=18)
                       .fit(epochs=2)
                       .noises("gamma", "color"))
            result = session.run()
        assert set(result.results) == {"gamma", "color"}
        gamma = result.results["gamma"]
        assert len(gamma.values) == 2            # both variants evaluated
        assert all(0.0 <= v <= 100.0 for v in gamma.values)
        assert np.isfinite(result.combined)      # combined includes gamma
        assert "gamma" in result.render()
        # Session state is clean again: gamma is gone from the views.
        assert "gamma" not in CLS_NOISES

    def test_default_noise_list_includes_custom_noise(self, tiny_cls):
        _, val = tiny_cls
        with temporary_noise(GammaNoise):
            result = (Session().task("cls").model("mcunet-293kb").dataset(val)
                      .combined(False).run())
            assert "gamma" in result.noises
