"""Plan-inference integration tests: sessions, engines, ledgers, serve.

``inference="plan"`` swaps the sweep's evaluation substrate from the
module forward to a compiled execution plan — published once into the run
directory as ``plan.npz`` and loaded (digest-verified) by every joining
process.  These tests pin the wiring: artefact publish/load/refusal, the
mode folding into cache and ledger identity, the per-cell fallback for
model-modifying configs, and the serve layer's spec validation.
"""

import json

import numpy as np
import pytest

from repro.core import (PLAN_ARTIFACT, BenchmarkSession, PlanPredictor,
                        SweepEngine)

NOISES = ("resize", "precision")


def build_session(store, mode="module", run_id=None):
    s = (BenchmarkSession().task("cls").model("mcunet-293kb").seed(0)
         .data(n=24, train_frac=0.5).noises(*NOISES).combined(False))
    if store is not None:
        s = s.store(store, run_id=run_id)
    if mode == "plan":
        s = s.inference(mode)
    return s


def row_of(result):
    return {"baseline": result.baseline,
            **{n: r.values for n, r in result.results.items()
               if r is not None}}


# ---------------------------------------------------------------------------
# Artefact lifecycle: publish, load, refuse
# ---------------------------------------------------------------------------

class TestArtifactLifecycle:
    def test_first_session_publishes_with_digest(self, tmp_path):
        s = build_session(tmp_path, "plan")
        s.fit_or_load(epochs=1)
        ledger = s.ledger
        plan_path = ledger.path / PLAN_ARTIFACT
        assert plan_path.exists()
        assert PLAN_ARTIFACT in ledger.manifest.get("checkpoints", {})
        assert s._ensure_plan_predictor().compiles == 1

    def test_second_session_loads_not_recompiles(self, tmp_path):
        s1 = build_session(tmp_path, "plan")
        s1.fit_or_load(epochs=1)
        r1 = row_of(s1.run())
        s2 = build_session(tmp_path, "plan", run_id=s1.run_id)
        s2.fit_or_load(epochs=1)
        r2 = row_of(s2.run())
        predictor = s2._ensure_plan_predictor()
        assert predictor.loads == 1 and predictor.compiles == 0
        assert r1 == r2

    def test_corrupt_artifact_refused_and_recompiled(self, tmp_path):
        s1 = build_session(tmp_path, "plan")
        s1.fit_or_load(epochs=1)
        r1 = row_of(s1.run())
        plan_path = s1.ledger.path / PLAN_ARTIFACT
        data = bytearray(plan_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        plan_path.write_bytes(bytes(data))
        s2 = build_session(tmp_path, "plan", run_id=s1.run_id)
        s2.fit_or_load(epochs=1)
        r2 = row_of(s2.run())
        predictor = s2._ensure_plan_predictor()
        assert predictor.loads == 0 and predictor.compiles == 1
        assert r1 == r2     # refusal falls back to an identical recompile

    def test_manifest_records_inference_mode(self, tmp_path):
        s = build_session(tmp_path, "plan")
        s.fit_or_load(epochs=1)
        manifest = json.loads(
            (s.ledger.path / "manifest.json").read_text())
        assert manifest["inference"] == "plan"

    def test_module_run_not_joinable_in_plan_mode(self, tmp_path):
        """The substrates differ at float level, so splicing plan cells
        into a module-mode ledger must be refused at open time."""
        s1 = build_session(tmp_path, "module")
        s1.fit_or_load(epochs=1)
        s2 = build_session(tmp_path, "plan", run_id=s1.run_id)
        with pytest.raises(ValueError):
            s2.ledger


# ---------------------------------------------------------------------------
# Determinism + fallback semantics
# ---------------------------------------------------------------------------

class TestPlanPredictions:
    def test_plan_runs_are_deterministic(self, tmp_path):
        s = build_session(tmp_path, "plan")
        s.fit_or_load(epochs=1)
        assert row_of(s.run()) == row_of(s.run())

    def test_model_modifying_cells_fall_back_to_module(self, tmp_path):
        """Precision wrappers replace the module forward with closures the
        graph exporter cannot see; those cells must evaluate exactly like
        module mode."""
        s_plan = build_session(tmp_path / "a", "plan")
        s_plan.fit_or_load(epochs=1)
        plan_row = row_of(s_plan.run())
        s_mod = build_session(tmp_path / "b", "module")
        s_mod.fit_or_load(epochs=1)
        module_row = row_of(s_mod.run())
        assert plan_row["precision"] == module_row["precision"]

    def test_predictor_memoises_one_plan_per_model(self):
        from repro.models import create_model
        predictor = PlanPredictor()
        model = create_model("mcunet-293kb", num_classes=5, seed=0)
        model.eval()
        predict = predictor.bind(model)
        x = np.random.default_rng(0).normal(size=(4, 3, 32, 32))
        first = predict(model, x)
        second = predict(model, x)
        np.testing.assert_array_equal(first, second)
        assert predictor.compiles == 1

    def test_bind_falls_back_for_modified_models(self):
        from repro.models import create_model
        predictor = PlanPredictor()
        model = create_model("mcunet-293kb", num_classes=5, seed=0)
        model.eval()
        other = create_model("mcunet-293kb", num_classes=5, seed=0)
        other.eval()
        predict = predictor.bind(model)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        predict(other, x)             # noised is not model -> module path
        assert predictor.compiles == 0


# ---------------------------------------------------------------------------
# Identity: the mode folds into engine cache and ledger keys
# ---------------------------------------------------------------------------

class TestIdentity:
    def test_engine_cache_keys_differ_by_mode(self):
        from repro.core.noise import TRAIN_CONFIG

        class Sentinel:      # weakref-able, so object_token stays stable
            pass

        model, ds = Sentinel(), Sentinel()
        k_module = SweepEngine()._cache_key(model, ds, TRAIN_CONFIG)
        k_plan = SweepEngine(inference="plan")._cache_key(model, ds,
                                                          TRAIN_CONFIG)
        assert k_module != k_plan
        # ... and the module key itself is stable across engines.
        assert k_module == SweepEngine()._cache_key(model, ds, TRAIN_CONFIG)

    def test_engine_rejects_process_mode(self):
        with pytest.raises(ValueError, match="pickle"):
            SweepEngine(inference="plan", workers=2, mode="process")

    def test_engine_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="inference"):
            SweepEngine(inference="jit")

    def test_session_rejects_process_mode(self):
        with pytest.raises(ValueError, match="pickle"):
            (BenchmarkSession().task("cls").workers(2, mode="process")
             .inference("plan"))


# ---------------------------------------------------------------------------
# Serve layer: JobSpec carries the mode
# ---------------------------------------------------------------------------

class TestServeSpec:
    def spec(self, **extra):
        from repro.serve.jobs import JobSpec
        return JobSpec({"model": "mcunet-293kb", "n": 24, **extra})

    def test_default_is_module(self):
        assert self.spec().inference == "module"

    def test_plan_accepted_and_in_identity(self):
        s = self.spec(inference="plan")
        assert s.inference == "plan"
        assert s.digest() != self.spec().digest()
        assert s.cli_block()["inference"] == "plan"

    def test_bad_values_rejected(self):
        from repro.serve.jobs import ValidationError
        with pytest.raises(ValidationError):
            self.spec(inference="jit")
        with pytest.raises(ValidationError):
            self.spec(inference="plan", mode="process")
