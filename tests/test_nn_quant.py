"""Tests for the data-precision noise substrate (FP16 / INT8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.nn import Tensor
from repro.nn.quant import (INT8_MAX, INT8_MIN, QuantParams, cast_fp16,
                            compute_qparams, dequantize, fake_quant, quantize)


class TestQuantPrimitives:
    def test_symmetric_zero_point_is_zero(self):
        qp = compute_qparams(-3.0, 5.0, symmetric=True)
        assert qp.zero_point == 0

    def test_asymmetric_covers_range(self):
        qp = compute_qparams(-1.0, 3.0)
        x = np.array([-1.0, 0.0, 3.0])
        xq = fake_quant(x, qp)
        np.testing.assert_allclose(xq, x, atol=qp.scale)

    def test_zero_is_exactly_representable(self):
        qp = compute_qparams(0.3, 7.0)   # range forced to include 0
        assert fake_quant(np.zeros(1), qp)[0] == 0.0

    def test_quantize_clips_outliers(self):
        qp = compute_qparams(-1.0, 1.0)
        q = quantize(np.array([100.0, -100.0]), qp)
        assert q.max() <= INT8_MAX and q.min() >= INT8_MIN

    def test_int8_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=1000)
        qp = compute_qparams(x.min(), x.max())
        err = np.abs(fake_quant(x, qp) - x)
        assert err.max() <= qp.scale / 2 + 1e-12

    def test_fp16_roundtrip_small_error(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(1000)
        rel = np.abs(cast_fp16(x) - x) / np.abs(x)
        assert rel.max() < 1e-3   # binary16 has ~3.3 decimal digits

    def test_fp16_error_much_smaller_than_int8(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(1000)
        qp = compute_qparams(x.min(), x.max())
        assert np.abs(cast_fp16(x) - x).mean() < np.abs(fake_quant(x, qp) - x).mean()

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_fake_quant_bounded(self, vals):
        x = np.array(vals)
        qp = compute_qparams(x.min(), x.max())
        xq = fake_quant(x, qp)
        assert np.all(np.abs(xq - x) <= qp.scale / 2 + 1e-9)

    @given(st.floats(-50, 0), st.floats(0.1, 50))
    @settings(max_examples=50, deadline=None)
    def test_property_dequant_of_quant_idempotent(self, lo, hi):
        qp = compute_qparams(lo, hi)
        x = np.linspace(lo, hi, 17)
        once = fake_quant(x, qp)
        twice = fake_quant(once, qp)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_per_channel_params_shape(self):
        w = np.random.default_rng(3).standard_normal((4, 3, 3, 3))
        qp = compute_qparams(w.min(axis=(1, 2, 3)), w.max(axis=(1, 2, 3)),
                             symmetric=True)
        assert np.asarray(qp.scale).shape == (4,)


def _make_trained_cnn():
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng), nn.ReLU(),
        nn.MaxPool2d(2, 2), nn.Flatten(),
        nn.Linear(4 * 4 * 4, 3, rng=rng))
    x = rng.standard_normal((64, 1, 8, 8))
    y = (x.mean(axis=(1, 2, 3)) > 0).astype(int)
    nn.train_classifier(model, x, y, nn.TrainConfig(epochs=4, batch_size=16))
    return model, x, y


class TestModelPrecision:
    @pytest.fixture(scope="class")
    def trained(self):
        return _make_trained_cnn()

    def test_fp16_model_close_to_fp32(self, trained):
        model, x, _ = trained
        q = nn.quantize_model_fp16(model)
        out32 = model(Tensor(x[:8])).data
        out16 = q(Tensor(x[:8])).data
        np.testing.assert_allclose(out16, out32, rtol=0.05, atol=0.05)
        assert not np.array_equal(out16, out32)  # but not identical

    def test_fp16_does_not_mutate_original(self, trained):
        model, x, _ = trained
        before = model.state_dict()
        nn.quantize_model_fp16(model)
        after = model.state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_int8_model_runs_and_approximates(self, trained):
        model, x, y = trained
        q = nn.quantize_model_int8(model, lambda m: m(Tensor(x[:32])))
        acc32 = nn.evaluate_classifier(model, x, y)
        acc8 = nn.evaluate_classifier(q, x, y)
        assert abs(acc32 - acc8) < 30.0  # same ballpark on an easy task

    def test_int8_error_exceeds_fp16_error(self, trained):
        model, x, _ = trained
        q16 = nn.quantize_model_fp16(model)
        q8 = nn.quantize_model_int8(model, lambda m: m(Tensor(x[:32])))
        ref = model(Tensor(x[:8])).data
        e16 = np.abs(q16(Tensor(x[:8])).data - ref).mean()
        e8 = np.abs(q8(Tensor(x[:8])).data - ref).mean()
        assert e8 > e16

    def test_apply_precision_dispatch(self, trained):
        model, x, _ = trained
        assert nn.apply_precision(model, "fp32") is model
        assert nn.apply_precision(model, "fp16") is not model
        with pytest.raises(ValueError):
            nn.apply_precision(model, "int8")      # needs calibration fn
        with pytest.raises(ValueError):
            nn.apply_precision(model, "int4")

    def test_int8_weights_are_quantised_grid(self, trained):
        model, x, _ = trained
        q = nn.quantize_model_int8(model, lambda m: m(Tensor(x[:8])))
        conv = next(m for m in q.modules() if isinstance(m, nn.Conv2d))
        w = conv.weight.data
        # Each output channel's weights live on a uniform grid of <=256 values
        for c in range(w.shape[0]):
            vals = np.unique(w[c])
            assert len(vals) <= 256


class TestWeightGranularity:
    """Per-channel vs per-tensor weight quantisation (ablation B knob)."""

    @pytest.fixture()
    def model_and_calib(self):
        rng = np.random.default_rng(4)
        model = nn.Sequential(nn.Conv2d(3, 6, 3, padding=1, rng=rng),
                              nn.ReLU(), nn.Flatten(),
                              nn.Linear(6 * 8 * 8, 4, rng=rng))
        # Make channel ranges deliberately unbalanced so granularity matters.
        conv = model[0]
        conv.weight.data[0] *= 20.0
        x = rng.normal(size=(16, 3, 8, 8))
        return model, x

    def test_unknown_granularity_rejected(self, model_and_calib):
        model, x = model_and_calib
        with pytest.raises(ValueError, match="granularity"):
            nn.quantize_model_int8(model, lambda m: m(Tensor(x)),
                                   weight_granularity="per_group")

    def test_per_tensor_uses_single_grid(self, model_and_calib):
        model, x = model_and_calib
        q = nn.quantize_model_int8(model, lambda m: m(Tensor(x)),
                                   weight_granularity="per_tensor")
        w = q[0].weight.data
        assert len(np.unique(w)) <= 256          # one grid for all channels

    def test_per_channel_more_accurate_on_unbalanced_weights(self,
                                                             model_and_calib):
        model, x = model_and_calib
        w = model[0].weight.data.copy()
        q_pc = nn.quantize_model_int8(model, lambda m: m(Tensor(x)))
        q_pt = nn.quantize_model_int8(model, lambda m: m(Tensor(x)),
                                      weight_granularity="per_tensor")
        err_pc = np.abs(q_pc[0].weight.data - w).mean()
        err_pt = np.abs(q_pt[0].weight.data - w).mean()
        assert err_pc < err_pt

    def test_granularities_agree_on_uniform_weights(self):
        rng = np.random.default_rng(9)
        model = nn.Sequential(nn.Linear(4, 4, rng=rng))
        # Force identical per-row ranges so both granularities share scales.
        model[0].weight.data[...] = np.tile(
            np.linspace(-1, 1, 4), (4, 1))
        x = rng.normal(size=(8, 4))
        q_pc = nn.quantize_model_int8(model, lambda m: m(Tensor(x)))
        q_pt = nn.quantize_model_int8(model, lambda m: m(Tensor(x)),
                                      weight_granularity="per_tensor")
        np.testing.assert_allclose(q_pc[0].weight.data, q_pt[0].weight.data)
