"""Plan artefact tests: save -> load -> run bit-exactness and rejection.

The ``plan.npz`` artefact (:mod:`repro.backend.serialize`) carries a
*prepared* execution plan — backend rewrites and plan passes already
applied — plus the compiling backend's identity/options and a CRC32 over
the whole document.  The contract: a loaded plan's outputs are
bit-identical to the plan that was saved (kernel rebinding is
deterministic), corrupted or version-skewed artefacts are refused with
:class:`PlanFormatError`, and the ``repro plan`` CLI round-trips all of
it from the shell.
"""

import json

import numpy as np
import pytest

from repro.backend import (BACKEND_PRESETS, DeploymentExecutor,
                           PLAN_FORMAT_VERSION, PlanFormatError,
                           ReferenceExecutor, compile_plan, export_module,
                           fuse_conv_bn_relu, load_plan, lower_integer,
                           plan_info, quantize_graph, save_plan)
from repro.models import create_model

RNG = np.random.default_rng(5)
X = RNG.normal(size=(4, 3, 32, 32))

ZOO = ["resnet18x0.25", "mcunet-293kb", "mobilenetv2-0.5", "vit-tiny"]


def graph_for(name: str):
    return export_module(create_model(name, num_classes=5, seed=0), name)


def executor_for(backend: str):
    return (ReferenceExecutor() if backend == "reference"
            else DeploymentExecutor(BACKEND_PRESETS[backend]))


# ---------------------------------------------------------------------------
# Round-trip bit-exactness: zoo x {fp32, fp16, int8}
# ---------------------------------------------------------------------------

class TestRoundTrip:
    @pytest.mark.parametrize("model_name", ZOO)
    @pytest.mark.parametrize("backend", ["reference", "gpu-fp16", "dsp"])
    def test_zoo_roundtrip_bit_exact(self, model_name, backend, tmp_path):
        plan = compile_plan(graph_for(model_name), executor_for(backend))
        want = plan.run(X)
        path = save_plan(plan, tmp_path / "plan.npz")
        loaded = load_plan(path)
        got = loaded.run(X)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    def test_int8_lowered_roundtrip(self, tmp_path):
        g = fuse_conv_bn_relu(graph_for("mcunet-293kb"))
        lowered = lower_integer(quantize_graph(g, X))
        for backend in ("reference", "dsp"):
            plan = compile_plan(lowered, executor_for(backend))
            path = save_plan(plan, tmp_path / f"{backend}.npz")
            np.testing.assert_array_equal(load_plan(path).run(X),
                                          plan.run(X))

    def test_loaded_plan_preserves_backend_identity(self, tmp_path):
        plan = compile_plan(graph_for("mcunet-293kb"), executor_for("dsp"))
        path = save_plan(plan, tmp_path / "plan.npz")
        loaded = load_plan(path)
        assert loaded.backend == plan.backend
        assert loaded.options == plan.options

    def test_loaded_plan_handles_other_batch_sizes(self, tmp_path):
        plan = compile_plan(graph_for("resnet18x0.25"),
                            executor_for("reference"))
        path = save_plan(plan, tmp_path / "plan.npz")
        loaded = load_plan(path)
        for b in (1, 7):
            xb = RNG.normal(size=(b, 3, 32, 32))
            np.testing.assert_array_equal(loaded.run(xb), plan.run(xb))

    def test_plan_info_reports_checked_metadata(self, tmp_path):
        plan = compile_plan(graph_for("mcunet-293kb"), executor_for("dsp"))
        path = save_plan(plan, tmp_path / "plan.npz")
        info = plan_info(path)
        assert info["backend"] == plan.backend
        assert info["nodes"] == len(plan.graph.nodes)
        assert info["options"]["dtype"] == "float32"
        assert info["parameters"] > 0


# ---------------------------------------------------------------------------
# Rejection: corruption and version skew
# ---------------------------------------------------------------------------

def _saved(tmp_path):
    plan = compile_plan(graph_for("mcunet-293kb"), executor_for("reference"))
    return save_plan(plan, tmp_path / "plan.npz")


class TestRejection:
    def test_corrupted_payload_rejected(self, tmp_path):
        path = _saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((PlanFormatError, Exception)):
            load_plan(path)

    def test_tampered_array_fails_crc(self, tmp_path):
        """A well-formed npz whose weight bytes were swapped must fail the
        CRC, not load silently with different numbers."""
        path = _saved(tmp_path)
        arrays = dict(np.load(path, allow_pickle=False))
        doc = json.loads(arrays["__plan_json__"].tobytes().decode())
        victim = next(n for n in doc["graph"]["initializer_names"])
        arrays[victim] = arrays[victim] + 1
        np.savez(path, **arrays)
        with pytest.raises(PlanFormatError, match="checksum mismatch"):
            load_plan(path)

    def test_version_mismatch_rejected_before_crc(self, tmp_path):
        path = _saved(tmp_path)
        arrays = dict(np.load(path, allow_pickle=False))
        doc = json.loads(arrays["__plan_json__"].tobytes().decode())
        doc["version"] = PLAN_FORMAT_VERSION + 99
        arrays["__plan_json__"] = np.frombuffer(
            json.dumps(doc).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(PlanFormatError, match="version"):
            load_plan(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises((PlanFormatError, FileNotFoundError)):
            load_plan(tmp_path / "nope.npz")

    def test_plan_info_rejects_corruption_too(self, tmp_path):
        path = _saved(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((PlanFormatError, Exception)):
            plan_info(path)


# ---------------------------------------------------------------------------
# The `repro plan` CLI
# ---------------------------------------------------------------------------

class TestPlanCli:
    def run_cli(self, *argv):
        from repro.cli import main
        return main(list(argv))

    def test_save_info_run_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "p.npz"
        assert self.run_cli("plan", "save", "--model", "mcunet-293kb",
                            "--out", str(out)) == 0
        assert out.exists()
        assert self.run_cli("plan", "info", str(out)) == 0
        text = capsys.readouterr().out
        assert "mcunet" in text and "backend" in text
        assert self.run_cli("plan", "run", str(out), "--batch", "2") == 0

    def test_parity_flag_checks_bit_identity(self, tmp_path, capsys):
        out = tmp_path / "p.npz"
        assert self.run_cli("plan", "save", "--model", "mcunet-293kb",
                            "--out", str(out), "--backend", "dsp",
                            "--int8") == 0
        assert self.run_cli("plan", "run", str(out), "--parity",
                            "--model", "mcunet-293kb") == 0
        assert "bit_identical=True" in capsys.readouterr().out

    def test_run_rejects_corrupted_artifact(self, tmp_path, capsys):
        out = tmp_path / "p.npz"
        assert self.run_cli("plan", "save", "--model", "mcunet-293kb",
                            "--out", str(out)) == 0
        data = bytearray(out.read_bytes())
        data[len(data) // 2] ^= 0xFF
        out.write_bytes(bytes(data))
        assert self.run_cli("plan", "run", str(out)) == 2

    def test_save_rejects_unknown_backend(self, capsys, tmp_path):
        assert self.run_cli("plan", "save", "--model", "mcunet-293kb",
                            "--out", str(tmp_path / "p.npz"),
                            "--backend", "tpu-v9") == 2
