"""Tests for the table/curve renderers."""

import pytest

from repro.core import NoiseResult, format_cell, render_curve, render_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None, multi=True) == "-"

    def test_multi_mean_max(self):
        r = NoiseResult("resize", 80.0, [78.0, 75.0])
        assert format_cell(r, multi=True) == "3.50 (5.00)"

    def test_single_plain(self):
        r = NoiseResult("color", 80.0, [79.0])
        assert format_cell(r, multi=False) == "1.00"


class TestRenderTable:
    def _row(self):
        return {
            "trained": 76.39,
            "noises": {
                "decoder": NoiseResult("decoder", 76.39, [75.41, 75.40, 75.42]),
                "ceil_mode": None,
            },
            "combined": 3.95,
        }

    def test_contains_all_cells(self):
        text = render_table({"resnet-50": self._row()},
                            ["decoder", "ceil_mode"], "ACC", "Title")
        assert "Title" in text
        assert "76.39" in text and "3.95" in text
        assert "-" in text            # skipped ceil_mode

    def test_alignment_consistent(self):
        text = render_table({"a": self._row(), "averylongmodelname": self._row()},
                            ["decoder", "ceil_mode"], "ACC", "t")
        lines = text.splitlines()[1:]
        assert len({len(l) for l in lines if l.strip()}) <= 2

    def test_render_curve_bars_scale(self):
        text = render_curve([("decode", 1.0), ("resize", 3.0)], "ACC")
        decode_bar = text.splitlines()[1].count("#")
        resize_bar = text.splitlines()[2].count("#")
        assert resize_bar > decode_bar
