"""Graph pass tests: rewrites must be semantics-preserving at float64."""

import numpy as np
import pytest

import repro.nn as nn
from repro.backend import (GraphBuilder, Node, ReferenceExecutor,
                           dead_code_elimination, eliminate_identity,
                           export_module, fold_constants, fuse_conv_bn,
                           optimize)
from repro.backend.compare import backend_diff, diff_report, first_divergence
from repro.models import create_model

RNG = np.random.default_rng(23)
X = RNG.normal(size=(2, 3, 32, 32))
REF = ReferenceExecutor()


def resnet_graph():
    return export_module(create_model("resnet18x0.25", num_classes=5, seed=0))


class TestEliminateIdentity:
    def test_removes_identities_and_preserves_output(self):
        g = resnet_graph()
        n_id = sum(1 for n in g.nodes if n.op == "identity")
        assert n_id > 0            # residual shortcuts export identities
        g2 = eliminate_identity(g)
        assert all(n.op != "identity" for n in g2.nodes)
        np.testing.assert_allclose(REF.run(g2, X), REF.run(g, X),
                                   rtol=1e-12, atol=1e-12)

    def test_identity_as_graph_output(self):
        b = GraphBuilder("g")
        h = b.emit("relu", ["x"])
        out = b.emit("identity", [h])
        g = b.finish(out)
        g2 = eliminate_identity(g)
        assert g2.output == h
        np.testing.assert_array_equal(REF.run(g2, X), REF.run(g, X))


class TestFuseConvBn:
    def test_fusion_numerically_neutral_at_fp64(self):
        g = resnet_graph()
        g2 = fuse_conv_bn(g)
        assert sum(n.op == "batchnorm" for n in g2.nodes) == 0
        np.testing.assert_allclose(REF.run(g2, X), REF.run(g, X),
                                   rtol=1e-9, atol=1e-10)

    def test_fusion_reduces_node_count(self):
        g = resnet_graph()
        g2 = fuse_conv_bn(g)
        n_bn = sum(n.op == "batchnorm" for n in g.nodes)
        assert len(g2.nodes) == len(g.nodes) - n_bn

    def test_fused_names_are_labelled(self):
        g2 = fuse_conv_bn(resnet_graph())
        assert any(n.name.endswith("+bn") for n in g2.nodes)

    def test_bn_without_preceding_conv_kept(self):
        b = GraphBuilder("bn-only")
        for nm, v in (("g", np.ones(3)), ("b", np.zeros(3)),
                      ("m", np.zeros(3)), ("v", np.ones(3))):
            b.add_initializer(nm, v)
        out = b.emit("batchnorm", ["x", "g", "b", "m", "v"],
                     attrs=dict(eps=1e-5))
        g = b.finish(out)
        g2 = fuse_conv_bn(g)
        assert sum(n.op == "batchnorm" for n in g2.nodes) == 1

    def test_shared_conv_output_not_fused(self):
        """conv output consumed by BN *and* another user must stay unfused."""
        rng = np.random.default_rng(0)
        b = GraphBuilder("shared")
        w = b.add_initializer("w", rng.normal(size=(3, 3, 1, 1)))
        conv = b.emit("conv2d", ["x", w],
                      attrs=dict(stride=1, padding=0, dilation=1, groups=1))
        for nm, v in (("g", np.ones(3)), ("bb", np.zeros(3)),
                      ("m", np.zeros(3)), ("vv", np.ones(3))):
            b.add_initializer(nm, v)
        bn = b.emit("batchnorm", [conv, "g", "bb", "m", "vv"],
                    attrs=dict(eps=1e-5))
        out = b.emit("add", [bn, conv])       # second user of conv
        g = b.finish(out)
        g2 = fuse_conv_bn(g)
        assert sum(n.op == "batchnorm" for n in g2.nodes) == 1
        np.testing.assert_allclose(REF.run(g2, X), REF.run(g, X), rtol=1e-12)


class TestDeadCodeElimination:
    def test_drops_unused_chain(self):
        b = GraphBuilder("dead")
        live = b.emit("relu", ["x"])
        dead = b.emit("gelu", ["x"])
        b.emit("relu", [dead])                # dead chain
        g = b.finish(live)
        g2 = dead_code_elimination(g)
        assert len(g2.nodes) == 1
        np.testing.assert_array_equal(REF.run(g2, X), REF.run(g, X))

    def test_drops_unused_initializers(self):
        b = GraphBuilder("dead-w")
        b.add_initializer("unused", np.ones(100))
        out = b.emit("relu", ["x"])
        g = b.finish(out)
        g2 = dead_code_elimination(g)
        assert "unused" not in g2.initializers

    def test_noop_on_fully_live_graph(self):
        g = resnet_graph()
        g2 = dead_code_elimination(g)
        assert len(g2.nodes) == len(g.nodes)


class TestFoldConstants:
    def test_constant_subtree_folded(self):
        b = GraphBuilder("fold")
        c = b.emit("constant", [], attrs=dict(value=np.full((2, 2), 2.0)))
        c2 = b.emit("relu", [c])              # relu(2) = 2, foldable
        out = b.emit("add", ["x", c2])
        g = b.finish(out)
        g2 = fold_constants(g)
        assert [n.op for n in g2.nodes] == ["add"]
        np.testing.assert_array_equal(REF.run(g2, np.zeros((2, 2))),
                                      np.full((2, 2), 2.0))

    def test_data_dependent_nodes_not_folded(self):
        g = resnet_graph()
        g2 = fold_constants(g)
        assert len(g2.nodes) == len(g.nodes)


class TestOptimizePipeline:
    def test_full_pipeline_preserves_semantics(self):
        g = resnet_graph()
        g2 = optimize(g)
        np.testing.assert_allclose(REF.run(g2, X), REF.run(g, X),
                                   rtol=1e-9, atol=1e-10)
        assert len(g2.nodes) < len(g.nodes)

    def test_pipeline_idempotent(self):
        g = optimize(resnet_graph())
        g2 = optimize(g)
        assert len(g.nodes) == len(g2.nodes)
        np.testing.assert_allclose(REF.run(g2, X), REF.run(g, X), rtol=1e-12)


class TestCompare:
    def test_identical_backends_zero_diff(self):
        g = resnet_graph()
        diffs = backend_diff(g, X, ReferenceExecutor(), ReferenceExecutor())
        assert diffs and all(d.max_abs == 0 for d in diffs)
        assert first_divergence(diffs) is None

    def test_fp16_diff_grows_with_depth(self):
        g = resnet_graph()
        diffs = backend_diff(g, X, "reference", "gpu-fp16")
        onset = first_divergence(diffs, rel_tol=1e-6)
        assert onset is not None
        # Later layers should accumulate at least as much error as the onset.
        assert max(d.rel for d in diffs) >= onset.rel

    def test_diff_report_readable(self):
        g = resnet_graph()
        report = diff_report(backend_diff(g, X, "reference", "gpu-fp16"))
        assert "worst by relative error" in report
        assert "first divergence" in report

    def test_diff_report_empty(self):
        assert diff_report([]) == "no comparable layers"

    def test_accuracy_under_backend(self):
        from repro.backend import accuracy_under_backend
        g = resnet_graph()
        labels = REF.run(g, X).argmax(axis=1)
        assert accuracy_under_backend(g, X, labels, "reference") == 100.0
