"""Tests for the noise taxonomy, configs, and pipeline plumbing."""

import numpy as np
import pytest

from repro.core import (NOISE_TAXONOMY, TRAIN_CONFIG, WORST_CASE_ORDER,
                        NoiseConfig, apply_model_noise, combined_config,
                        decode_dataset, deployment_variants, normalize,
                        preprocess, preprocess_dataset, render_taxonomy)
from repro.data import make_classification_dataset
from repro.models import resnet_lite
from repro.nn import MaxPool2d, Tensor
from repro.segmentation import UNetLite


class TestTaxonomy:
    def test_seven_noise_types(self):
        assert len(NOISE_TAXONOMY) == 7

    def test_table1_category_counts(self):
        counts = {s.name: s.num_categories for s in NOISE_TAXONOMY}
        assert counts == {"decoder": 4, "resize": 11, "color": 2,
                          "ceil_mode": 2, "upsample": 2, "precision": 3,
                          "proposal": 2}

    def test_stages_partition(self):
        stages = {s.stage for s in NOISE_TAXONOMY}
        assert stages == {"pre-processing", "model-inference", "post-processing"}

    def test_nlp_only_touched_by_precision(self):
        for s in NOISE_TAXONOMY:
            assert ("nlp" in s.tasks) == (s.name == "precision")

    def test_render_taxonomy_lists_all(self):
        text = render_taxonomy()
        for s in NOISE_TAXONOMY:
            assert s.name in text


class TestNoiseConfig:
    def test_train_config_is_clean(self):
        assert TRAIN_CONFIG.decoder == "dali"
        assert TRAIN_CONFIG.precision == "fp32"
        assert TRAIN_CONFIG.ceil_mode is False

    def test_with_replaces_field(self):
        cfg = TRAIN_CONFIG.with_(precision="int8")
        assert cfg.precision == "int8" and TRAIN_CONFIG.precision == "fp32"

    def test_describe_mentions_active_noises(self):
        cfg = TRAIN_CONFIG.with_(ceil_mode=True, precision="fp16")
        assert "ceil" in cfg.describe() and "fp16" in cfg.describe()

    def test_variant_counts_match_taxonomy(self):
        assert len(deployment_variants("decoder")) == 3     # 4 libs - train lib
        assert len(deployment_variants("resize")) == 10     # 11 - train kernel
        assert len(deployment_variants("precision")) == 2   # fp16, int8
        for single in ("color", "ceil_mode", "upsample", "proposal"):
            assert len(deployment_variants(single)) == 1

    def test_unknown_noise_raises(self):
        with pytest.raises(ValueError):
            deployment_variants("dropout")

    def test_combined_config_stacks(self):
        cfg = combined_config(["decoder", "resize", "precision", "ceil_mode"])
        assert cfg.decoder == "opencv"
        assert cfg.resize_method == "cv-nearest"
        assert cfg.precision == "int8"
        assert cfg.ceil_mode is True
        assert cfg.aligned_offset == 0.0       # proposal not requested

    def test_worst_case_order_covers_all_noises(self):
        assert {n for n, _ in WORST_CASE_ORDER} == {s.name for s in NOISE_TAXONOMY}


class TestPipeline:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_classification_dataset(n=12, native_size=40, input_size=32,
                                           seed=0)

    def test_preprocess_dataset_shape(self, ds):
        x = preprocess_dataset(ds.streams, 32, TRAIN_CONFIG)
        assert x.shape == (12, 3, 32, 32)
        assert -1.0 <= x.min() and x.max() <= 1.0

    def test_decode_cache_hits(self, ds):
        a = decode_dataset(ds.streams, "dali")
        b = decode_dataset(ds.streams, "dali")
        assert a is b

    def test_different_decoder_different_pixels(self, ds):
        a = preprocess_dataset(ds.streams, 32, TRAIN_CONFIG)
        b = preprocess_dataset(ds.streams, 32, TRAIN_CONFIG.with_(decoder="pil"))
        assert not np.array_equal(a, b)

    def test_color_noise_changes_pixels(self, ds):
        a = preprocess_dataset(ds.streams, 32, TRAIN_CONFIG)
        b = preprocess_dataset(ds.streams, 32,
                               TRAIN_CONFIG.with_(color="nv12-integer"))
        assert not np.array_equal(a, b)

    def test_preprocess_single_image(self, ds):
        out = preprocess(ds.images[0], 24, TRAIN_CONFIG)
        assert out.shape == (24, 24, 3) and out.dtype == np.uint8

    def test_normalize_range(self):
        x = normalize(np.full((1, 4, 4, 3), 255, dtype=np.uint8))
        np.testing.assert_allclose(x, 0.5)


class TestApplyModelNoise:
    def test_ceil_mode_applied_to_copy_only(self):
        model = resnet_lite("resnet-18")
        noised = apply_model_noise(model, TRAIN_CONFIG.with_(ceil_mode=True))
        assert model.pool.ceil_mode is False
        assert noised.pool.ceil_mode is True

    def test_upsample_mode_applied(self):
        model = UNetLite(num_classes=4, width=4)
        noised = apply_model_noise(model,
                                   TRAIN_CONFIG.with_(upsample_mode="bilinear"))
        assert noised.up1.mode == "bilinear"
        assert model.up1.mode == "nearest"

    def test_precision_applied_last(self):
        model = resnet_lite("resnet18x0.25")
        x = np.random.default_rng(0).standard_normal((4, 3, 32, 32))
        noised = apply_model_noise(
            model, TRAIN_CONFIG.with_(precision="int8", ceil_mode=True),
            calibrate=lambda m: m(Tensor(x)))
        pools = [m for m in noised.modules() if isinstance(m, MaxPool2d)]
        assert all(p.ceil_mode for p in pools)

    def test_fp32_config_still_copies(self):
        model = resnet_lite("resnet18x0.25")
        assert apply_model_noise(model, TRAIN_CONFIG) is not model
