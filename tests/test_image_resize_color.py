"""Tests for resize kernels (11 methods) and colour-space round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image.color import (COLOR_PIPELINES, color_roundtrip,
                               rgb_to_yuv_bt601, subsample_420, upsample_420,
                               yuv_to_rgb_bt601, yuv_to_rgb_integer)
from repro.image.resize import (OPENCV_METHODS, PILLOW_METHODS,
                                RESIZE_METHODS, resize, resize_matrix)


def gradient_image(h=24, w=24):
    yy, xx = np.mgrid[0:h, 0:w]
    img = np.stack([xx * 255 / (w - 1), yy * 255 / (h - 1),
                    (xx + yy) * 255 / (h + w - 2)], axis=-1)
    return img.astype(np.uint8)


class TestResizeBasics:
    def test_eleven_methods_as_in_paper(self):
        assert len(RESIZE_METHODS) == 11
        assert len(PILLOW_METHODS) == 6 and len(OPENCV_METHODS) == 5

    @pytest.mark.parametrize("method", RESIZE_METHODS)
    def test_output_shape_and_dtype(self, method):
        out = resize(gradient_image(), (16, 20), method)
        assert out.shape == (16, 20, 3) and out.dtype == np.uint8

    @pytest.mark.parametrize("method", RESIZE_METHODS)
    def test_identity_size_near_identity(self, method):
        img = gradient_image()
        out = resize(img, img.shape[:2], method)
        assert np.abs(out.astype(int) - img.astype(int)).max() <= 1

    @pytest.mark.parametrize("method", RESIZE_METHODS)
    def test_constant_image_preserved(self, method):
        img = np.full((16, 16, 3), 77, dtype=np.uint8)
        out = resize(img, (23, 9), method)
        np.testing.assert_array_equal(out, 77)

    def test_grayscale_2d_supported(self):
        img = gradient_image()[..., 0]
        assert resize(img, (12, 12)).shape == (12, 12)

    def test_float_input_stays_float(self):
        img = gradient_image().astype(np.float64)
        out = resize(img, (12, 12), "pillow-bilinear")
        assert out.dtype == np.float64

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            resize(gradient_image(), (8, 8), "pillow-magic")

    def test_matrix_rows_sum_to_one(self):
        for method in RESIZE_METHODS:
            m = resize_matrix(17, 9, method)
            np.testing.assert_allclose(m.sum(axis=1), 1.0, atol=1e-9)

    def test_matrix_cached(self):
        a = resize_matrix(10, 5, "pillow-bilinear")
        b = resize_matrix(10, 5, "pillow-bilinear")
        assert a is b


class TestResizeDisagreement:
    """The resize noise: methods and packages produce different tensors."""

    def setup_method(self):
        rng = np.random.default_rng(0)
        self.img = rng.integers(0, 256, size=(32, 32, 3), dtype=np.uint8)

    def test_methods_pairwise_distinct_on_downscale(self):
        outs = {m: resize(self.img, (14, 14), m) for m in RESIZE_METHODS}
        names = list(outs)
        distinct = sum(not np.array_equal(outs[a], outs[b])
                       for i, a in enumerate(names) for b in names[i + 1:])
        assert distinct >= 50  # out of 55 pairs

    def test_same_kernel_differs_across_packages(self):
        """Package-level noise: pillow-bilinear != cv-bilinear on downscale."""
        a = resize(self.img, (14, 14), "pillow-bilinear")
        b = resize(self.img, (14, 14), "cv-bilinear")
        assert not np.array_equal(a, b)

    def test_pillow_antialias_smoother_on_downscale(self):
        # With antialiasing, downscaled high-freq noise has lower variance.
        a = resize(self.img, (8, 8), "pillow-bilinear").astype(float)
        b = resize(self.img, (8, 8), "cv-bilinear").astype(float)
        assert a.var() < b.var()

    def test_nearest_mappings_differ(self):
        img = np.arange(8, dtype=np.uint8).reshape(1, 8)
        img = np.repeat(img[..., None], 3, axis=-1)
        a = resize(img, (1, 3), "pillow-nearest")
        b = resize(img, (1, 3), "cv-nearest")
        assert not np.array_equal(a, b)

    def test_upscale_bilinear_between_neighbours(self):
        img = np.array([[0, 100]], dtype=np.uint8)[..., None].repeat(3, -1)
        out = resize(img, (1, 4), "pillow-bilinear").astype(int)
        assert (out >= 0).all() and (out <= 100).all()
        assert out[0, 1, 0] not in (0, 100)  # actually interpolates

    def test_area_equals_box_mean_for_integer_factor(self):
        img = self.img
        out = resize(img, (16, 16), "cv-area").astype(float)
        ref = img.astype(float).reshape(16, 2, 16, 2, 3).mean(axis=(1, 3))
        np.testing.assert_allclose(out, np.round(ref), atol=1.0)

    @given(st.integers(2, 40), st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_property_any_size_bounded_range(self, oh, ow):
        out = resize(self.img, (oh, ow), "pillow-lanczos")
        assert out.shape == (oh, ow, 3)
        # lanczos can ring but uint8 clip keeps range valid
        assert out.min() >= 0 and out.max() <= 255


class TestColor:
    def setup_method(self):
        rng = np.random.default_rng(1)
        self.img = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)

    def test_yuv_ranges_studio_swing(self):
        yuv = rgb_to_yuv_bt601(self.img)
        assert yuv[..., 0].min() >= 16 and yuv[..., 0].max() <= 235

    def test_gray_has_neutral_chroma(self):
        gray = np.full((4, 4, 3), 128, dtype=np.uint8)
        yuv = rgb_to_yuv_bt601(gray)
        np.testing.assert_array_equal(yuv[..., 1], 128)
        np.testing.assert_array_equal(yuv[..., 2], 128)

    def test_float_roundtrip_small_error(self):
        out = yuv_to_rgb_bt601(rgb_to_yuv_bt601(self.img))
        err = np.abs(out.astype(int) - self.img.astype(int))
        assert err.max() <= 4 and err.mean() < 1.5

    def test_integer_inverse_differs_from_float(self):
        yuv = rgb_to_yuv_bt601(self.img)
        a, b = yuv_to_rgb_bt601(yuv), yuv_to_rgb_integer(yuv)
        assert not np.array_equal(a, b)
        assert np.abs(a.astype(int) - b.astype(int)).max() <= 3

    def test_subsample_shapes(self):
        yuv = rgb_to_yuv_bt601(self.img)
        y, u, v = subsample_420(yuv)
        assert y.shape == (16, 16) and u.shape == (8, 8) and v.shape == (8, 8)

    def test_subsample_odd_dims(self):
        yuv = rgb_to_yuv_bt601(self.img[:15, :13])
        y, u, v = subsample_420(yuv)
        assert u.shape == (8, 7)
        restored = upsample_420(y, u, v)
        assert restored.shape == (15, 13, 3)

    def test_nv12_lossier_than_444(self):
        e444 = np.abs(color_roundtrip(self.img, "yuv444-float").astype(int)
                      - self.img.astype(int)).mean()
        e420 = np.abs(color_roundtrip(self.img, "nv12-float").astype(int)
                      - self.img.astype(int)).mean()
        assert e420 > e444

    @pytest.mark.parametrize("pipeline", list(COLOR_PIPELINES))
    def test_all_pipelines_bounded_noise(self, pipeline):
        # Use a smooth image: NV12 chroma averaging on pure noise is huge by
        # construction, but the benchmark operates on natural-ish content.
        img = gradient_image(16, 16)
        out = color_roundtrip(img, pipeline)
        assert out.dtype == np.uint8
        # Colour noise is mid-level, not destruction.
        assert np.abs(out.astype(int) - img.astype(int)).mean() < 15

    def test_unknown_pipeline_raises(self):
        with pytest.raises(ValueError):
            color_roundtrip(self.img, "nv21-float")

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_property_single_pixel_roundtrip_bounded(self, r, g, b):
        px = np.array([[[r, g, b]]], dtype=np.uint8)
        out = color_roundtrip(px, "yuv444-float").astype(int)
        assert np.abs(out - px.astype(int)).max() <= 5
