"""Graph-level INT8 quantisation tests (repro.backend.quantize)."""

import numpy as np
import pytest

from repro.backend import (ReferenceExecutor, backend_diff, calibrate_ranges,
                           export_module, infer_shapes, quantize_graph)
from repro.models import create_model

RNG = np.random.default_rng(31)
X = RNG.normal(size=(8, 3, 32, 32))


def fp32_graph(name="resnet18x0.25"):
    return export_module(create_model(name, num_classes=5, seed=0), name)


class TestCalibration:
    def test_ranges_cover_every_node(self):
        g = fp32_graph()
        ranges = calibrate_ranges(g, X[:4])
        assert set(ranges) == {n.output for n in g.nodes}
        for lo, hi in ranges.values():
            assert lo <= hi

    def test_relu_outputs_nonnegative_range(self):
        g = fp32_graph()
        ranges = calibrate_ranges(g, X[:4])
        relu_outs = [n.output for n in g.nodes if n.op == "relu"]
        assert all(ranges[v][0] >= 0 for v in relu_outs)


class TestQuantizeGraph:
    def test_structure_gains_qdq_pairs(self):
        g = fp32_graph()
        q = quantize_graph(g, X[:4])
        n_targets = sum(n.op in ("conv2d", "linear", "matmul")
                        for n in g.nodes)
        assert sum(n.op == "quantize_linear" for n in q.nodes) == n_targets
        assert sum(n.op == "dequantize_linear" for n in q.nodes) == n_targets
        assert len(q.nodes) == len(g.nodes) + 2 * n_targets
        q.validate()

    def test_fp32_graph_untouched(self):
        g = fp32_graph()
        before = len(g.nodes)
        quantize_graph(g, X[:4])
        assert len(g.nodes) == before
        assert not any(k.endswith(".int8") for k in g.initializers)

    def test_weights_on_int8_grid(self):
        q = quantize_graph(fp32_graph(), X[:4])
        snapped = [k for k in q.initializers if k.endswith(".int8")]
        assert snapped
        for name in snapped:
            w = q.initializers[name]
            for c in range(w.shape[0]):
                assert len(np.unique(w[c])) <= 256

    def test_output_close_but_not_equal(self):
        g = fp32_graph()
        q = quantize_graph(g, X[:4])
        ref = ReferenceExecutor().run(g, X)
        qd = ReferenceExecutor().run(q, X)
        dev = np.abs(ref - qd).max()
        assert 0 < dev < np.abs(ref).max()      # perturbed, not destroyed

    def test_predictions_mostly_preserved(self):
        g = fp32_graph()
        q = quantize_graph(g, X[:4])
        a = ReferenceExecutor().run(g, X).argmax(axis=1)
        b = ReferenceExecutor().run(q, X).argmax(axis=1)
        assert (a == b).mean() >= 0.5

    def test_shape_inference_passes_through_qdq(self):
        q = quantize_graph(fp32_graph(), X[:4])
        shapes = infer_shapes(q)
        assert shapes[q.output] == (None, 5)

    def test_transformer_attention_quantised(self):
        g = fp32_graph("vit-tiny")
        q = quantize_graph(g, X[:4])
        quant_names = [n.name for n in q.nodes if n.op == "quantize_linear"]
        assert any(".scores.quant" in n or ".context.quant" in n
                   for n in quant_names)

    def test_diffable_against_fp32(self):
        """QDQ noise is attributable per layer via the standard diff tool."""
        g = fp32_graph()
        q = quantize_graph(g, X[:4])
        ref = ReferenceExecutor(keep_intermediates=True)
        qex = ReferenceExecutor(keep_intermediates=True)
        ref.run(g, X[:2])
        qex.run(q, X[:2])
        # The shared layer names exist on both sides with identical shapes.
        shared = set(ref.intermediates) & set(qex.intermediates)
        assert len(shared) >= len(g.nodes) // 2
