"""Tests for the pluggable noise registry and its derived views."""

import numpy as np
import pytest

from repro.core import (CLS_NOISES, NOISE_TAXONOMY, TRAIN_CONFIG,
                        WORST_CASE_ORDER, FieldNoise, NoiseSource,
                        combined_config, deployment_variants, get_noise,
                        noise_names, noises_for_task, register_noise,
                        temporary_noise, unregister_noise, worst_case_stack)


class GammaNoise(NoiseSource):
    """Toy pre-processing noise: deployment applies a gamma curve."""

    name = "gamma"
    stage = "pre-processing"
    tasks = ("cls",)
    input_dependent = True

    def variants(self):
        return [0.8, 1.25]

    def apply_image(self, image, variant):
        scaled = (image.astype(np.float64) / 255.0) ** variant
        return (scaled * 255.0).round().clip(0, 255).astype(np.uint8)


class TestBuiltins:
    def test_seven_builtin_sources(self):
        assert noise_names() == ["decoder", "resize", "color", "ceil_mode",
                                 "upsample", "precision", "proposal"]

    def test_get_noise_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown noise"):
            get_noise("tachyons")

    def test_task_lists_derive_from_registry(self):
        assert noises_for_task("cls") == list(CLS_NOISES)
        assert noises_for_task("nlp") == ["precision"]
        assert noises_for_task("nonexistent-task") == []

    def test_field_sources_match_config_fields(self):
        for name in noise_names():
            src = get_noise(name)
            assert isinstance(src, FieldNoise)
            for cfg in deployment_variants(name):
                assert cfg != TRAIN_CONFIG
                assert cfg.extra == ()          # built-ins use native fields

    def test_worst_case_stack_order(self):
        assert [s.name for s in worst_case_stack()] == \
            ["decoder", "resize", "color", "precision", "ceil_mode",
             "upsample", "proposal"]

    def test_combined_config_unknown_noise_raises(self):
        with pytest.raises(ValueError, match="unknown noise"):
            combined_config(["decoder", "warp-drive"])


class TestRegistration:
    def test_duplicate_name_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_noise(get_noise("decoder"))

    def test_duplicate_custom_name_raises(self):
        with temporary_noise(GammaNoise):
            with pytest.raises(ValueError, match="already registered"):
                register_noise(GammaNoise)

    def test_bad_stage_rejected(self):
        class Bad(NoiseSource):
            name = "bad"
            stage = "mid-flight"
            def variants(self):
                return [1]

        with pytest.raises(ValueError, match="unknown stage"):
            register_noise(Bad)

    def test_empty_name_rejected(self):
        class Anon(NoiseSource):
            def variants(self):
                return [1]

        with pytest.raises(ValueError, match="name"):
            register_noise(Anon)

    def test_unregister_is_idempotent(self):
        unregister_noise("never-existed")


class TestDerivedViews:
    def test_taxonomy_view_is_live(self):
        assert len(NOISE_TAXONOMY) == 7
        with temporary_noise(GammaNoise):
            assert len(NOISE_TAXONOMY) == 8
            spec = {s.name: s for s in NOISE_TAXONOMY}["gamma"]
            assert spec.stage == "pre-processing"
            assert spec.num_categories == 3     # 2 variants + train setting
        assert len(NOISE_TAXONOMY) == 7

    def test_task_list_view_is_live(self):
        assert "gamma" not in CLS_NOISES
        with temporary_noise(GammaNoise):
            assert "gamma" in CLS_NOISES
            assert "gamma" not in noises_for_task("det")
        assert "gamma" not in CLS_NOISES

    def test_views_support_list_concatenation(self):
        assert (["x"] + CLS_NOISES)[0] == "x"
        assert (CLS_NOISES + ["x"])[-1] == "x"
        assert list(CLS_NOISES) == CLS_NOISES

    def test_view_equality_with_non_iterable_is_false_not_error(self):
        assert not (CLS_NOISES == None)          # noqa: E711
        assert CLS_NOISES != 42

    def test_temporary_noise_yields_registered_instance(self):
        with temporary_noise(GammaNoise) as src:
            assert get_noise("gamma") is src

    def test_worst_case_order_pairs_usable_with_with_(self):
        cfg = TRAIN_CONFIG
        for name, changes in WORST_CASE_ORDER:
            cfg = cfg.with_(**changes)
        assert cfg.precision == "int8" and cfg.ceil_mode is True

    def test_noise_py_reexports_registry_views(self):
        from repro.core import noise
        assert len(noise.NOISE_TAXONOMY) == 7
        assert dict(noise.WORST_CASE_ORDER)["resize"] == \
            {"resize_method": "cv-nearest"}


class TestCustomNoiseSemantics:
    def test_deployment_variants_use_extras(self):
        with temporary_noise(GammaNoise):
            variants = deployment_variants("gamma")
            assert [cfg.get_extra("gamma") for cfg in variants] == [0.8, 1.25]
            assert "gamma=1.25" in variants[1].describe()

    def test_combined_config_includes_custom_noise(self):
        with temporary_noise(GammaNoise):
            cfg = combined_config(["decoder", "gamma"])
            assert cfg.decoder == "opencv"
            assert cfg.get_extra("gamma") == 1.25   # worst = last variant

    def test_with_extra_replaces_existing_entry(self):
        cfg = TRAIN_CONFIG.with_extra("gamma", 0.8).with_extra("gamma", 1.25)
        assert cfg.extra == (("gamma", 1.25),)

    def test_pipeline_applies_image_hook(self):
        from repro.core import preprocess
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(40, 40, 3), dtype=np.uint8)
        with temporary_noise(GammaNoise) as src:
            cfg = src.apply(TRAIN_CONFIG, 1.25)
            clean = preprocess(image, 32, TRAIN_CONFIG)
            noised = preprocess(image, 32, cfg)
        assert noised.shape == clean.shape
        assert np.any(noised != clean)

    def test_unregistered_extra_raises_in_pipeline(self):
        from repro.core import preprocess
        image = np.zeros((8, 8, 3), dtype=np.uint8)
        cfg = TRAIN_CONFIG.with_extra("gamma", 1.25)   # never registered here
        with pytest.raises(ValueError, match="unknown noise"):
            preprocess(image, 8, cfg)
