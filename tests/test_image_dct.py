"""Tests for the DCT variants — the root cause of decoder SysNoise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.fft import dctn, idctn

from repro.image.dct import (IDCT_VARIANTS, dct2, dct_matrix, idct_chen,
                             idct_integer, idct_reference, idct_rowcol_f32)


def random_blocks(n, rng, scale=128.0):
    return rng.uniform(-scale, scale, size=(n, 8, 8))


class TestForward:
    def test_dct_matrix_orthonormal(self):
        c = dct_matrix()
        np.testing.assert_allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = random_blocks(3, rng)
        ref = dctn(x, axes=(-2, -1), norm="ortho")
        np.testing.assert_allclose(dct2(x), ref, atol=1e-10)

    def test_dc_coefficient_is_scaled_mean(self):
        x = np.full((1, 8, 8), 10.0)
        coeffs = dct2(x)
        np.testing.assert_allclose(coeffs[0, 0, 0], 80.0)  # 8 * mean
        np.testing.assert_allclose(coeffs[0].reshape(-1)[1:], 0, atol=1e-12)


class TestInverseVariants:
    def setup_method(self):
        self.rng = np.random.default_rng(1)

    def test_reference_inverts_exactly(self):
        x = random_blocks(4, self.rng)
        np.testing.assert_allclose(idct_reference(dct2(x)), x, atol=1e-10)

    def test_reference_matches_scipy(self):
        c = random_blocks(2, self.rng)
        ref = idctn(c, axes=(-2, -1), norm="ortho")
        np.testing.assert_allclose(idct_reference(c), ref, atol=1e-10)

    @pytest.mark.parametrize("name", ["chen", "integer", "rowcol_f32"])
    def test_variants_approximate_reference(self, name):
        x = random_blocks(8, self.rng)
        coeffs = dct2(x)
        out = IDCT_VARIANTS[name](coeffs)
        # Pixel-domain error stays well below 1 LSB on average...
        assert np.abs(out - x).mean() < 0.5

    @pytest.mark.parametrize("name", ["chen", "integer", "rowcol_f32"])
    def test_variants_are_not_bit_identical(self, name):
        """The whole point: different iDCTs disagree at the LSB level."""
        x = random_blocks(8, self.rng)
        coeffs = dct2(x)
        ref = np.round(idct_reference(coeffs) + 128)
        out = np.round(IDCT_VARIANTS[name](coeffs) + 128)
        assert not np.array_equal(ref, out)

    def test_variants_disagree_pairwise(self):
        x = random_blocks(16, self.rng)
        coeffs = dct2(x)
        outs = {n: np.round(fn(coeffs) * 4) for n, fn in IDCT_VARIANTS.items()}
        names = list(outs)
        disagreements = sum(
            not np.array_equal(outs[a], outs[b])
            for i, a in enumerate(names) for b in names[i + 1:])
        assert disagreements >= 5  # nearly every pair differs somewhere

    def test_chen_approximately_linear(self):
        # Exact linearity is broken by fixed-point intermediate storage, but
        # only at the rounding-step scale.
        a = random_blocks(1, self.rng)
        np.testing.assert_allclose(idct_chen(2 * a), 2 * idct_chen(a), atol=0.1)

    def test_integer_idct_deterministic(self):
        c = dct2(random_blocks(2, self.rng))
        np.testing.assert_array_equal(idct_integer(c), idct_integer(c))

    def test_rowcol_f32_error_small(self):
        x = random_blocks(4, self.rng)
        out = idct_rowcol_f32(dct2(x))
        assert np.abs(out - x).max() < 1.0

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_property_all_variants_bounded_error(self, seed):
        rng = np.random.default_rng(seed)
        x = random_blocks(2, rng)
        coeffs = dct2(x)
        for fn in IDCT_VARIANTS.values():
            assert np.abs(fn(coeffs) - x).max() < 2.0

    def test_registry_complete(self):
        assert set(IDCT_VARIANTS) == {"reference", "chen", "integer", "rowcol_f32"}
