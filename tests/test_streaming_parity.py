"""Streaming shard pipeline ↔ monolithic path: bit-exact parity.

The contract this file gates: for every registered task adapter, every
precision (fp32/fp16/int8), a sample of registry noise configs, and shard
sizes spanning the degenerate cases (1, odd, whole dataset, larger than the
dataset), the streamed evaluation reproduces the monolithic metric
**exactly** — same floats, same tables — and a sharded sweep's per-shard
ledger lets a resume re-execute only the missing shards.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (TRAIN_CONFIG, BenchmarkSession, DecodeCache,
                        EvalCache, SweepEngine, get_task)
from repro.core.registry import combined_config, get_noise


def _cls_fixture():
    adapter = get_task("cls")
    ds = adapter.load_dataset(n=36, native_size=40, input_size=32, seed=1)
    model = adapter.build_model("mcunet-293kb", num_classes=ds.num_classes,
                                seed=0)
    adapter.train(model, ds, model_name="mcunet-293kb", epochs=2)
    return adapter, model, ds


def _det_fixture():
    adapter = get_task("det")
    ds = adapter.load_dataset(n=14, size=40, seed=0, max_objects=2)
    model = adapter.build_model(seed=0, num_classes=ds.num_classes,
                                backbone="resnet-34", fpn_channels=8)
    adapter.train(model, ds, epochs=2)
    return adapter, model, ds


def _seg_fixture():
    adapter = get_task("seg")
    ds = adapter.load_dataset(n=11, size=32, seed=0)
    model = adapter.build_model(seed=0, num_classes=ds.num_classes)
    adapter.train(model, ds, epochs=2)
    return adapter, model, ds


def _nlp_fixture():
    adapter = get_task("nlp")
    ds = adapter.load_dataset(task="piqa", n=11, seed=0)
    model = adapter.build_model(seed=0)
    adapter.train(model, ds, epochs=2)
    return adapter, model, ds


def _audio_fixture():
    adapter = get_task("audio")
    ds = adapter.load_dataset(n=7, seed=0)
    model = adapter.build_model(seed=0, dim=16)
    adapter.train(model, ds, epochs=2)
    return adapter, model, ds


_FIXTURES = {"cls": _cls_fixture, "det": _det_fixture, "seg": _seg_fixture,
             "nlp": _nlp_fixture, "audio": _audio_fixture}


@pytest.fixture(scope="module")
def trained(request):
    cache = getattr(request.module, "_trained_cache", None)
    if cache is None:
        cache = {}
        request.module._trained_cache = cache
    return lambda task: cache.setdefault(task, _FIXTURES[task]())


def _sample_configs(adapter):
    """TRAIN + every precision + up to two preprocessing noises + combined."""
    cfgs = [TRAIN_CONFIG]
    noises = adapter.noises
    if "precision" in noises:
        src = get_noise("precision")
        cfgs += [src.apply(TRAIN_CONFIG, v) for v in src.variants()]
    for name in noises:
        if name == "precision":
            continue
        src = get_noise(name)
        cfgs.append(src.apply(TRAIN_CONFIG, src.variants()[-1]))
        if len(cfgs) >= 6:
            break
    if len(noises) > 1:
        cfgs.append(combined_config(noises))
    return cfgs


@pytest.mark.parametrize("task", list(_FIXTURES))
def test_streamed_equals_monolithic_every_adapter(task, trained):
    """The core property: all adapters × configs × shard sizes, bit-exact.

    Shard sizes cover one-item shards, odd sizes (misaligned with the
    minibatch grid), the whole dataset, and oversized; fresh caches per
    evaluation so nothing is served from a previous path's memo.
    """
    adapter, model, ds = trained(task)
    n = len(ds)
    batch = 4 if task in ("cls", "det", "seg") else None
    for cfg in _sample_configs(adapter):
        mono = adapter.evaluate(model, ds, cfg, cache=DecodeCache(),
                                batch_size=batch)
        for shard_size in (1, 3, n, n + 7):
            streamed = adapter.evaluate(model, ds, cfg, cache=DecodeCache(),
                                        batch_size=batch,
                                        shard_size=shard_size)
            assert streamed == mono, (
                f"{task}: {cfg.describe()} shard_size={shard_size}: "
                f"{streamed!r} != {mono!r}")


@pytest.mark.parametrize("task", list(_FIXTURES))
def test_partials_merge_to_whole(task, trained):
    """Aligned shard partials (the scheduled work-unit shape) merge exactly."""
    adapter, model, ds = trained(task)
    batch = 4 if task in ("cls", "det", "seg") else None
    cfg = TRAIN_CONFIG
    mono = adapter.evaluate(model, ds, cfg, cache=DecodeCache(),
                            batch_size=batch)
    align = adapter.stream_align(batch)
    from repro.core import shard_bounds
    bounds = shard_bounds(len(ds), max(1, align), align)
    assert len(bounds) >= 2
    acc = adapter.accumulator(ds)
    # Merge in reverse completion order, via the JSON state round-trip the
    # process scheduler and the ledger both use.
    import json
    parts = list(adapter.evaluate_partials(model, ds, cfg, bounds,
                                           cache=DecodeCache(),
                                           batch_size=batch))
    for _, _, part in reversed(parts):
        state = json.loads(json.dumps(part.state()))
        acc.merge(adapter.accumulator(ds).load_state(state))
    assert acc.value() == mono


@settings(max_examples=8, deadline=None)
@given(shard_size=st.integers(min_value=1, max_value=50),
       batch=st.integers(min_value=1, max_value=9))
def test_property_random_shard_and_batch_geometry(shard_size, batch):
    """Hypothesis: any (shard, batch) geometry reproduces the same floats."""
    global _prop_state
    try:
        adapter, model, ds, baseline_by_batch = _prop_state
    except NameError:
        adapter = get_task("cls")
        ds = adapter.load_dataset(n=20, native_size=40, input_size=32, seed=2)
        model = adapter.build_model("mcunet-293kb",
                                    num_classes=ds.num_classes, seed=0)
        model.eval()
        baseline_by_batch = {}
        _prop_state = (adapter, model, ds, baseline_by_batch)
    cfg = get_noise("precision").apply(TRAIN_CONFIG, "int8")
    if batch not in baseline_by_batch:
        baseline_by_batch[batch] = adapter.evaluate(
            model, ds, cfg, cache=DecodeCache(), batch_size=batch)
    streamed = adapter.evaluate(model, ds, cfg, cache=DecodeCache(),
                                batch_size=batch, shard_size=shard_size)
    assert streamed == baseline_by_batch[batch]


# ---------------------------------------------------------------------------
# Sweep / session level
# ---------------------------------------------------------------------------

def _session(shard=None, workers=None, mode="thread", store=None,
             run_id=None, n=40):
    s = (BenchmarkSession().task("cls").seed(0).model("mcunet-293kb")
         .data(n=n, native_size=40, input_size=32)
         .noises("decoder", "resize", "precision")
         .batch(8).shards(shard).workers(workers, mode=mode))
    if store is not None:
        s.store(store, run_id=run_id)
    s.trained_model.eval()
    return s


class TestShardedSweeps:
    def test_four_shard_sweep_renders_byte_identical_table(self):
        mono = _session().run().render("parity")
        # batch 8, shard 8 → 5 aligned shards over 40 items.
        sharded = _session(shard=8).run().render("parity")
        assert sharded == mono

    def test_process_mode_variant_x_shard_schedule(self, monkeypatch):
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        mono = _session().run().render("parity")
        proc = _session(shard=8, workers=2, mode="process").run()
        assert proc.render("parity") == mono

    def test_shard_resume_reexecutes_only_missing_shards(self, tmp_path,
                                                         monkeypatch):
        cfg = get_noise("precision").apply(TRAIN_CONFIG, "fp16")
        full = _session()
        expected = full.engine().evaluate(full._eval_fn(full.adapter),
                                          full.trained_model,
                                          full.eval_data, cfg)

        # Interrupted run: only shards 0 and 2 (of 5) ever completed.
        s1 = _session(shard=8, store=tmp_path, run_id="r1")
        adapter, model, ds = s1.adapter, s1.trained_model, s1.eval_data
        engine = s1.engine()
        lkey = engine._ledger_key(model, ds, cfg)
        done = []
        for start, stop, part in adapter.evaluate_partials(
                model, ds, cfg, [(0, 8), (16, 24)], batch_size=8):
            engine._ledger_shard_record(lkey, start, stop, part.state(),
                                        "precision", cfg)
            done.append((start, stop))
        assert done == [(0, 8), (16, 24)]

        # Resume in a fresh session: spy on which bounds get re-executed.
        s2 = _session(shard=8, store=tmp_path, run_id="r1")
        executed = []
        orig = type(adapter).evaluate_partials

        def spy(self, model, ds, cfg, bounds, **kw):
            executed.extend(bounds)
            return orig(self, model, ds, cfg, bounds, **kw)

        monkeypatch.setattr(type(adapter), "evaluate_partials", spy)
        value = s2.engine().evaluate(s2._eval_fn(s2.adapter),
                                     s2.trained_model, s2.eval_data, cfg)
        assert value == expected
        assert executed == [(8, 16), (24, 32), (32, 40)]

    def test_shard_entries_never_satisfy_cell_lookup(self, tmp_path):
        from repro.core import RunStore, run_manifest
        store = RunStore(tmp_path)
        ledger = store.create(run_manifest(task="cls", model="m", seed=0,
                                           noises=["decoder"]), "r2")
        ledger.record_shard("m", "digest", "cfg0", start=0, stop=8,
                            state={"kind": "accuracy", "correct": 4,
                                   "total": 8})
        assert ledger.lookup("m", "digest", "cfg0") is None
        hit = ledger.lookup_shard("m", "digest", "cfg0", 0, 8)
        assert hit["state"]["correct"] == 4
        # Different bounds (other shard geometry) must miss.
        assert ledger.lookup_shard("m", "digest", "cfg0", 0, 10) is None
        # Shard entries survive a replay from disk.
        reopened = store.open("r2")
        assert reopened.lookup_shard("m", "digest", "cfg0", 0, 8) is not None

    def test_streamed_sweep_peak_memory_is_shardbound(self):
        """Tracemalloc peak of a streamed row ≤ the decoded-dataset bytes;
        the monolithic row exceeds them (the O(shard) vs O(dataset) gate —
        the full-size version runs in benchmarks/bench_perf.py)."""
        import tracemalloc
        from repro.data import make_classification_dataset
        from repro.models import create_model
        ds = make_classification_dataset(n=64, native_size=64, input_size=32,
                                         seed=0)
        model = create_model("mcunet-293kb", num_classes=ds.num_classes,
                             seed=0)
        model.eval()
        adapter = get_task("cls")

        def row(shard):
            cache = DecodeCache()
            engine = SweepEngine(eval_cache=EvalCache(), shard_size=shard,
                                 task="cls" if shard else None, batch_size=8,
                                 pipeline_cache=cache)
            ev = lambda m, d, cfg: adapter.evaluate(m, d, cfg, cache=cache,
                                                    batch_size=8)
            return engine.noise_row(ev, model, ds, ["decoder"],
                                    include_combined=False)

        decoded_bytes = len(ds) * 64 * 64 * 3 * 8     # float64 pixel batch
        tracemalloc.start()
        mono = row(None)
        mono_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        tracemalloc.start()
        streamed = row(8)
        stream_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        assert streamed["trained"] == mono["trained"]
        assert (streamed["noises"]["decoder"].values
                == mono["noises"]["decoder"].values)
        assert mono_peak > decoded_bytes
        assert stream_peak < decoded_bytes
        assert stream_peak * 2 < mono_peak
