"""Tests for the LM family and multiple-choice evaluation under precision."""

import numpy as np
import pytest

from repro.data import make_nlp_suite
from repro.nlp import (OPT_CONFIGS, LMTrainConfig, TinyLM, create_lm,
                       evaluate_task, evaluate_task_under_precision,
                       sequence_logprob, train_lm)


class TestLMBasics:
    def test_logits_shape(self):
        lm = TinyLM(vocab_size=20, dim=16, depth=1, heads=2)
        out = lm(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 20)

    def test_accepts_1d(self):
        lm = TinyLM(vocab_size=20, dim=16, depth=1, heads=2)
        assert lm(np.array([1, 2, 3])).shape == (1, 3, 20)

    def test_causality(self):
        """Changing a future token must not change past logits."""
        lm = TinyLM(vocab_size=20, dim=16, depth=2, heads=2, seed=1)
        lm.eval()
        a = lm(np.array([1, 2, 3, 4])).data
        b = lm(np.array([1, 2, 3, 9])).data
        np.testing.assert_allclose(a[0, :3], b[0, :3], atol=1e-10)
        assert not np.allclose(a[0, 3], b[0, 3])

    def test_config_family_ordering(self):
        sizes = [create_lm(n).num_parameters() for n in OPT_CONFIGS]
        assert sizes == sorted(sizes)

    def test_unknown_lm(self):
        with pytest.raises(ValueError):
            create_lm("opt-175b")

    def test_sequence_logprob_is_negative_and_finite(self):
        lm = TinyLM(vocab_size=20, dim=16, depth=1, heads=2)
        lp = sequence_logprob(lm, np.array([1, 2, 3]), np.array([4, 5]))
        assert np.isfinite(lp) and lp < 0

    def test_logprob_additivity(self):
        """log p(ab|prefix) = log p(a|prefix) + log p(b|prefix+a)."""
        lm = TinyLM(vocab_size=20, dim=16, depth=1, heads=2, seed=3)
        lm.eval()
        prefix = np.array([1, 2, 3])
        joint = sequence_logprob(lm, prefix, np.array([4, 5]))
        split = (sequence_logprob(lm, prefix, np.array([4]))
                 + sequence_logprob(lm, np.array([1, 2, 3, 4]), np.array([5])))
        np.testing.assert_allclose(joint, split, atol=1e-9)


@pytest.fixture(scope="module")
def trained_lm_suite():
    grammar, tasks = make_nlp_suite(n_per_task=30, seed=0)
    corpus = grammar.corpus(n_sequences=300, length=20, seed=1)
    lm = create_lm("opt-1.3b", vocab_size=grammar.vocab_size, seed=0)
    history = train_lm(lm, corpus, LMTrainConfig(epochs=12, batch_size=32))
    return grammar, tasks, corpus, lm, history


class TestLMTrainingAndTasks:
    def test_loss_decreases(self, trained_lm_suite):
        *_, history = trained_lm_suite
        assert history[-1] < history[0] * 0.7

    def test_piqa_above_chance(self, trained_lm_suite):
        _, tasks, _, lm, _ = trained_lm_suite
        acc = evaluate_task(lm, tasks["piqa"])
        assert acc > 60.0     # chance = 50

    def test_hellaswag_above_chance(self, trained_lm_suite):
        _, tasks, _, lm, _ = trained_lm_suite
        acc = evaluate_task(lm, tasks["hellaswag"])
        assert acc > 40.0     # chance = 25

    def test_fp16_delta_is_tiny(self, trained_lm_suite):
        _, tasks, corpus, lm, _ = trained_lm_suite
        base = evaluate_task(lm, tasks["piqa"])
        fp16 = evaluate_task_under_precision(lm, tasks["piqa"], "fp16")
        assert abs(base - fp16) <= 5.0

    def test_int8_runs_and_stays_sane(self, trained_lm_suite):
        _, tasks, corpus, lm, _ = trained_lm_suite
        int8 = evaluate_task_under_precision(lm, tasks["piqa"], "int8", corpus)
        assert 30.0 <= int8 <= 100.0

    def test_int8_without_calibration_raises(self, trained_lm_suite):
        _, tasks, _, lm, _ = trained_lm_suite
        with pytest.raises(ValueError):
            evaluate_task_under_precision(lm, tasks["piqa"], "int8")
