"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

SysNoise is *silent* degradation; the library's job is to make every other
failure mode *loud*.  These tests corrupt bitstreams, checkpoints, graphs,
and configuration values and assert a clear exception (never a wrong
answer).
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import TRAIN_CONFIG, preprocess
from repro.image import decode_with, resize
from repro.image.color import color_roundtrip
from repro.image.jpeg import JpegBitstream, decode, encode

RNG = np.random.default_rng(0)
# A smooth gradient-plus-texture image: JPEG assumes spatial coherence, so
# pure random noise would measure codec worst-case loss instead of behaviour.
_ramp = np.linspace(0, 200, 24)
IMAGE = np.clip(
    _ramp[:, None, None] + _ramp[None, :, None] * 0.25
    + RNG.normal(0, 8, size=(24, 24, 3)), 0, 255).astype(np.uint8)


class TestCorruptBitstreams:
    def test_wrong_magic_rejected(self):
        raw = encode(IMAGE).tobytes()
        with pytest.raises(ValueError, match="not an RJPG"):
            JpegBitstream.frombytes(b"JUNK" + raw[4:])

    def test_truncated_payload_fails_loudly(self):
        raw = encode(IMAGE).tobytes()
        clipped = JpegBitstream.frombytes(raw[: len(raw) // 2])
        with pytest.raises((ValueError, IndexError)):
            decode(clipped)

    def test_bitflipped_payload_fails_or_stays_in_range(self):
        """Random corruption either raises or still yields valid uint8 pixels
        of the right shape — never silently returns garbage shapes/dtypes."""
        stream = encode(IMAGE)
        payload = bytearray(stream.payload)
        for pos in (3, len(payload) // 2, len(payload) - 2):
            payload[pos] ^= 0xFF
        corrupt = JpegBitstream(stream.height, stream.width, stream.quality,
                                stream.subsample, bytes(payload),
                                stream.n_blocks)
        try:
            out = decode(corrupt)
        except (ValueError, IndexError, KeyError):
            return
        assert out.shape == IMAGE.shape and out.dtype == np.uint8

    def test_unknown_decoder_persona(self):
        with pytest.raises(ValueError):
            decode_with(encode(IMAGE), "turbojpeg")

    def test_roundtrip_sanity_after_corruption_tests(self):
        """The happy path still holds (guards against test pollution)."""
        out = decode_with(encode(IMAGE, quality=95), "pil")
        assert np.abs(out.astype(int) - IMAGE.astype(int)).mean() < 12


class TestBadConfiguration:
    def test_unknown_resize_method(self):
        with pytest.raises(ValueError, match="choose from"):
            resize(IMAGE, (16, 16), "pillow-gaussian")

    def test_unknown_color_pipeline(self):
        with pytest.raises(ValueError, match="colour pipeline"):
            color_roundtrip(IMAGE, "nv21-integer")

    def test_preprocess_rejects_bad_config(self):
        cfg = TRAIN_CONFIG.with_(resize_method="no-such-kernel")
        with pytest.raises(ValueError):
            preprocess(IMAGE, 16, cfg)

    def test_noise_config_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            TRAIN_CONFIG.with_(decoder_version=2)

    def test_unknown_model_and_lm_names(self):
        from repro.models import create_model
        from repro.nlp import create_lm
        with pytest.raises(ValueError, match="unknown model"):
            create_model("lenet-5")
        with pytest.raises(ValueError, match="unknown LM"):
            create_lm("opt-175b-turbo")


class TestCorruptArtifacts:
    def test_truncated_checkpoint(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 4))
        path = nn.save_checkpoint(model, tmp_path / "w.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(Exception):      # zipfile/np.load error surface
            nn.load_checkpoint(model, path)

    def test_checkpoint_with_extra_key(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 4))
        path = nn.save_checkpoint(model, tmp_path / "w.npz")
        with np.load(path) as data:
            blobs = dict(data)
        blobs["stowaway"] = np.ones(3)
        np.savez(path, **blobs)
        with pytest.raises(nn.CheckpointError, match="unexpected"):
            nn.load_checkpoint(model, path)

    def test_graph_with_tampered_json(self, tmp_path):
        from repro.backend import (GraphBuilder, GraphError, load_graph,
                                   save_graph)
        b = GraphBuilder("g")
        out = b.emit("relu", ["x"])
        path = save_graph(b.finish(out), tmp_path / "g.npz")
        with np.load(path) as data:
            blobs = {k: data[k] for k in data.files}
        doc = bytes(blobs["__graph_json__"]).decode()
        blobs["__graph_json__"] = np.frombuffer(
            doc.replace('"relu"', '"hcf"').encode(), dtype=np.uint8)
        np.savez(path, **blobs)
        with pytest.raises(GraphError, match="unknown op"):
            load_graph(path)


class TestNumericEdgeCases:
    def test_pipeline_handles_flat_images(self):
        """Constant-colour images (zero AC coefficients) survive the chain."""
        flat = np.full((24, 24, 3), 77, dtype=np.uint8)
        for persona in ("pil", "opencv", "ffmpeg", "dali"):
            out = decode_with(encode(flat), persona)
            assert np.abs(out.astype(int) - 77).max() <= 3
        assert color_roundtrip(flat).shape == flat.shape
        assert resize(flat, (7, 7), "cv-area").shape == (7, 7, 3)

    def test_quantizing_constant_tensor(self):
        from repro.nn.quant import compute_qparams, fake_quant
        x = np.zeros(16)
        qp = compute_qparams(x.min(), x.max())
        np.testing.assert_array_equal(fake_quant(x, qp), x)

    def test_resize_to_one_pixel(self):
        for method in ("pillow-bilinear", "cv-nearest", "cv-area"):
            out = resize(IMAGE, (1, 1), method)
            assert out.shape == (1, 1, 3)

    def test_upscale_then_downscale_identity_nearest(self):
        up = resize(IMAGE, (48, 48), "pillow-nearest")
        back = resize(up, (24, 24), "pillow-nearest")
        np.testing.assert_array_equal(back, IMAGE)
