"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

SysNoise is *silent* degradation; the library's job is to make every other
failure mode *loud*.  These tests corrupt bitstreams, checkpoints, graphs,
and configuration values and assert a clear exception (never a wrong
answer).

The sweep layer is the exception to "loud": a full sweep is the
longest-running workload, so there one failing *cell* must degrade into a
structured failure (``!`` in the table, an error entry in the run ledger)
instead of aborting the row — and a killed process-mode sweep must resume
from its ledger to a bit-identical table.  ``TestSweepFaultIsolation`` and
``TestCrashResume`` cover that contract.
"""

import os
import signal
import threading

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (TRAIN_CONFIG, EvalCache, RunStore, SweepEngine,
                        preprocess, run_manifest)
from repro.image import decode_with, resize
from repro.image.color import color_roundtrip
from repro.image.jpeg import JpegBitstream, decode, encode

RNG = np.random.default_rng(0)
# A smooth gradient-plus-texture image: JPEG assumes spatial coherence, so
# pure random noise would measure codec worst-case loss instead of behaviour.
_ramp = np.linspace(0, 200, 24)
IMAGE = np.clip(
    _ramp[:, None, None] + _ramp[None, :, None] * 0.25
    + RNG.normal(0, 8, size=(24, 24, 3)), 0, 255).astype(np.uint8)


class TestCorruptBitstreams:
    def test_wrong_magic_rejected(self):
        raw = encode(IMAGE).tobytes()
        with pytest.raises(ValueError, match="not an RJPG"):
            JpegBitstream.frombytes(b"JUNK" + raw[4:])

    def test_truncated_payload_fails_loudly(self):
        raw = encode(IMAGE).tobytes()
        clipped = JpegBitstream.frombytes(raw[: len(raw) // 2])
        with pytest.raises((ValueError, IndexError)):
            decode(clipped)

    def test_bitflipped_payload_fails_or_stays_in_range(self):
        """Random corruption either raises or still yields valid uint8 pixels
        of the right shape — never silently returns garbage shapes/dtypes."""
        stream = encode(IMAGE)
        payload = bytearray(stream.payload)
        for pos in (3, len(payload) // 2, len(payload) - 2):
            payload[pos] ^= 0xFF
        corrupt = JpegBitstream(stream.height, stream.width, stream.quality,
                                stream.subsample, bytes(payload),
                                stream.n_blocks)
        try:
            out = decode(corrupt)
        except (ValueError, IndexError, KeyError):
            return
        assert out.shape == IMAGE.shape and out.dtype == np.uint8

    def test_unknown_decoder_persona(self):
        with pytest.raises(ValueError):
            decode_with(encode(IMAGE), "turbojpeg")

    def test_roundtrip_sanity_after_corruption_tests(self):
        """The happy path still holds (guards against test pollution)."""
        out = decode_with(encode(IMAGE, quality=95), "pil")
        assert np.abs(out.astype(int) - IMAGE.astype(int)).mean() < 12


class TestBadConfiguration:
    def test_unknown_resize_method(self):
        with pytest.raises(ValueError, match="choose from"):
            resize(IMAGE, (16, 16), "pillow-gaussian")

    def test_unknown_color_pipeline(self):
        with pytest.raises(ValueError, match="colour pipeline"):
            color_roundtrip(IMAGE, "nv21-integer")

    def test_preprocess_rejects_bad_config(self):
        cfg = TRAIN_CONFIG.with_(resize_method="no-such-kernel")
        with pytest.raises(ValueError):
            preprocess(IMAGE, 16, cfg)

    def test_noise_config_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            TRAIN_CONFIG.with_(decoder_version=2)

    def test_unknown_model_and_lm_names(self):
        from repro.models import create_model
        from repro.nlp import create_lm
        with pytest.raises(ValueError, match="unknown model"):
            create_model("lenet-5")
        with pytest.raises(ValueError, match="unknown LM"):
            create_lm("opt-175b-turbo")


class TestCorruptArtifacts:
    def test_truncated_checkpoint(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 4))
        path = nn.save_checkpoint(model, tmp_path / "w.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(Exception):      # zipfile/np.load error surface
            nn.load_checkpoint(model, path)

    def test_checkpoint_with_extra_key(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 4))
        path = nn.save_checkpoint(model, tmp_path / "w.npz")
        with np.load(path) as data:
            blobs = dict(data)
        blobs["stowaway"] = np.ones(3)
        np.savez(path, **blobs)
        with pytest.raises(nn.CheckpointError, match="unexpected"):
            nn.load_checkpoint(model, path)

    def test_graph_with_tampered_json(self, tmp_path):
        from repro.backend import (GraphBuilder, GraphError, load_graph,
                                   save_graph)
        b = GraphBuilder("g")
        out = b.emit("relu", ["x"])
        path = save_graph(b.finish(out), tmp_path / "g.npz")
        with np.load(path) as data:
            blobs = {k: data[k] for k in data.files}
        doc = bytes(blobs["__graph_json__"]).decode()
        blobs["__graph_json__"] = np.frombuffer(
            doc.replace('"relu"', '"hcf"').encode(), dtype=np.uint8)
        np.savez(path, **blobs)
        with pytest.raises(GraphError, match="unknown op"):
            load_graph(path)


class TestNumericEdgeCases:
    def test_pipeline_handles_flat_images(self):
        """Constant-colour images (zero AC coefficients) survive the chain."""
        flat = np.full((24, 24, 3), 77, dtype=np.uint8)
        for persona in ("pil", "opencv", "ffmpeg", "dali"):
            out = decode_with(encode(flat), persona)
            assert np.abs(out.astype(int) - 77).max() <= 3
        assert color_roundtrip(flat).shape == flat.shape
        assert resize(flat, (7, 7), "cv-area").shape == (7, 7, 3)

    def test_quantizing_constant_tensor(self):
        from repro.nn.quant import compute_qparams, fake_quant
        x = np.zeros(16)
        qp = compute_qparams(x.min(), x.max())
        np.testing.assert_array_equal(fake_quant(x, qp), x)

    def test_resize_to_one_pixel(self):
        for method in ("pillow-bilinear", "cv-nearest", "cv-area"):
            out = resize(IMAGE, (1, 1), method)
            assert out.shape == (1, 1, 3)

    def test_upscale_then_downscale_identity_nearest(self):
        up = resize(IMAGE, (48, 48), "pillow-nearest")
        back = resize(up, (24, 24), "pillow-nearest")
        np.testing.assert_array_equal(back, IMAGE)


# ---------------------------------------------------------------------------
# Sweep-layer fault isolation + crash resume
# ---------------------------------------------------------------------------

class _Raw:
    def __init__(self, b):
        self._b = b

    def tobytes(self):
        return self._b


class _SweepDataset:
    """Picklable dataset stand-in with content-stable identity."""

    def __init__(self, payloads=(b"alpha", b"beta")):
        self.streams = [_Raw(p) for p in payloads]


class _SweepModel:
    """Picklable, weak-referenceable model stand-in."""


def _metric(cfg) -> float:
    return (90.0 - 2.0 * (cfg.decoder != "dali")
            - 1.0 * (cfg.resize_method != "pillow-bilinear")
            - 4.0 * (cfg.precision != "fp32"))


def _safe_eval(model, ds, cfg):
    return _metric(cfg)


def _raise_on_opencv(model, ds, cfg):
    if cfg.decoder == "opencv":
        raise RuntimeError("decoder backend segfault (simulated)")
    return _metric(cfg)


def _kill_worker_on_opencv(model, ds, cfg):
    """Simulates a worker dying mid-evaluation (OOM killer, segfault)."""
    if cfg.decoder == "opencv":
        os.kill(os.getpid(), signal.SIGKILL)
    return _metric(cfg)


class TestSweepFaultIsolation:
    def test_one_raising_variant_keeps_the_others(self):
        row = SweepEngine(eval_cache=EvalCache()).noise_row(
            _raise_on_opencv, _SweepModel(), _SweepDataset(),
            ["decoder", "precision"])
        decoder = row["noises"]["decoder"]
        assert decoder.n_failed == 1 and not decoder.all_failed
        survivors = [v for v in decoder.values if not np.isnan(v)]
        assert len(survivors) == 2            # pil + ffmpeg still measured
        assert not np.isnan(decoder.mean_delta)
        # The unaffected noise column is intact; the combined config stacks
        # the *worst* decoder variant (opencv) so it fails — as a recorded
        # NaN cell, not an aborted sweep.
        assert row["noises"]["precision"].errors == {}
        assert np.isnan(row["combined"])
        assert "segfault" in row["combined_error"]

    def test_every_variant_failing_yields_all_failed(self):
        def always(model, ds, cfg):
            raise ValueError("nothing works")

        result = SweepEngine(eval_cache=EvalCache()).sweep_noise(
            always, _SweepModel(), _SweepDataset(), "decoder", baseline=90.0)
        assert result.all_failed
        assert np.isnan(result.mean_delta)
        from repro.core import format_cell
        assert format_cell(result, multi=True) == "!"

    def test_partial_failure_renders_bang_suffix(self):
        result = SweepEngine(eval_cache=EvalCache()).sweep_noise(
            _raise_on_opencv, _SweepModel(), _SweepDataset(), "decoder",
            baseline=90.0)
        from repro.core import format_cell
        cell = format_cell(result, multi=True)
        assert cell.endswith("!") and cell != "!"

    def test_failing_combined_keeps_noise_columns(self):
        def no_combined(model, ds, cfg):
            if cfg.decoder != "dali" and cfg.precision != "fp32":
                raise RuntimeError("stacked config unsupported")
            return _metric(cfg)

        row = SweepEngine(eval_cache=EvalCache()).noise_row(
            no_combined, _SweepModel(), _SweepDataset(),
            ["decoder", "precision"])
        assert np.isnan(row["combined"])
        assert "stacked config unsupported" in row["combined_error"]
        assert row["noises"]["decoder"].errors == {}
        from repro.core import render_table
        text = render_table({"m": row}, ["decoder", "precision"], "ACC", "t")
        assert text.splitlines()[-1].rstrip().endswith("!")

    def test_worst_case_curve_survives_one_failure(self):
        # Raise only for the decoder-stage stacked config (opencv @ fp32);
        # the later precision point (opencv + int8) still evaluates, so one
        # failing point must not truncate the curve.
        def decoder_point_fails(model, ds, cfg):
            if cfg.decoder == "opencv" and cfg.precision == "fp32":
                raise RuntimeError("decoder backend segfault (simulated)")
            return _metric(cfg)

        curve = SweepEngine(eval_cache=EvalCache()).worst_case_curve(
            decoder_point_fails, _SweepModel(), _SweepDataset(),
            ["decoder", "precision"])
        deltas = dict(curve)
        assert np.isnan(deltas["decoder"])    # worst decoder variant raises
        assert not np.isnan(deltas["precision"])

    def test_thread_mode_isolation_matches_serial(self):
        serial = SweepEngine(eval_cache=EvalCache()).noise_row(
            _raise_on_opencv, _SweepModel(), _SweepDataset(), ["decoder"])
        threaded = SweepEngine(workers=4, eval_cache=EvalCache()).noise_row(
            _raise_on_opencv, _SweepModel(), _SweepDataset(), ["decoder"])
        assert serial["noises"]["decoder"].errors.keys() \
            == threaded["noises"]["decoder"].errors.keys()
        np.testing.assert_array_equal(serial["noises"]["decoder"].values,
                                      threaded["noises"]["decoder"].values)

    def test_baseline_failure_is_strict(self):
        def broken_baseline(model, ds, cfg):
            raise RuntimeError("cannot even decode cleanly")

        with pytest.raises(RuntimeError, match="cannot even decode"):
            SweepEngine(eval_cache=EvalCache()).noise_row(
                broken_baseline, _SweepModel(), _SweepDataset(), ["decoder"])


class TestCrashResume:
    """A killed process-mode sweep must resume to an identical table."""

    def _manifest(self):
        return run_manifest(task="cls", model="fake", seed=0,
                            noises=["decoder", "precision"], metric="ACC")

    def test_worker_crash_is_isolated_and_resumable(self, tmp_path,
                                                    monkeypatch):
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        store = RunStore(tmp_path)
        ledger = store.open_or_create(self._manifest(), run_id="crash")
        engine = SweepEngine(workers=2, eval_cache=EvalCache(),
                             mode="process", ledger=ledger,
                             model_key="fake")
        # The sweep survives a SIGKILLed worker: no exception, a row comes
        # back, and the cells that completed before the crash are on disk.
        row = engine.noise_row(_kill_worker_on_opencv, _SweepModel(),
                               _SweepDataset(), ["decoder", "precision"])
        assert row["trained"] == _metric(TRAIN_CONFIG)
        counts = ledger.counts()
        assert counts["ok"] >= 1              # at least the baseline landed
        assert counts["error"] >= 1           # the crash was recorded
        opencv_idx = 1                        # decoder variants: pil, opencv, ffmpeg
        assert opencv_idx in row["noises"]["decoder"].errors

        # Resume with a healthy evaluator (the "transient crash" cleared):
        # only the not-yet-complete cells re-execute, and the final table is
        # bit-identical to an uninterrupted serial run.
        before = store.open("crash").counts()
        resumed_engine = SweepEngine(eval_cache=EvalCache(),
                                     ledger=store.open("crash"),
                                     model_key="fake")
        calls = []

        def counting_safe(model, ds, cfg):
            calls.append(cfg)
            return _metric(cfg)

        resumed = resumed_engine.noise_row(counting_safe, _SweepModel(),
                                           _SweepDataset(),
                                           ["decoder", "precision"])
        total_cells = 7                       # baseline + 3 + 2 + combined
        assert len(calls) == total_cells - before["ok"]   # <= the remainder
        clean = SweepEngine(eval_cache=EvalCache()).noise_row(
            _safe_eval, _SweepModel(), _SweepDataset(),
            ["decoder", "precision"])
        assert resumed["trained"] == clean["trained"]
        assert resumed["combined"] == clean["combined"]
        for name in ("decoder", "precision"):
            assert (resumed["noises"][name].values
                    == clean["noises"][name].values)
            assert resumed["noises"][name].errors == {}

    def test_process_retry_budget_reruns_crashed_batch(self, tmp_path,
                                                       monkeypatch):
        """A transient crash is healed *within* one sweep when the retry
        budget allows a fresh pool generation."""
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        flag = tmp_path / "crashed-once"

        # Module-level so it pickles by reference into workers.
        global _crash_once_flag
        _crash_once_flag = str(flag)

        engine = SweepEngine(workers=2, eval_cache=EvalCache(),
                             mode="process", retries=1)
        result = engine.sweep_noise(_kill_worker_once, _SweepModel(),
                                    _SweepDataset(), "decoder")
        assert result.errors == {}
        assert result.values == [
            _metric(TRAIN_CONFIG.with_(decoder=d))
            for d in ("pil", "opencv", "ffmpeg")]


#: Path sentinel for _kill_worker_once (set per-test; workers inherit via fork).
_crash_once_flag = None


def _kill_worker_once(model, ds, cfg):
    if cfg.decoder == "opencv" and _crash_once_flag is not None:
        if not os.path.exists(_crash_once_flag):
            with open(_crash_once_flag, "w") as fh:
                fh.write("x")
            os.kill(os.getpid(), signal.SIGKILL)
    return _metric(cfg)
