"""Integration tests for the benchmark drivers (small, fast settings)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (CLS_NOISES, TRAIN_CONFIG, NoiseResult,
                        evaluate_classification, evaluate_detection,
                        evaluate_segmentation, noise_row, render_curve,
                        render_table, sweep_noise, train_classification_model,
                        train_detection_model, train_segmentation_model,
                        worst_case_curve)
from repro.data import (make_classification_dataset, make_detection_dataset,
                        make_segmentation_dataset)
from repro.detection import RetinaNetLite
from repro.segmentation import UNetLite


@pytest.fixture(scope="module")
def cls_setup():
    ds = make_classification_dataset(n=160, native_size=40, input_size=32,
                                     seed=0)
    train, val = ds.split(120)
    model = train_classification_model(
        "resnet18x0.5", train,
        nn.TrainConfig(epochs=15, batch_size=32, lr=0.08))
    return model, val


class TestNoiseResult:
    def test_delta_statistics(self):
        r = NoiseResult("resize", baseline=80.0, values=[78.0, 79.0, 75.0])
        assert r.mean_delta == pytest.approx(80 - np.mean([78, 79, 75]))
        assert r.max_delta == pytest.approx(5.0)

    def test_empty_result_nan(self):
        r = NoiseResult("color", baseline=80.0)
        assert np.isnan(r.mean_delta)


class TestClassificationBenchmark:
    def test_clean_accuracy_reasonable(self, cls_setup):
        model, val = cls_setup
        acc = evaluate_classification(model, val, TRAIN_CONFIG)
        assert acc > 40.0

    def test_sweep_decoder_has_three_variants(self, cls_setup):
        model, val = cls_setup
        res = sweep_noise(evaluate_classification, model, val, "decoder")
        assert len(res.values) == 3

    def test_noise_row_structure(self, cls_setup):
        model, val = cls_setup
        row = noise_row(evaluate_classification, model, val,
                        ["decoder", "precision"], include_combined=True)
        assert set(row["noises"]) == {"decoder", "precision"}
        assert isinstance(row["combined"], float)

    def test_skip_marks_none(self, cls_setup):
        model, val = cls_setup
        row = noise_row(evaluate_classification, model, val,
                        ["decoder", "ceil_mode"], skip={"ceil_mode"},
                        include_combined=False)
        assert row["noises"]["ceil_mode"] is None

    def test_worst_case_curve_monotone_config_growth(self, cls_setup):
        model, val = cls_setup
        curve = worst_case_curve(evaluate_classification, model, val,
                                 ["resize", "precision"])
        assert [n for n, _ in curve] == ["resize", "precision"]

    def test_render_table_contains_row(self, cls_setup):
        model, val = cls_setup
        row = noise_row(evaluate_classification, model, val, ["color"],
                        include_combined=False)
        text = render_table({"resnet18x0.5": row}, ["color"], "ACC", "t")
        assert "resnet18x0.5" in text

    def test_render_curve(self):
        text = render_curve([("resize", 2.0), ("int8", 1.0)], "ACC")
        assert "+resize" in text


class TestDetectionBenchmark:
    @pytest.fixture(scope="class")
    def det_setup(self):
        ds = make_detection_dataset(n=60, size=48, seed=0, max_objects=2)
        train, val = ds.split(44)
        model = RetinaNetLite(backbone="resnet-34", num_classes=3,
                              fpn_channels=12, seed=0)
        from repro.detection import DetTrainConfig
        train_detection_model(model, train,
                              DetTrainConfig(epochs=14, batch_size=8, lr=4e-3))
        return model, val

    def test_detector_trained_via_pipeline(self, det_setup):
        model, val = det_setup
        mAP = evaluate_detection(model, val, TRAIN_CONFIG)
        assert mAP > 3.0

    def test_proposal_noise_changes_map(self, det_setup):
        model, val = det_setup
        base = evaluate_detection(model, val, TRAIN_CONFIG)
        off = evaluate_detection(model, val,
                                 TRAIN_CONFIG.with_(aligned_offset=1.0))
        assert base != off

    def test_upsample_noise_evaluates(self, det_setup):
        model, val = det_setup
        noised = evaluate_detection(model, val,
                                    TRAIN_CONFIG.with_(upsample_mode="bilinear"))
        assert 0.0 <= noised <= 100.0


class TestSegmentationBenchmark:
    @pytest.fixture(scope="class")
    def seg_setup(self):
        ds = make_segmentation_dataset(n=32, size=32, seed=0)
        train, val = ds.split(24)
        model = UNetLite(num_classes=4, width=6, seed=0)
        from repro.segmentation import SegTrainConfig
        train_segmentation_model(model, train,
                                 SegTrainConfig(epochs=8, batch_size=8))
        return model, val

    def test_miou_reasonable(self, seg_setup):
        model, val = seg_setup
        miou = evaluate_segmentation(model, val, TRAIN_CONFIG)
        assert miou > 30.0

    def test_upsample_flip_changes_miou(self, seg_setup):
        model, val = seg_setup
        base = evaluate_segmentation(model, val, TRAIN_CONFIG)
        flip = evaluate_segmentation(model, val,
                                     TRAIN_CONFIG.with_(upsample_mode="bilinear"))
        assert base != flip

    def test_decoder_noise_smaller_than_upsample(self, seg_setup):
        """Paper Table 4: decode Δ ≈ 0, upsample Δ dominates for segmentation."""
        model, val = seg_setup
        base = evaluate_segmentation(model, val, TRAIN_CONFIG)
        dec = min(abs(base - evaluate_segmentation(
            model, val, TRAIN_CONFIG.with_(decoder=d)))
            for d in ("pil", "opencv", "ffmpeg"))
        ups = abs(base - evaluate_segmentation(
            model, val, TRAIN_CONFIG.with_(upsample_mode="bilinear")))
        assert dec <= ups + 1.0
