"""Tests for the mitigation module: mix training, augmentations, PGD, TENT."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import TRAIN_CONFIG, preprocess_dataset
from repro.data import make_classification_dataset
from repro.mitigation import (AUGMENTATIONS, adversarial_train,
                              cross_variant_matrix, evaluate_with_tent,
                              get_augmentation, pgd_attack, tent_adapt,
                              train_with_mix)
from repro.models import create_model
from repro.nn import Tensor


@pytest.fixture(scope="module")
def small_ds():
    return make_classification_dataset(n=120, native_size=40, input_size=32,
                                       seed=0)


@pytest.fixture(scope="module")
def trained_cnn(small_ds):
    from repro.core import train_classification_model
    return train_classification_model(
        "resnet18x0.5", small_ds,
        nn.TrainConfig(epochs=12, batch_size=32, lr=0.08))


class TestAugmentations:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.xb = self.rng.standard_normal((8, 3, 16, 16)) * 0.2

    @pytest.mark.parametrize("name", list(AUGMENTATIONS))
    def test_shape_preserved(self, name):
        out = get_augmentation(name)(self.xb, self.rng)
        assert out.shape == self.xb.shape

    @pytest.mark.parametrize("name", list(AUGMENTATIONS))
    def test_output_changed_and_bounded(self, name):
        out = get_augmentation(name)(self.xb.copy(), self.rng)
        assert not np.array_equal(out, self.xb)
        assert np.abs(out).max() < 10.0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_augmentation("randaugment")

    def test_apr_sp_preserves_mean_energy(self):
        out = get_augmentation("apr_sp")(self.xb.copy(), self.rng)
        assert abs(out.std() - self.xb.std()) < 0.5


class TestPGD:
    def test_attack_stays_in_ball(self, trained_cnn, small_ds):
        x = preprocess_dataset(small_ds.streams[:8], 32, TRAIN_CONFIG)
        y = small_ds.labels[:8]
        eps = 8 / 255
        adv = pgd_attack(trained_cnn, x, y, epsilon=eps, steps=3)
        assert np.abs(adv - x).max() <= eps + 1e-9

    def test_attack_reduces_accuracy(self, trained_cnn, small_ds):
        from repro.nn import evaluate_classifier
        x = preprocess_dataset(small_ds.streams, 32, TRAIN_CONFIG)
        y = small_ds.labels
        clean = evaluate_classifier(trained_cnn, x, y)
        adv = pgd_attack(trained_cnn, x, y, epsilon=12 / 255, steps=5)
        attacked = evaluate_classifier(trained_cnn, adv, y)
        assert attacked < clean

    def test_adversarial_training_improves_adv_accuracy(self, small_ds):
        from repro.nn import evaluate_classifier
        x = preprocess_dataset(small_ds.streams, 32, TRAIN_CONFIG)
        y = small_ds.labels
        model = create_model("resnet18x0.25", num_classes=10, seed=0)
        adversarial_train(model, x, y,
                          nn.TrainConfig(epochs=8, batch_size=32, lr=0.05),
                          epsilon=8 / 255, pgd_steps=2)
        adv = pgd_attack(model, x[:32], y[:32], epsilon=8 / 255, steps=3)
        fresh = create_model("resnet18x0.25", num_classes=10, seed=5)
        assert (evaluate_classifier(model, adv, y[:32])
                > evaluate_classifier(fresh, adv, y[:32]))


class TestTENT:
    def test_adapts_only_bn_affine(self, trained_cnn, small_ds):
        x = preprocess_dataset(small_ds.streams[:32], 32, TRAIN_CONFIG)
        before = trained_cnn.state_dict()
        adapted = tent_adapt(trained_cnn, x, steps=1, lr=1e-2)
        after_orig = trained_cnn.state_dict()
        for k in before:      # original untouched
            np.testing.assert_array_equal(before[k], after_orig[k])
        # adapted copy moved its BN affine params
        diff = [k for k in before
                if not np.allclose(before[k], adapted.state_dict()[k])]
        assert diff
        assert all(("weight" in k or "bias" in k or "running" in k)
                   for k in diff)

    def test_model_without_bn_returned_unchanged(self, small_ds):
        vit = create_model("vit-tiny", num_classes=10, seed=0)
        x = preprocess_dataset(small_ds.streams[:16], 32, TRAIN_CONFIG)
        assert tent_adapt(vit, x) is vit

    def test_evaluate_with_tent_runs(self, trained_cnn, small_ds):
        x = preprocess_dataset(small_ds.streams[:64], 32, TRAIN_CONFIG)
        acc = evaluate_with_tent(trained_cnn, x, small_ds.labels[:64])
        assert 0.0 <= acc <= 100.0


class TestMixTraining:
    def test_mix_reduces_cross_variant_std(self):
        """Paper Tables 7/8: mix training shrinks across-variant std."""
        ds = make_classification_dataset(n=200, native_size=40, input_size=32,
                                         seed=0)
        resizes = ["pillow-bilinear", "pillow-nearest", "cv-bilinear",
                   "cv-nearest"]
        fixed = train_with_mix(
            "resnet18x0.25", ds, resizes=None,
            cfg=nn.TrainConfig(epochs=30, batch_size=32, lr=0.1))
        mixed = train_with_mix(
            "resnet18x0.25", ds, resizes=resizes,
            cfg=nn.TrainConfig(epochs=30, batch_size=32, lr=0.1))
        table = cross_variant_matrix({"fixed": fixed, "mix": mixed},
                                     ds, resizes, axis="resize")
        assert table["mix"]["std"] < table["fixed"]["std"]
        assert table["mix"]["mean"] > 50.0      # no clean-accuracy collapse

    def test_cross_variant_matrix_structure(self, trained_cnn, small_ds):
        table = cross_variant_matrix({"m": trained_cnn}, small_ds,
                                     ["pil", "dali"], axis="decoder")
        assert set(table["m"]["accs"]) == {"pil", "dali"}


class TestMixColorAxis:
    """The color-pipeline extension of Algorithm 1 (paper future work)."""

    def test_color_pool_trains_and_flattens(self):
        from repro.core import TRAIN_CONFIG, preprocess_dataset
        from repro.data import make_classification_dataset
        from repro.nn import TrainConfig, evaluate_classifier

        ds = make_classification_dataset(n=60, native_size=48, input_size=24,
                                         seed=3)
        cfg = TrainConfig(epochs=4, batch_size=16, lr=0.08)
        mixed = train_with_mix("mcunet-293kb", ds,
                               colors=[None, "nv12-integer", "yuv444-float"],
                               cfg=cfg, seed=0)
        # The mixed model evaluates under both direct RGB and NV12 inputs.
        for color in (None, "nv12-integer"):
            x = preprocess_dataset(ds.streams, ds.input_size,
                                   TRAIN_CONFIG.with_(color=color))
            acc = evaluate_classifier(mixed, x, ds.labels)
            assert 0.0 <= acc <= 100.0

    def test_cross_variant_matrix_color_axis(self):
        from repro.data import make_classification_dataset
        from repro.models import create_model

        ds = make_classification_dataset(n=24, native_size=48, input_size=24,
                                         seed=1)
        model = create_model("mcunet-293kb", num_classes=ds.num_classes)
        table = cross_variant_matrix({"m": model}, ds,
                                     [None, "nv12-integer"], axis="color")
        assert set(table["m"]["accs"]) == {None, "nv12-integer"}

    def test_unknown_axis_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ValueError, match="axis"):
            cross_variant_matrix({}, None, [], axis="gamma")
