"""Tests for the JPEG codec and its four decoder personas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image import jpeg
from repro.image.jpeg import (DECODER_LIBRARIES, JpegBitstream, decode,
                              decode_with, encode, quality_tables,
                              zigzag_order)


def smooth_image(h=32, w=32, seed=0):
    """A natural-ish smooth test image (hard edges stress the codec less)."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    base = 128 + 60 * np.sin(xx / 7.0) * np.cos(yy / 9.0)
    img = np.stack([base, np.roll(base, 3, axis=0), 255 - base], axis=-1)
    img += rng.normal(0, 4, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


class TestTablesAndZigzag:
    def test_quality_tables_monotone(self):
        l50, _ = quality_tables(50)
        l90, _ = quality_tables(90)
        l10, _ = quality_tables(10)
        assert (l90 <= l50).all() and (l50 <= l10).all()

    def test_quality_100_near_lossless_table(self):
        l100, c100 = quality_tables(100)
        assert l100.max() <= 2 and c100.max() <= 2

    def test_quality_clipped(self):
        assert (quality_tables(0)[0] == quality_tables(1)[0]).all()
        assert (quality_tables(101)[0] == quality_tables(100)[0]).all()

    def test_zigzag_is_permutation(self):
        zz = zigzag_order()
        assert sorted(zz.tolist()) == list(range(64))

    def test_zigzag_start_sequence(self):
        # T.81 zig-zag starts 0, 1, 8, 16, 9, 2, ...
        np.testing.assert_array_equal(zigzag_order()[:6], [0, 1, 8, 16, 9, 2])


class TestMagnitudeCoding:
    @given(st.integers(-2047, 2047))
    @settings(max_examples=200, deadline=None)
    def test_property_signed_magnitude_roundtrip(self, v):
        bits, size = jpeg._encode_magnitude(v)
        assert jpeg._decode_magnitude(bits, size) == v

    def test_zero_has_zero_size(self):
        assert jpeg._encode_magnitude(0) == (0, 0)


class TestCodecRoundtrip:
    def test_high_quality_roundtrip_small_error(self):
        img = smooth_image()
        out = decode(encode(img, quality=95, subsample=False))
        err = np.abs(out.astype(int) - img.astype(int))
        assert err.mean() < 3.0

    def test_shape_and_dtype_preserved(self):
        img = smooth_image(24, 40)
        out = decode(encode(img, quality=80))
        assert out.shape == img.shape and out.dtype == np.uint8

    def test_non_multiple_of_8_dims(self):
        img = smooth_image(19, 27)
        out = decode(encode(img, quality=90))
        assert out.shape == (19, 27, 3)

    def test_lower_quality_more_error(self):
        img = smooth_image()
        e90 = np.abs(decode(encode(img, 90)).astype(int) - img.astype(int)).mean()
        e20 = np.abs(decode(encode(img, 20)).astype(int) - img.astype(int)).mean()
        assert e20 > e90

    def test_subsample_introduces_chroma_error(self):
        img = smooth_image()
        e444 = np.abs(decode(encode(img, 95, subsample=False)).astype(int) - img).mean()
        e420 = np.abs(decode(encode(img, 95, subsample=True)).astype(int) - img).mean()
        assert e420 >= e444

    def test_bitstream_serialisation_roundtrip(self):
        img = smooth_image(16, 16)
        stream = encode(img, quality=85)
        restored = JpegBitstream.frombytes(stream.tobytes())
        np.testing.assert_array_equal(decode(stream), decode(restored))

    def test_frombytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            JpegBitstream.frombytes(b"JFIF" + b"\x00" * 32)

    def test_encode_rejects_float(self):
        with pytest.raises(TypeError):
            encode(np.zeros((8, 8, 3)))

    def test_compression_actually_compresses(self):
        img = smooth_image(64, 64)
        stream = encode(img, quality=50)
        assert len(stream.tobytes()) < img.nbytes / 2

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_property_roundtrip_bounded(self, seed):
        img = smooth_image(16, 16, seed)
        out = decode(encode(img, quality=90))
        assert np.abs(out.astype(int) - img.astype(int)).max() < 64


class TestDecoderPersonas:
    """The decoder noise itself: same bitstream, different RGB tensors."""

    def setup_method(self):
        self.img = smooth_image(32, 32)
        self.stream = encode(self.img, quality=90)

    def test_four_libraries_registered(self):
        assert set(DECODER_LIBRARIES) == {"pil", "opencv", "ffmpeg", "dali"}

    def test_personas_disagree_on_same_bitstream(self):
        outs = {lib: decode_with(self.stream, lib) for lib in DECODER_LIBRARIES}
        libs = list(outs)
        pairs_differing = sum(
            not np.array_equal(outs[a], outs[b])
            for i, a in enumerate(libs) for b in libs[i + 1:])
        assert pairs_differing >= 4

    def test_persona_disagreement_is_small_but_real(self):
        ref = decode_with(self.stream, "dali").astype(int)
        for lib in ("pil", "opencv", "ffmpeg"):
            diff = np.abs(decode_with(self.stream, lib).astype(int) - ref)
            # iDCT disagreement is ±LSB; chroma-upsampling disagreement is a
            # few counts at colour edges.  Never structural change.
            assert diff.max() <= 32
            assert diff.mean() < 3.0

    def test_chroma_upsampling_is_the_dominant_decoder_axis(self):
        same_chroma = np.abs(decode_with(self.stream, "opencv").astype(int)
                             - decode_with(self.stream, "dali").astype(int))
        diff_chroma = np.abs(decode_with(self.stream, "pil").astype(int)
                             - decode_with(self.stream, "dali").astype(int))
        assert diff_chroma.mean() > same_chroma.mean()

    def test_unknown_chroma_mode_raises(self):
        with pytest.raises(ValueError):
            decode(self.stream, chroma_upsample="bicubic")

    def test_each_persona_deterministic(self):
        for lib in DECODER_LIBRARIES:
            a = decode_with(self.stream, lib)
            b = decode_with(self.stream, lib)
            np.testing.assert_array_equal(a, b)

    def test_all_personas_close_to_source(self):
        for lib in DECODER_LIBRARIES:
            out = decode_with(self.stream, lib)
            assert np.abs(out.astype(int) - self.img.astype(int)).mean() < 6.0
