"""Property-based tests on core numeric invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn.functional as F
from repro.detection.bbox import decode_deltas, encode_deltas
from repro.image.jpeg import _HUFF
from repro.image.resize import RESIZE_METHODS, resize_matrix
from repro.nn.quant import compute_qparams, quantize


class TestIm2ColAdjoint:
    @given(st.integers(0, 10 ** 6), st.integers(1, 2), st.integers(5, 9),
           st.sampled_from([1, 2]), st.sampled_from([0, 1]))
    @settings(max_examples=30, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, seed, c, size, stride, pad):
        """<im2col(x), g> == <x, col2im(g)> — exactness of the conv backward."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, c, size, size))
        cols, meta = F.im2col(x, 3, 3, stride, pad)
        g = rng.standard_normal(cols.shape)
        lhs = float((cols * g).sum())
        rhs = float((x * F.col2im(g, meta)).sum())
        assert abs(lhs - rhs) < 1e-9


class TestInterpolationPartitionOfUnity:
    @given(st.integers(2, 40), st.integers(2, 40),
           st.sampled_from(["nearest", "bilinear"]))
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, n_in, n_out, mode):
        m = F.interp_matrix(n_in, n_out, mode)
        np.testing.assert_allclose(m.sum(axis=1), 1.0, atol=1e-12)

    @given(st.integers(2, 30), st.integers(2, 30),
           st.sampled_from(RESIZE_METHODS))
    @settings(max_examples=60, deadline=None)
    def test_resize_matrices_partition_unity(self, n_in, n_out, method):
        m = resize_matrix(n_in, n_out, method)
        np.testing.assert_allclose(m.sum(axis=1), 1.0, atol=1e-9)


class TestBoxCoding:
    @given(st.integers(0, 10 ** 6), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_offset(self, seed, offset):
        rng = np.random.default_rng(seed)
        anchors = np.sort(rng.uniform(0, 50, (8, 2, 2)), axis=2)
        anchors = anchors.transpose(0, 2, 1).reshape(8, 4)
        anchors[:, 2:] += 1.0          # ensure positive extent
        targets = anchors + rng.uniform(-2, 2, (8, 4))
        targets[:, 2:] = np.maximum(targets[:, 2:], targets[:, :2] + 0.5)
        deltas = encode_deltas(anchors, targets, offset)
        back = decode_deltas(anchors, deltas, offset)
        np.testing.assert_allclose(back, targets, atol=1e-8)

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_offset_flip_error_bounded_by_one_pixel_scalewise(self, seed):
        rng = np.random.default_rng(seed)
        anchors = np.array([[10.0, 10.0, 30.0, 30.0]])
        target = np.array([[12.0, 11.0, 28.0, 27.0]])
        deltas = encode_deltas(anchors, target, 0.0)
        wrong = decode_deltas(anchors, deltas, 1.0)
        # Offset mismatch moves each coordinate by O(1) pixel, never more
        # than a few, for same-scale boxes.
        assert np.abs(wrong - target).max() < 3.0


class TestHuffmanTables:
    def test_all_tables_prefix_free(self):
        for (kind, tid), (encode_map, _) in _HUFF.items():
            codes = [format(code, f"0{length}b")
                     for code, length in encode_map.values()]
            for i, a in enumerate(codes):
                for b in codes[i + 1:]:
                    assert not a.startswith(b) and not b.startswith(a), \
                        (kind, tid)

    def test_encode_decode_maps_inverse(self):
        for (kind, tid), (encode_map, decode_map) in _HUFF.items():
            for value, key in encode_map.items():
                assert decode_map[key] == value


class TestQuantizerMonotonicity:
    @given(st.lists(st.floats(-10, 10), min_size=4, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_quantize_is_monotone(self, vals):
        x = np.sort(np.array(vals))
        qp = compute_qparams(x.min(), x.max())
        q = quantize(x, qp)
        assert (np.diff(q) >= 0).all()


class TestSTFTProperties:
    """The audio substrate behind Table 10's STFT SysNoise."""

    @given(st.integers(0, 10 ** 6), st.integers(256, 1024))
    @settings(max_examples=30, deadline=None)
    def test_magnitude_scales_linearly(self, seed, n):
        from repro.audio.stft import stft_reference
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        np.testing.assert_allclose(stft_reference(3.0 * x),
                                   3.0 * stft_reference(x), rtol=1e-9)

    @given(st.integers(0, 10 ** 6), st.integers(256, 1024))
    @settings(max_examples=30, deadline=None)
    def test_variants_agree_within_window_mismatch(self, seed, n):
        """Periodic vs symmetric Hann + fp32 math: small relative deviation,
        never zero — the exact profile of deployment STFT noise."""
        from repro.audio.stft import stft_deployed, stft_reference
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        ref = stft_reference(x)
        dep = stft_deployed(x)
        dev = np.abs(ref - dep).max() / (ref.max() + 1e-12)
        assert 0 < dev < 0.05

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_energy_bounded_by_parseval(self, seed):
        """Windowed-frame spectral energy never exceeds the Parseval bound."""
        from repro.audio.stft import stft_reference
        rng = np.random.default_rng(seed)
        x = rng.normal(size=512)
        n_fft, hop = 128, 64
        spec = stft_reference(x, n_fft=n_fft, hop=hop)
        # rfft halves the spectrum: double all bins except DC (and Nyquist
        # for even n_fft) to recover total energy per frame.
        weights = np.full(spec.shape[-1], 2.0)
        weights[0] = 1.0
        weights[-1] = 1.0
        spectral = (spec ** 2 * weights).sum(axis=-1) / n_fft
        window = 0.5 - 0.5 * np.cos(2 * np.pi * np.arange(n_fft) / n_fft)
        frames = np.lib.stride_tricks.sliding_window_view(x, n_fft)[::hop]
        time_energy = ((frames * window) ** 2).sum(axis=-1)
        np.testing.assert_allclose(spectral, time_energy[:len(spectral)],
                                   rtol=1e-9)
