"""Property test: the run ledger under two interleaved writers.

The shared-run protocol rests on one invariant: however two writers'
appends and torn final writes interleave, a fresh replay of the file sees
*exactly* the union of the complete (newline-terminated, fsync'd) entries —
in file order, with every torn fragment quarantined as a corrupt line
rather than fused onto a neighbour's entry.

Hypothesis drives the schedule: which writer acts, whether the act is a
completed append or a kill-mid-write (a raw newline-less fragment landing
at EOF, exactly what ``_append_bytes`` leaves when a process dies between
``os.write`` calls).  Torn fragments may be healed by the next live append
or still be dangling at EOF when the replay happens; both must be
invisible to the replayed index.
"""

import os
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core import RunLedger

#: (writer, action) schedule: each step is one writer completing an append
#: or dying mid-write, leaving a torn fragment at EOF.
SCHEDULES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1),
              st.sampled_from(["append", "tear"])),
    min_size=1, max_size=20)


def _tear(run_dir: Path, writer: int, seq: int) -> None:
    """Simulate ``writer`` killed mid-append: a raw newline-less fragment.

    The fragment is an unterminated JSON string, so it stays unparseable
    even when a later tear fuses onto it (no live writer heals between two
    consecutive kills).
    """
    frag = f'{{"kind":"eval","torn_by":"w{writer}","seq":"{seq}'.encode()
    fd = os.open(run_dir / "ledger.jsonl",
                 os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, frag)
        os.fsync(fd)
    finally:
        os.close(fd)


@settings(max_examples=30, deadline=None)
@given(schedule=SCHEDULES)
def test_replay_is_union_of_complete_entries(schedule):
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        writers = [RunLedger.create(run_dir, {"model": "m"}),
                   RunLedger(run_dir)]
        complete = []                          # (cfg, value) in file order
        tears = 0
        for seq, (writer, action) in enumerate(schedule):
            if action == "append":
                cfg = f"cfg-{seq}"
                writers[writer].record_eval(
                    "m", "ds", cfg, status="ok", value=float(seq),
                    label=f"w{writer}")
                complete.append((cfg, float(seq)))
            else:
                _tear(run_dir, writer, seq)
                tears += 1

        replay = RunLedger(run_dir)
        got = [(e["cfg"], e["value"]) for e in replay.entries()
               if e.get("kind") == "eval" and "torn_by" not in e]
        # Exactly the union of complete entries, in file order — nothing
        # lost, nothing duplicated, no fragment promoted to an entry.
        assert got == complete
        assert all("torn_by" not in e for e in replay.entries())
        for cfg, value in complete:
            entry = replay.lookup("m", "ds", cfg)
            assert entry is not None and entry["value"] == value
        # Every torn fragment is accounted for as corruption (consecutive
        # fragments may fuse into one corrupt line; a trailing fragment is
        # pending, not yet a line) — never silently dropped.
        if tears:
            assert replay.counts()["corrupt"] >= 1
        else:
            assert replay.counts()["corrupt"] == 0

        # The live writers converge to the same view via refresh().
        for w in writers:
            w.refresh()
            live = [(e["cfg"], e["value"]) for e in w.entries()
                    if e.get("kind") == "eval" and "torn_by" not in e]
            assert live == complete
