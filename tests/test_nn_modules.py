"""Tests for Module registry, layers, optimisers, and the training loop."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Tensor


def make_mlp(rng=None):
    rng = rng or np.random.default_rng(0)
    return nn.Sequential(
        nn.Linear(4, 16, rng=rng), nn.ReLU(),
        nn.Linear(16, 3, rng=rng))


class TestModuleRegistry:
    def test_parameters_discovered_recursively(self):
        m = make_mlp()
        params = list(m.parameters())
        assert len(params) == 4  # two weights + two biases

    def test_named_parameters_paths(self):
        m = make_mlp()
        names = dict(m.named_parameters())
        assert "layers" not in names  # list isn't auto-registered by name
        assert any(k.endswith(".weight") for k in names)

    def test_num_parameters(self):
        m = nn.Linear(4, 3)
        assert m.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        m = make_mlp()
        m.eval()
        assert all(not sub.training for sub in m.modules())
        m.train()
        assert all(sub.training for sub in m.modules())

    def test_state_dict_roundtrip(self):
        m1, m2 = make_mlp(np.random.default_rng(1)), make_mlp(np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).standard_normal((2, 4)))
        assert not np.allclose(m1(x).data, m2(x).data)
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(3)
        bn.running_mean += 5.0
        state = bn.state_dict()
        assert "running_mean" in state
        np.testing.assert_allclose(state["running_mean"], 5.0)

    def test_zero_grad_clears(self):
        m = nn.Linear(2, 2)
        out = m(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None


class TestLayers:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_conv_layer_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=self.rng)
        out = conv(Tensor(self.rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_maxpool_layer_ceil_flag_flippable(self):
        pool = nn.MaxPool2d(3, 2)
        x = Tensor(self.rng.standard_normal((1, 1, 6, 6)))
        assert pool(x).shape == (1, 1, 2, 2)
        pool.ceil_mode = True      # the SysNoise deployment flip
        assert pool(x).shape == (1, 1, 3, 3)

    def test_upsample_layer_mode_flippable(self):
        up = nn.Upsample(scale_factor=2, mode="nearest")
        x = Tensor(self.rng.standard_normal((1, 2, 4, 4)))
        near = up(x).data
        up.mode = "bilinear"       # the SysNoise deployment flip
        bil = up(x).data
        assert near.shape == bil.shape == (1, 2, 8, 8)
        assert not np.allclose(near, bil)

    def test_batchnorm_inference_is_deterministic(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(self.rng.standard_normal((4, 2, 3, 3)))
        bn(x)  # updates running stats
        bn.eval()
        y1, y2 = bn(x).data, bn(x).data
        np.testing.assert_array_equal(y1, y2)

    def test_layernorm_shape(self):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(self.rng.standard_normal((2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_embedding_layer(self):
        emb = nn.Embedding(10, 4, rng=self.rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.ones((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_dropout_respects_mode(self):
        d = nn.Dropout(0.5)
        x = Tensor(np.ones((50, 50)))
        assert (d(x).data == 0).any()
        d.eval()
        np.testing.assert_array_equal(d(x).data, 1.0)

    def test_identity_and_sigmoid(self):
        x = Tensor(np.zeros((2, 2)))
        np.testing.assert_array_equal(nn.Identity()(x).data, 0.0)
        np.testing.assert_allclose(nn.Sigmoid()(x).data, 0.5)


class TestOptimizers:
    def _quadratic_min(self, opt_cls, **kw):
        p = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = opt_cls([p], **kw)
        for _ in range(200):
            loss = (p * p).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return p.data

    def test_sgd_converges(self):
        final = self._quadratic_min(nn.SGD, lr=0.1, momentum=0.9)
        np.testing.assert_allclose(final, 0.0, atol=1e-4)

    def test_adam_converges(self):
        final = self._quadratic_min(nn.Adam, lr=0.1)
        np.testing.assert_allclose(final, 0.0, atol=1e-3)

    def test_weight_decay_shrinks_params(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = nn.SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        # zero loss gradient: decay alone should shrink the weight
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_cosine_schedule_decays_to_min(self):
        p = Tensor(np.ones(1), requires_grad=True)
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineSchedule(opt, total_steps=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-8)

    def test_cosine_warmup_ramps(self):
        opt = nn.SGD([Tensor(np.ones(1), requires_grad=True)], lr=1.0)
        sched = nn.CosineSchedule(opt, total_steps=100, warmup_steps=10)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_step_schedule(self):
        opt = nn.SGD([Tensor(np.ones(1), requires_grad=True)], lr=1.0)
        sched = nn.StepSchedule(opt, milestones=[2], gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == pytest.approx(0.1)


class TestTrainingLoop:
    def test_learns_linearly_separable(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = make_mlp(rng)
        cfg = nn.TrainConfig(epochs=15, batch_size=32, lr=0.1, seed=0)
        nn.train_classifier(model, x, y, cfg)
        acc = nn.evaluate_classifier(model, x, y)
        assert acc > 95.0
        # loss history is recorded and decreasing overall
        assert cfg.history[-1] < cfg.history[0]

    def test_transform_hook_called(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 4))
        y = (x[:, 0] > 0).astype(int)
        calls = []

        def hook(xb, rng):
            calls.append(len(xb))
            return xb

        nn.train_classifier(make_mlp(), x, y,
                            nn.TrainConfig(epochs=1, batch_size=16), transform=hook)
        assert sum(calls) == 32

    def test_evaluate_returns_percent(self):
        model = make_mlp()
        x = np.zeros((10, 4))
        y = np.zeros(10, dtype=int)
        acc = nn.evaluate_classifier(model, x, y)
        assert 0.0 <= acc <= 100.0
