"""Export fidelity tests: graph execution must match the nn runtime exactly.

The exporter is only trustworthy if, for every supported architecture, the
reference backend reproduces the source model bit-for-bit (up to float64
associativity).  These tests sweep the CNN zoo and the primitive layers.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.backend import (ExportError, ReferenceExecutor, export_module,
                           supported_module_types)
from repro.models import create_model
from repro.nn import Tensor, no_grad

RNG = np.random.default_rng(7)
X = RNG.normal(size=(3, 3, 32, 32))

CNN_ZOO = ["resnet18x0.25", "resnet-34", "resnet-50", "mobilenetv2-0.5",
           "mobilenetv2-1", "regnetx-400m", "regnetx-1.6g",
           "efficientnet-b0", "efficientnet-b2", "mcunet-293kb"]


def nn_forward(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


@pytest.mark.parametrize("name", CNN_ZOO)
def test_zoo_export_matches_runtime(name):
    model = create_model(name, num_classes=5, seed=3)
    graph = export_module(model, name)
    graph.validate()
    expected = nn_forward(model, X)
    got = ReferenceExecutor().run(graph, X)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)


def test_export_copies_weights():
    """Mutating the source model after export must not change the graph."""
    model = create_model("resnet18x0.25", num_classes=5, seed=0)
    graph = export_module(model)
    before = ReferenceExecutor().run(graph, X)
    for p in model.parameters():
        p.data += 1.0
    after = ReferenceExecutor().run(graph, X)
    np.testing.assert_array_equal(before, after)


def test_export_is_deterministic():
    model = create_model("mobilenetv2-0.5", num_classes=5, seed=0)
    g1 = export_module(model)
    g2 = export_module(model)
    assert [n.op for n in g1.nodes] == [n.op for n in g2.nodes]
    assert [n.name for n in g1.nodes] == [n.name for n in g2.nodes]


def test_node_names_follow_module_paths():
    model = create_model("resnet18x0.25", num_classes=5, seed=0)
    graph = export_module(model, "m")
    names = [n.name for n in graph.nodes]
    assert "m.stem.0" in names          # conv inside the stem Sequential
    assert "m.pool" in names
    assert any(name.endswith(".add") for name in names)   # residual adds


def test_sequential_of_primitives():
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(3, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.MaxPool2d(2, 2),
        nn.Flatten(),
        nn.Linear(4 * 16 * 16, 6, rng=rng))
    graph = export_module(model)
    np.testing.assert_allclose(ReferenceExecutor().run(graph, X),
                               nn_forward(model, X), rtol=1e-9, atol=1e-10)


def test_gelu_and_sigmoid_layers():
    rng = np.random.default_rng(1)
    model = nn.Sequential(nn.Conv2d(3, 2, 1, rng=rng), nn.GELU(),
                          nn.Conv2d(2, 2, 1, rng=rng), nn.Sigmoid(),
                          nn.Flatten())
    graph = export_module(model)
    np.testing.assert_allclose(ReferenceExecutor().run(graph, X),
                               nn_forward(model, X), rtol=1e-9, atol=1e-10)


def test_upsample_with_scale_factor():
    model = nn.Sequential(nn.Upsample(scale_factor=2, mode="nearest"))
    graph = export_module(model)
    out = ReferenceExecutor().run(graph, X)
    assert out.shape == (3, 3, 64, 64)


def test_upsample_with_size_rejected():
    model = nn.Sequential(nn.Upsample(size=(8, 8)))
    with pytest.raises(ExportError, match="scale_factor"):
        export_module(model)


def test_unsupported_module_raises_with_guidance():
    class Exotic(nn.Module):
        def forward(self, x):
            return x

    with pytest.raises(ExportError, match="Exotic"):
        export_module(Exotic())


@pytest.mark.parametrize("name", ["vit-tiny", "vit-base", "swin-tiny",
                                  "swin-base"])
def test_transformer_export_matches_runtime(name):
    model = create_model(name, num_classes=5, seed=3)
    graph = export_module(model, name)
    graph.validate()
    expected = nn_forward(model, X)
    got = ReferenceExecutor().run(graph, X)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)


def test_attention_lowering_exposes_softmax_and_matmul():
    graph = export_module(create_model("vit-tiny", num_classes=5), "vit")
    hist = graph.op_histogram()
    assert hist.get("softmax", 0) >= 2        # one per block
    assert hist.get("matmul", 0) >= 4         # scores + context per block
    assert hist.get("layernorm", 0) >= 5


def test_swin_shifted_blocks_emit_rolls():
    graph = export_module(create_model("swin-base", num_classes=5), "swin")
    names = [n.name for n in graph.nodes]
    assert any(".fwd.r.roll" in n for n in names)     # cyclic shift present
    assert any(".bwd.c.roll" in n for n in names)


def test_standalone_swin_block_rejected():
    from repro.models.vit import SwinBlock
    rng = np.random.default_rng(0)
    block = SwinBlock(8, 2, 4, 0, 2.0, rng)
    with pytest.raises(ExportError, match="static spatial dims"):
        export_module(block)


def test_supported_module_types_lists_core_layers():
    names = supported_module_types()
    for expected in ("Conv2d", "BatchNorm2d", "BasicBlock", "InvertedResidual",
                     "MBConvSE"):
        assert expected in names
