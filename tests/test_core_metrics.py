"""Property tests for the mergeable metric accumulators (hypothesis).

These are the algebraic contracts the streaming/sharded evaluation paths —
and the serving layer's partial-result streams — rest on:

* **merge associativity**: shard partials merge to the same state no matter
  how the merge tree is shaped (process pools complete out of order);
* **empty identity**: a fresh accumulator is the merge unit, so zero-length
  shards and restored-from-nothing resumes are no-ops;
* **state round-trip bit-exactness**: ``state()`` → JSON → ``load_state``
  reproduces the exact state *and* the exact ``value()`` bits, which is why
  ledger-resumed tables equal uninterrupted ones;
* **mismatch rejection**: partials of different kinds or shapes must raise,
  never sum into a plausible-looking wrong metric.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (Accuracy, MeanAP, MeanIoU, MeanScores,
                                accumulator_from_state)

# ---------------------------------------------------------------------------
# Strategies: one "observation chunk" per accumulator kind
# ---------------------------------------------------------------------------

counts = st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                  max_size=6)

scores = st.dictionaries(st.integers(0, 40),
                         st.floats(-1e6, 1e6, allow_nan=False), max_size=6)


def accuracy_from(chunks):
    acc = Accuracy()
    for correct, total in chunks:
        acc.add(correct, min(correct, total) + total)  # correct <= total
    return acc


def miou_from(seed: int, num_classes: int) -> MeanIoU:
    acc = MeanIoU(num_classes)
    rng = np.random.default_rng(seed)
    acc.cm += rng.integers(0, 20, size=acc.cm.shape)
    return acc


def map_from(seed: int, num_classes: int = 3) -> MeanAP:
    acc = MeanAP(num_classes)
    rng = np.random.default_rng(seed)
    for index in rng.choice(20, size=rng.integers(0, 5), replace=False):
        dets = rng.random((int(rng.integers(0, 4)), 6))
        gt = rng.random((int(rng.integers(0, 3)), 5))
        gt[:, 4] = rng.integers(0, num_classes, size=len(gt))
        dets[:, 5] = rng.integers(0, num_classes, size=len(dets))
        acc.update(int(index), dets, gt)
    return acc


def scores_from(d) -> MeanScores:
    acc = MeanScores()
    for index, score in d.items():
        acc.update(index, score)
    return acc


def clone(acc):
    """An independent copy via the public state round-trip."""
    return accumulator_from_state(acc.state())


def round_trip(acc):
    """state → the ledger's actual JSON encoding → a rebuilt accumulator."""
    encoded = json.dumps(acc.state(), default=repr, separators=(",", ":"))
    return accumulator_from_state(json.loads(encoded))


def values_equal(a: float, b: float) -> bool:
    return (a == b) or (np.isnan(a) and np.isnan(b))


# ---------------------------------------------------------------------------
# Properties, all four kinds
# ---------------------------------------------------------------------------

class TestMergeAssociativity:
    @given(counts, counts, counts)
    @settings(max_examples=40, deadline=None)
    def test_accuracy(self, ca, cb, cc):
        a, b, c = (accuracy_from(x) for x in (ca, cb, cc))
        left = clone(a).merge(clone(b)).merge(clone(c))
        right = clone(a).merge(clone(b).merge(clone(c)))
        assert left.state() == right.state()
        assert values_equal(left.value(), right.value())

    @given(st.integers(0, 10 ** 6), st.integers(0, 10 ** 6),
           st.integers(0, 10 ** 6), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_miou(self, sa, sb, sc, ncls):
        a, b, c = (miou_from(s, ncls) for s in (sa, sb, sc))
        left = clone(a).merge(clone(b)).merge(clone(c))
        right = clone(a).merge(clone(b).merge(clone(c)))
        assert left.state() == right.state()
        assert values_equal(left.value(), right.value())

    @given(st.integers(0, 10 ** 6), st.integers(0, 10 ** 6),
           st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_map(self, sa, sb, sc):
        a, b, c = (map_from(s) for s in (sa, sb, sc))
        left = clone(a).merge(clone(b)).merge(clone(c))
        right = clone(a).merge(clone(b).merge(clone(c)))
        assert left.state() == right.state()
        assert values_equal(left.value(), right.value())

    @given(scores, scores, scores)
    @settings(max_examples=40, deadline=None)
    def test_mean_scores(self, da, db, dc):
        a, b, c = (scores_from(d) for d in (da, db, dc))
        left = clone(a).merge(clone(b)).merge(clone(c))
        right = clone(a).merge(clone(b).merge(clone(c)))
        assert left.state() == right.state()
        assert values_equal(left.value(), right.value())


class TestEmptyIdentity:
    @given(counts)
    @settings(max_examples=30, deadline=None)
    def test_accuracy(self, chunks):
        acc = accuracy_from(chunks)
        assert Accuracy().merge(clone(acc)).state() == acc.state()
        assert clone(acc).merge(Accuracy()).state() == acc.state()

    @given(st.integers(0, 10 ** 6), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_miou(self, seed, ncls):
        acc = miou_from(seed, ncls)
        assert MeanIoU(ncls).merge(clone(acc)).state() == acc.state()
        assert clone(acc).merge(MeanIoU(ncls)).state() == acc.state()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_map(self, seed):
        acc = map_from(seed)
        assert MeanAP(3).merge(clone(acc)).state() == acc.state()
        assert clone(acc).merge(MeanAP(3)).state() == acc.state()

    @given(scores)
    @settings(max_examples=30, deadline=None)
    def test_mean_scores(self, d):
        acc = scores_from(d)
        assert MeanScores().merge(clone(acc)).state() == acc.state()
        assert clone(acc).merge(MeanScores()).state() == acc.state()


class TestStateRoundTrip:
    """state() → JSON text → load_state is bit-exact (ledger contract)."""

    @given(counts)
    @settings(max_examples=30, deadline=None)
    def test_accuracy(self, chunks):
        acc = accuracy_from(chunks)
        back = round_trip(acc)
        assert back.state() == acc.state()
        assert values_equal(back.value(), acc.value())

    @given(st.integers(0, 10 ** 6), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_miou(self, seed, ncls):
        acc = miou_from(seed, ncls)
        back = round_trip(acc)
        assert back.state() == acc.state()
        assert values_equal(back.value(), acc.value())

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_map(self, seed):
        acc = map_from(seed)
        back = round_trip(acc)
        assert back.state() == acc.state()
        assert values_equal(back.value(), acc.value())

    @given(scores)
    @settings(max_examples=30, deadline=None)
    def test_mean_scores(self, d):
        acc = scores_from(d)
        back = round_trip(acc)
        assert back.state() == acc.state()
        assert values_equal(back.value(), acc.value())

    def test_factory_rebuilds_every_kind(self):
        for acc in (accuracy_from([(3, 4)]), miou_from(0, 4), map_from(1),
                    scores_from({0: 1.5})):
            back = accumulator_from_state(acc.state())
            assert type(back) is type(acc)
            assert back.state() == acc.state()


class TestMismatchRejection:
    """Cross-kind / cross-shape merges raise instead of corrupting."""

    def test_cross_kind_merge_raises(self):
        kinds = [Accuracy(), MeanIoU(3), MeanAP(3), MeanScores()]
        for a in kinds:
            for b in kinds:
                if type(a) is type(b):
                    continue
                with pytest.raises(TypeError):
                    a.merge(b)

    def test_miou_class_count_mismatch(self):
        with pytest.raises(ValueError):
            MeanIoU(3).merge(MeanIoU(4))

    def test_map_class_count_mismatch(self):
        with pytest.raises(ValueError):
            MeanAP(3).merge(MeanAP(5))

    def test_load_state_wrong_kind(self):
        state = Accuracy().state()
        for acc in (MeanIoU(3), MeanAP(3), MeanScores()):
            with pytest.raises(ValueError):
                acc.load_state(state)

    def test_factory_unknown_kind(self):
        with pytest.raises(ValueError):
            accumulator_from_state({"kind": "f1"})
        with pytest.raises(ValueError):
            accumulator_from_state("not-a-dict")
