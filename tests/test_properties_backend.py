"""Property-based tests for the deployment backend (hypothesis).

Random-graph strategies exercise the pass pipeline and serialiser on shapes
no hand-written case would cover: arbitrary elementwise chains with skip
connections, identities, and dead branches.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (GraphBuilder, ReferenceExecutor,
                           dead_code_elimination, eliminate_identity,
                           fuse_conv_bn, load_graph, optimize, save_graph)
from repro.backend import ops

ELEMENTWISE = ["relu", "gelu", "sigmoid", "identity"]


@st.composite
def random_graphs(draw):
    """A random valid graph over (N, C, H, W) inputs.

    Mixes elementwise chains, skip-connection adds, identities, and a dead
    branch, so passes see realistic topology variety.
    """
    n_nodes = draw(st.integers(2, 12))
    b = GraphBuilder("random")
    values = ["x"]
    for i in range(n_nodes):
        kind = draw(st.sampled_from(["unary", "add", "dead"]))
        src = draw(st.sampled_from(values))
        if kind == "unary":
            op = draw(st.sampled_from(ELEMENTWISE))
            values.append(b.emit(op, [src], name=f"n{i}"))
        elif kind == "add":
            other = draw(st.sampled_from(values))
            values.append(b.emit("add", [src, other], name=f"n{i}"))
        else:                                    # dead: emitted, never used
            b.emit(draw(st.sampled_from(ELEMENTWISE)), [src], name=f"dead{i}")
    return b.finish(values[-1])


@st.composite
def conv_bn_graphs(draw):
    """conv → batchnorm (→ relu) with random shapes and statistics."""
    seed = draw(st.integers(0, 10 ** 6))
    rng = np.random.default_rng(seed)
    cin = draw(st.integers(1, 3))
    cout = draw(st.integers(1, 4))
    k = draw(st.sampled_from([1, 3]))
    with_bias = draw(st.booleans())
    with_relu = draw(st.booleans())
    b = GraphBuilder("convbn")
    w = b.add_initializer("w", rng.normal(size=(cout, cin, k, k)))
    ins = ["x", w]
    if with_bias:
        ins.append(b.add_initializer("b", rng.normal(size=cout)))
    conv = b.emit("conv2d", ins, name="conv",
                  attrs=dict(stride=1, padding=k // 2, dilation=1, groups=1))
    for name, val in (("g", rng.uniform(0.5, 2, cout)),
                      ("bt", rng.normal(size=cout)),
                      ("m", rng.normal(size=cout)),
                      ("v", rng.uniform(0.1, 2, cout))):
        b.add_initializer(name, val)
    out = b.emit("batchnorm", [conv, "g", "bt", "m", "v"], name="bn",
                 attrs=dict(eps=1e-5))
    if with_relu:
        out = b.emit("relu", [out], name="act")
    return b.finish(out), cin


REF = ReferenceExecutor()


def _input_for(graph, cin=2, seed=0):
    return np.random.default_rng(seed).normal(size=(2, cin, 6, 6))


class TestPassesOnRandomGraphs:
    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_optimize_preserves_semantics(self, graph):
        x = _input_for(graph)
        opt = optimize(graph)
        np.testing.assert_allclose(REF.run(opt, x), REF.run(graph, x),
                                   rtol=1e-10, atol=1e-12)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_eliminate_identity_total(self, graph):
        out = eliminate_identity(graph)
        assert all(n.op != "identity" for n in out.nodes)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_dce_removes_dead_branches_and_is_idempotent(self, graph):
        once = dead_code_elimination(graph)
        assert all(not n.name.startswith("dead") for n in once.nodes)
        twice = dead_code_elimination(once)
        assert len(twice.nodes) == len(once.nodes)

    @given(random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_serialization_roundtrip(self, tmp_path_factory, graph):
        path = tmp_path_factory.mktemp("g") / "graph.npz"
        loaded = load_graph(save_graph(graph, path))
        x = _input_for(graph)
        np.testing.assert_array_equal(REF.run(loaded, x), REF.run(graph, x))


class TestFuseConvBnProperty:
    @given(conv_bn_graphs())
    @settings(max_examples=40, deadline=None)
    def test_fusion_semantics(self, graph_cin):
        graph, cin = graph_cin
        x = _input_for(graph, cin)
        fused = fuse_conv_bn(graph)
        assert all(n.op != "batchnorm" for n in fused.nodes)
        np.testing.assert_allclose(REF.run(fused, x), REF.run(graph, x),
                                   rtol=1e-8, atol=1e-9)


class TestKernelProperties:
    @given(st.integers(0, 10 ** 6), st.integers(4, 24),
           st.sampled_from([4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_tiled_matmul_converges_to_fused_at_fp64(self, seed, k, chunk):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(5, k)), rng.normal(size=(k, 3))
        np.testing.assert_allclose(
            ops.matmul_accum(a, b, accum_chunk=chunk), a @ b, rtol=1e-10)

    @given(st.integers(0, 10 ** 6), st.sampled_from([1, 2]),
           st.integers(4, 12), st.sampled_from(["nearest", "bilinear"]))
    @settings(max_examples=40, deadline=None)
    def test_upsample_preserves_value_range(self, seed, c, size, mode):
        """Interpolation is a convex combination: no overshoot."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, c, size, size))
        up = ops.upsample2d(x, 2, mode)
        assert up.min() >= x.min() - 1e-12
        assert up.max() <= x.max() + 1e-12

    @given(st.integers(0, 10 ** 6), st.integers(5, 16),
           st.sampled_from([2, 3]), st.sampled_from([1, 2]))
    @settings(max_examples=40, deadline=None)
    def test_maxpool_dominates_avgpool(self, seed, size, k, stride):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 1, size, size))
        mx = ops.max_pool2d(x, k, stride, 0)
        av = ops.avg_pool2d(x, k, stride, 0)
        assert (mx >= av - 1e-12).all()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_layernorm_output_standardised(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(3, 10, size=(4, 6, 16))
        out = ops.layernorm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)
