"""Tests for the streaming shard data layer + mergeable accumulators."""

import numpy as np
import pytest

from repro.core import (Accuracy, DataShards, MeanAP, MeanIoU, MeanScores,
                        dataset_subset, prefetched, rebatch, shard_bounds)
from repro.core.datapipe import align_up, supports_sharding


# ---------------------------------------------------------------------------
# Shard geometry
# ---------------------------------------------------------------------------

class TestShardBounds:
    def test_covers_everything_contiguously(self):
        bounds = shard_bounds(23, 5)
        assert bounds[0][0] == 0 and bounds[-1][1] == 23
        for (_, a_stop), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_stop == b_start

    def test_none_or_oversized_yields_one_shard(self):
        assert shard_bounds(10, None) == [(0, 10)]
        assert shard_bounds(10, 10) == [(0, 10)]
        assert shard_bounds(10, 99) == [(0, 10)]

    def test_alignment_rounds_shard_size_up(self):
        # Align 8: shard size 5 becomes 8, so every start is a batch
        # boundary — the bit-exactness contract for scheduled work units.
        bounds = shard_bounds(20, 5, align=8)
        assert bounds == [(0, 8), (8, 16), (16, 20)]
        assert all(start % 8 == 0 for start, _ in bounds)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            shard_bounds(10, 0)
        assert shard_bounds(0, 4) == []

    def test_align_up(self):
        assert align_up(5, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 8) == 16


class TestDataShards:
    def test_partitions_classification_dataset(self):
        from repro.data import make_classification_dataset
        ds = make_classification_dataset(n=10, native_size=48, input_size=32,
                                         seed=0)
        shards = DataShards(ds, 4)
        assert len(shards) == 3
        pieces = list(shards)
        assert [len(s) for s in pieces] == [4, 4, 2]
        # Slices carry the right items and metadata.
        np.testing.assert_array_equal(pieces[1].dataset.labels, ds.labels[4:8])
        assert pieces[1].dataset.input_size == ds.input_size
        # Content digests are per-shard and distinct.
        assert len({s.digest for s in pieces}) == 3

    def test_subset_on_every_builtin_dataset(self):
        from repro.core import NLPDataset, get_task
        for task, kw in [("cls", dict(n=8, native_size=48, input_size=32)),
                         ("det", dict(n=6, size=48)),
                         ("seg", dict(n=6, size=32)),
                         ("nlp", dict(n=6)),
                         ("audio", dict(n=6))]:
            ds = get_task(task).load_dataset(seed=0, **kw)
            assert supports_sharding(ds)
            sub = dataset_subset(ds, 2, 5)
            assert len(sub) == 3
            if isinstance(ds, NLPDataset):
                # The calibration corpus rides whole (calibration shard).
                np.testing.assert_array_equal(sub.calib_corpus,
                                              ds.calib_corpus)

    def test_unshardable_object_rejected(self):
        assert not supports_sharding(object())
        with pytest.raises(TypeError):
            dataset_subset(object(), 0, 1)


# ---------------------------------------------------------------------------
# Global-boundary rebatching
# ---------------------------------------------------------------------------

class TestRebatch:
    @pytest.mark.parametrize("chunk", [1, 3, 5, 20])
    @pytest.mark.parametrize("batch", [1, 4, 7])
    def test_batches_cut_at_global_offsets(self, chunk, batch):
        data = np.arange(17)
        chunks = [(s, data[s:s + chunk]) for s in range(0, 17, chunk)]
        out = list(rebatch(iter(chunks), batch))
        # Offsets are exactly the global multiples of `batch`...
        assert [off for off, _ in out] == list(range(0, 17, batch))
        # ...and the concatenation reproduces the stream.
        np.testing.assert_array_equal(np.concatenate([b for _, b in out]),
                                      data)
        assert all(len(b) == batch for _, b in out[:-1])

    def test_aligned_offset_start(self):
        data = np.arange(8, 20)
        out = list(rebatch(iter([(8, data)]), 4))
        assert [off for off, _ in out] == [8, 12, 16]

    def test_none_batch_passthrough(self):
        chunks = [(0, np.arange(3)), (3, np.arange(3, 7))]
        assert [(o, b.tolist()) for o, b in rebatch(iter(chunks), None)] == \
            [(0, [0, 1, 2]), (3, [3, 4, 5, 6])]


class TestPrefetched:
    def test_order_preserved(self):
        assert list(prefetched(iter(range(50)), depth=2)) == list(range(50))

    def test_producer_exception_reraises(self):
        def gen():
            yield 1
            raise RuntimeError("decode failed")
        it = prefetched(gen(), depth=1)
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="decode failed"):
            list(it)

    def test_early_abandon_does_not_hang(self):
        for _, item in zip(range(3), prefetched(iter(range(10_000)))):
            pass                               # break early; thread must stop


# ---------------------------------------------------------------------------
# Accumulators: merge associativity + state round-trips
# ---------------------------------------------------------------------------

def _random_split_points(rng, n):
    k = int(rng.integers(1, 5))
    cuts = sorted(rng.choice(np.arange(1, n), size=min(k, n - 1),
                             replace=False).tolist())
    return [0] + cuts + [n]


class TestAccumulators:
    def test_accuracy_merge_equals_whole(self):
        rng = np.random.default_rng(0)
        pred = rng.integers(0, 4, size=37)
        target = rng.integers(0, 4, size=37)
        whole = Accuracy()
        whole.update(pred, target)
        for _ in range(5):
            pts = _random_split_points(rng, 37)
            merged = Accuracy()
            for a, b in zip(pts, pts[1:]):
                part = Accuracy()
                part.update(pred[a:b], target[a:b])
                merged.merge(part)
            assert merged.value() == whole.value()
            assert merged.correct == whole.correct

    def test_miou_merge_equals_whole(self):
        from repro.segmentation.miou import mean_iou
        rng = np.random.default_rng(1)
        pred = rng.integers(0, 4, size=(13, 6, 6))
        target = rng.integers(0, 4, size=(13, 6, 6))
        whole = mean_iou(pred, target, 4)
        merged = MeanIoU(4)
        for a, b in [(0, 4), (4, 5), (5, 13)]:
            part = MeanIoU(4)
            part.update(pred[a:b], target[a:b])
            merged.merge(part)
        assert merged.value() == whole

    def test_map_merge_is_order_free_and_exact(self):
        from repro.detection.map_eval import mean_average_precision
        rng = np.random.default_rng(2)
        dets, gts = [], []
        for _ in range(9):
            d = rng.random((int(rng.integers(0, 4)), 6))
            d[:, 0] = rng.integers(0, 3, size=len(d))
            g = rng.random((int(rng.integers(1, 3)), 5))
            g[:, 0] = rng.integers(0, 3, size=len(g))
            g[:, 3:] += 1.0
            dets.append(d)
            gts.append(g)
        whole = mean_average_precision(dets, gts, 3)
        merged = MeanAP(3)
        for i in reversed(range(9)):           # out-of-order merge
            part = MeanAP(3)
            part.update(i, dets[i], gts[i])
            merged.merge(part)
        assert merged.value() == whole

    def test_mean_scores_matches_np_mean_order(self):
        rng = np.random.default_rng(3)
        scores = rng.random(11).tolist()
        acc = MeanScores()
        for i in [5, 0, 7, 1, 2, 3, 4, 6, 8, 10, 9]:
            acc.update(i, scores[i])
        assert acc.value() == float(np.mean(scores))

    @pytest.mark.parametrize("make", [
        lambda: TestAccumulators._filled_accuracy(),
        lambda: TestAccumulators._filled_miou(),
        lambda: TestAccumulators._filled_map(),
        lambda: TestAccumulators._filled_scores(),
    ])
    def test_state_json_round_trip_is_exact(self, make):
        import json
        acc = make()
        state = json.loads(json.dumps(acc.state()))
        clone = type(acc).__new__(type(acc))
        clone.__init__(*([acc.num_classes] if hasattr(acc, "num_classes")
                         else []))
        clone.load_state(state)
        assert clone.value() == acc.value()

    @staticmethod
    def _filled_accuracy():
        acc = Accuracy()
        acc.add(7, 13)
        return acc

    @staticmethod
    def _filled_miou():
        acc = MeanIoU(3)
        rng = np.random.default_rng(4)
        acc.update(rng.integers(0, 3, size=50), rng.integers(0, 3, size=50))
        return acc

    @staticmethod
    def _filled_map():
        acc = MeanAP(2)
        rng = np.random.default_rng(5)
        for i in range(4):
            d = rng.random((2, 6))
            d[:, 0] = rng.integers(0, 2, size=2)
            g = rng.random((1, 5))
            g[0, 0] = rng.integers(0, 2)
            g[:, 3:] += 1.0
            acc.update(i, d, g)
        acc.update(4, np.empty((0, 6)), np.empty((0, 5)))  # empty image
        return acc

    @staticmethod
    def _filled_scores():
        acc = MeanScores()
        for i, s in enumerate([0.1, 0.25, 1 / 3, 7e-17]):
            acc.update(i, s)
        return acc
