"""Intra-op parallelism tests: the determinism contract and its plumbing.

The intra-op pool (:mod:`repro.backend.parallel`) tiles heavy GEMM-backed
kernels over a shared thread pool.  Its contract: threaded results are
bit-identical to serial at *every* thread count, because tiles are the
exact computations the serial path performs and results are combined in
submission order.  These tests pin the contract across the zoo, the
``parallel_map`` semantics it rests on, the bounded ``prepare_cached``
executor cache, and the ``profile --compiled`` intra-op report.
"""

import gc

import numpy as np
import pytest

from repro.backend import (BACKEND_PRESETS, DeploymentExecutor, GraphBuilder,
                           ReferenceExecutor, export_module, parallel,
                           profile_graph, render_profile)
from repro.backend.executor import (clear_prepared_cache, prepare_cached,
                                    prepared_cache_stats)
from repro.models import create_model

RNG = np.random.default_rng(11)


def graph_for(name: str):
    return export_module(create_model(name, num_classes=5, seed=0), name)


# ---------------------------------------------------------------------------
# Bit-parity: threaded == serial, across the zoo
# ---------------------------------------------------------------------------

class TestThreadedParity:
    @pytest.mark.parametrize("model_name", [
        "resnet18x0.25", "mcunet-293kb", "mobilenetv2-0.5", "vit-tiny",
    ])
    def test_plan_bit_identical_across_thread_counts(self, model_name,
                                                     monkeypatch):
        g = graph_for(model_name)
        plan = ReferenceExecutor().compile(g)
        x = RNG.normal(size=(4, 3, 32, 32))
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        serial = plan.run(x)
        for n in ("2", "4"):
            monkeypatch.setenv("REPRO_NUM_THREADS", n)
            np.testing.assert_array_equal(plan.run(x), serial)

    def test_deployment_backend_parity_under_threads(self, monkeypatch):
        g = graph_for("resnet18x0.25")
        ex = DeploymentExecutor(BACKEND_PRESETS["dsp"])
        x = RNG.normal(size=(4, 3, 32, 32))
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        serial = ex.compile(g).run(x)
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        np.testing.assert_array_equal(ex.compile(g).run(x), serial)

    def test_threading_engages_on_heavy_ops(self, monkeypatch):
        """At >=2 threads the resnet stem convs actually fan out (guards
        against the pool silently degrading to serial everywhere)."""
        monkeypatch.setenv("REPRO_NUM_THREADS", "2")
        g = graph_for("resnet18x0.25")
        plan = ReferenceExecutor().compile(g)
        x = RNG.normal(size=(8, 3, 32, 32))
        sink = []
        with parallel.collect_stats(sink):
            plan.run(x)
        assert any(rec["workers"] > 1 for rec in sink)


# ---------------------------------------------------------------------------
# parallel_map semantics
# ---------------------------------------------------------------------------

class TestParallelMap:
    def test_results_in_submission_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        items = list(range(64))
        assert parallel.parallel_map(lambda i: i * i, items) == \
            [i * i for i in items]

    def test_serial_degradation_cases(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        sink = []
        with parallel.collect_stats(sink):
            parallel.parallel_map(lambda i: i, [1, 2, 3])
        assert sink == [{"tag": "tile", "tiles": 3, "workers": 1}]

    def test_single_item_stays_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "8")
        sink = []
        with parallel.collect_stats(sink):
            parallel.parallel_map(lambda i: i, [42])
        assert sink[0]["workers"] == 1

    def test_nested_calls_run_serially(self, monkeypatch):
        """A tile that itself reaches parallel_map must not re-enter the
        pool (deadlock guard); the inner call degrades to a plain loop."""
        monkeypatch.setenv("REPRO_NUM_THREADS", "2")
        sink = []

        def outer(i):
            return sum(parallel.parallel_map(lambda j: j, [i, i + 1]))

        with parallel.collect_stats(sink):
            out = parallel.parallel_map(outer, [0, 2, 4])
        assert out == [1, 5, 9]
        inner = [rec for rec in sink if rec["tiles"] == 2]
        assert inner and all(rec["workers"] == 1 for rec in inner)

    def test_workers_cap_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "8")
        sink = []
        with parallel.collect_stats(sink):
            parallel.parallel_map(lambda i: i, list(range(10)), workers=3)
        assert sink[0]["workers"] == 3

    def test_num_threads_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        assert parallel.num_threads() == 5
        monkeypatch.setenv("REPRO_NUM_THREADS", "bogus")
        assert parallel.num_threads() == parallel._available_cores()
        monkeypatch.delenv("REPRO_NUM_THREADS")
        assert parallel.num_threads() == parallel._available_cores()


# ---------------------------------------------------------------------------
# Bounded prepare_cached (byte- and entry-bounded LRU)
# ---------------------------------------------------------------------------

class _Carrier:
    """A graph-shaped cache key owner with a measurable payload."""

    def __init__(self, nbytes: int):
        self.initializers = {"w": np.zeros(nbytes, dtype=np.uint8)}


class TestPreparedCache:
    def setup_method(self):
        clear_prepared_cache()

    def teardown_method(self):
        clear_prepared_cache()

    def test_hit_and_miss_accounting(self):
        g = _Carrier(64)
        calls = []
        for _ in range(3):
            prepare_cached(g, "k", lambda graph: (calls.append(1), graph)[1])
        stats = prepared_cache_stats()
        assert len(calls) == 1
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["entries"] == 1

    def test_entry_bound_evicts_lru(self, monkeypatch):
        from repro.backend import executor as executor_mod
        monkeypatch.setattr(executor_mod, "PREPARED_CACHE_ENTRIES", 3)
        carriers = [_Carrier(16) for _ in range(5)]
        for g in carriers:
            prepare_cached(g, "k", lambda graph: graph)
        assert prepared_cache_stats()["entries"] == 3
        # The survivors are the most recently used; re-preparing the
        # evicted head is a miss again.
        before = prepared_cache_stats()["misses"]
        prepare_cached(carriers[0], "k", lambda graph: graph)
        assert prepared_cache_stats()["misses"] == before + 1

    def test_byte_bound_evicts(self, monkeypatch):
        from repro.backend import executor as executor_mod
        monkeypatch.setattr(executor_mod, "PREPARED_CACHE_BYTES", 3000)
        carriers = [_Carrier(1024) for _ in range(4)]
        for g in carriers:
            prepare_cached(g, "k", lambda graph: graph)
        stats = prepared_cache_stats()
        assert stats["entries"] < 4
        assert stats["bytes"] <= 3000

    def test_dead_graph_entries_are_reclaimed(self):
        g = _Carrier(128)
        # The cached value must not be the graph itself (as in real use,
        # where transforms return new graphs/plans) or the cache's strong
        # reference would keep the key's graph alive forever.
        prepare_cached(g, "k", lambda graph: _Carrier(8))
        assert prepared_cache_stats()["entries"] == 1
        del g
        gc.collect()
        assert prepared_cache_stats()["entries"] == 0


# ---------------------------------------------------------------------------
# profile --compiled: per-node timing + tiling stats
# ---------------------------------------------------------------------------

class TestCompiledProfile:
    def test_intra_op_records_are_per_node(self):
        g = graph_for("mcunet-293kb")
        x = RNG.normal(size=(4, 3, 32, 32))
        profile = profile_graph(g, x=x, compiled=True, repeats=1)
        assert profile.intra_op is not None
        assert len(profile.intra_op) == len(g.nodes)
        for rec in profile.intra_op:
            assert rec["time_s"] >= 0.0
            assert rec["workers"] >= 1

    def test_render_includes_intra_op_section(self):
        g = graph_for("mcunet-293kb")
        x = RNG.normal(size=(4, 3, 32, 32))
        profile = profile_graph(g, x=x, compiled=True, repeats=1)
        text = render_profile(profile, top=5)
        assert "intra-op" in text

    def test_uncompiled_profile_has_no_intra_op(self):
        g = graph_for("mcunet-293kb")
        profile = profile_graph(g, repeats=1)
        assert profile.intra_op is None

    def test_instrumented_run_matches_plain_run(self):
        g = graph_for("mcunet-293kb")
        plan = ReferenceExecutor().compile(g)
        x = RNG.normal(size=(4, 3, 32, 32))
        y, records = plan.run_instrumented(x)
        np.testing.assert_array_equal(y, plan.run(x))
        assert len(records) == len(plan.graph.nodes)


# ---------------------------------------------------------------------------
# Explicit micro-graph parity (catches tiling bugs without zoo overhead)
# ---------------------------------------------------------------------------

def test_wide_matmul_parity(monkeypatch):
    b = GraphBuilder("wide")
    b.add_initializer("w", RNG.normal(size=(512, 384)))
    b.add_initializer("bias", RNG.normal(size=(512,)))
    out = b.emit("linear", ["x", "w", "bias"])
    g = b.finish(out)
    x = RNG.normal(size=(64, 384))
    plan = ReferenceExecutor().compile(g)
    monkeypatch.setenv("REPRO_NUM_THREADS", "1")
    serial = plan.run(x)
    monkeypatch.setenv("REPRO_NUM_THREADS", "4")
    np.testing.assert_array_equal(plan.run(x), serial)
