"""Consistency-of-results tests (paper Appendix E).

The paper fixes library versions and verifies repeated evaluations differ by
< 0.0001%.  Our substrate is fully deterministic, so we can assert exact
bit-reproducibility across every pipeline stage.
"""

import numpy as np

import repro.nn as nn
from repro.core import TRAIN_CONFIG, preprocess_dataset, train_classification_model
from repro.data import make_classification_dataset, make_nlp_suite
from repro.image import color_roundtrip, decode_with, encode, resize
from repro.nn import Tensor


class TestPipelineDeterminism:
    def test_jpeg_encode_bitstream_stable(self):
        img = np.random.default_rng(0).integers(0, 256, (24, 24, 3),
                                                dtype=np.uint8)
        a = encode(img, quality=85).tobytes()
        b = encode(img, quality=85).tobytes()
        assert a == b

    def test_decode_stable_across_calls(self):
        img = np.random.default_rng(1).integers(0, 256, (24, 24, 3),
                                                dtype=np.uint8)
        stream = encode(img)
        for lib in ("pil", "opencv", "ffmpeg", "dali"):
            np.testing.assert_array_equal(decode_with(stream, lib),
                                          decode_with(stream, lib))

    def test_resize_stable(self):
        img = np.random.default_rng(2).integers(0, 256, (32, 32, 3),
                                                dtype=np.uint8)
        np.testing.assert_array_equal(resize(img, (20, 20), "pillow-lanczos"),
                                      resize(img, (20, 20), "pillow-lanczos"))

    def test_color_roundtrip_stable(self):
        img = np.random.default_rng(3).integers(0, 256, (16, 16, 3),
                                                dtype=np.uint8)
        np.testing.assert_array_equal(color_roundtrip(img, "nv12-integer"),
                                      color_roundtrip(img, "nv12-integer"))

    def test_preprocess_dataset_stable(self):
        ds = make_classification_dataset(n=6, native_size=40, input_size=32,
                                         seed=0)
        a = preprocess_dataset(ds.streams, 32, TRAIN_CONFIG.with_(decoder="pil"))
        b = preprocess_dataset(ds.streams, 32, TRAIN_CONFIG.with_(decoder="pil"))
        np.testing.assert_array_equal(a, b)


class TestTrainingDeterminism:
    def test_same_seed_same_model(self):
        ds = make_classification_dataset(n=40, native_size=40, input_size=32,
                                         seed=0)
        cfg = lambda: nn.TrainConfig(epochs=3, batch_size=16, lr=0.05, seed=1)
        m1 = train_classification_model("resnet18x0.25", ds, cfg())
        m2 = train_classification_model("resnet18x0.25", ds, cfg())
        s1, s2 = m1.state_dict(), m2.state_dict()
        for k in s1:
            np.testing.assert_array_equal(s1[k], s2[k])

    def test_inference_stable(self):
        model = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1), nn.ReLU(),
                              nn.Flatten(), nn.Linear(4 * 8 * 8, 2))
        model.eval()
        x = Tensor(np.random.default_rng(4).standard_normal((2, 3, 8, 8)))
        np.testing.assert_array_equal(model(x).data, model(x).data)

    def test_nlp_suite_deterministic(self):
        g1, t1 = make_nlp_suite(n_per_task=5, seed=3)
        g2, t2 = make_nlp_suite(n_per_task=5, seed=3)
        np.testing.assert_array_equal(g1.perm, g2.perm)
        for name in t1:
            np.testing.assert_array_equal(t1[name].answers, t2[name].answers)
            for a, b in zip(t1[name].prefixes, t2[name].prefixes):
                np.testing.assert_array_equal(a, b)
