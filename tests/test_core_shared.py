"""SweepEngine(mode="shared"): lease-coordinated multi-worker sweeps.

These tests simulate N worker *processes* with N engine instances, each
holding its own :class:`RunLedger` replay of the same run directory — the
same isolation real workers have, minus the fork.  True crash/SIGSTOP
choreography lives in ``benchmarks/crash_resume_smoke.py`` and
``benchmarks/chaos_smoke.py``.
"""

import threading

import numpy as np
import pytest

from repro.core import NoiseConfig, RunLedger, SweepEngine, TRAIN_CONFIG
from repro.core.registry import deployment_variants


class FakeDataset:
    """Content-identified dataset (streams drive the ledger token)."""

    def __init__(self, payloads=(b"stream-a", b"stream-b")):
        class Raw:
            def __init__(self, b):
                self._b = b

            def tobytes(self):
                return self._b

        self.streams = [Raw(p) for p in payloads]


class FakeModel:
    pass


class CountingEvaluator:
    def __init__(self, fail_on=None):
        self.calls = []
        self.fail_on = fail_on or (lambda cfg: False)
        self.lock = threading.Lock()

    def __call__(self, model, ds, cfg):
        with self.lock:
            self.calls.append(cfg)
        if self.fail_on(cfg):
            raise RuntimeError("injected evaluator failure")
        return 90.0 - 2.0 * (cfg.decoder != "dali") \
            - 4.0 * (cfg.precision != "fp32")


def shared_engine(run_dir, **kw):
    kw.setdefault("mode", "shared")
    kw.setdefault("model_key", "m")
    kw.setdefault("ledger", RunLedger.create(run_dir, {"model": "m"}))
    kw.setdefault("lease_ttl", 5.0)
    return SweepEngine(**kw)


@pytest.fixture
def model():
    return FakeModel()


@pytest.fixture
def ds():
    return FakeDataset()


class TestSharedMode:
    def test_matches_serial_results(self, tmp_path, model, ds):
        ev_serial, ev_shared = CountingEvaluator(), CountingEvaluator()
        serial = SweepEngine()
        shared = shared_engine(tmp_path / "run")
        want = serial.sweep_noise(ev_serial, model, ds, "decoder")
        got = shared.sweep_noise(ev_shared, model, ds, "decoder")
        assert got.values == want.values
        assert got.baseline == want.baseline

    def test_every_cell_ledgered_exactly_once(self, tmp_path, model, ds):
        shared = shared_engine(tmp_path / "run")
        shared.sweep_noise(CountingEvaluator(), model, ds, "decoder")
        evals = [e for e in shared.ledger.entries()
                 if e.get("kind") == "eval"]
        keys = [(e["model"], e["dataset"], e["cfg"]) for e in evals]
        assert len(keys) == len(set(keys))
        # baseline + one per decoder variant
        assert len(keys) == 1 + len(deployment_variants("decoder"))

    def test_second_worker_reuses_ledgered_cells(self, tmp_path, model, ds):
        w1 = shared_engine(tmp_path / "run")
        row1 = w1.sweep_noise(CountingEvaluator(), model, ds, "decoder")
        ev2 = CountingEvaluator()
        w2 = shared_engine(tmp_path / "run",
                           ledger=RunLedger(tmp_path / "run"))
        row2 = w2.sweep_noise(ev2, model, ds, "decoder")
        assert ev2.calls == []                 # everything came from disk
        assert row2.values == row1.values

    def test_no_ledger_falls_back_to_local(self, model, ds):
        engine = SweepEngine(mode="shared")    # no ledger attached
        row = engine.sweep_noise(CountingEvaluator(), model, ds, "decoder")
        assert not any(np.isnan(v) for v in row.values)

    def test_two_workers_race_without_duplicates(self, tmp_path, model, ds):
        run = tmp_path / "run"
        w1 = shared_engine(run, lease_ttl=2.0)
        w2 = shared_engine(run, ledger=RunLedger(run), lease_ttl=2.0)
        evs = [CountingEvaluator(), CountingEvaluator()]
        rows = [None, None]

        def work(i, engine):
            rows[i] = engine.sweep_noise(evs[i], model,
                                         ds, "precision")

        threads = [threading.Thread(target=work, args=(i, e))
                   for i, e in enumerate((w1, w2))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rows[0].values == rows[1].values
        # Union of both workers' computes covers each cell exactly once.
        done = [c for ev in evs for c in ev.calls]
        assert len(done) == len(set(done))
        evals = [e for e in RunLedger(run).entries()
                 if e.get("kind") == "eval"]
        keys = [(e["model"], e["dataset"], e["cfg"]) for e in evals]
        assert len(keys) == len(set(keys))

    def test_poison_quarantine_terminates_fatal_cell(self, tmp_path, model,
                                                     ds):
        bad = NoiseConfig(precision="int8")
        engine = shared_engine(
            tmp_path / "run", max_claims=2)
        engine._shared_queue().retry_base = 0.0
        ev = CountingEvaluator(fail_on=lambda cfg: cfg.precision == "int8")
        values, errors = engine._map_configs(
            ev, model, ds, [TRAIN_CONFIG, bad], ["baseline", "precision"])
        assert not np.isnan(values[0])
        assert np.isnan(values[1])
        assert "poisoned" in errors[1]
        # The quarantine entry is terminal: a fresh worker resolves the
        # cell from the ledger without burning its own attempts on it.
        ev2 = CountingEvaluator(fail_on=lambda cfg: True)
        w2 = shared_engine(tmp_path / "run",
                           ledger=RunLedger(tmp_path / "run"), max_claims=2)
        values2, errors2 = w2._map_configs(
            ev2, model, ds, [TRAIN_CONFIG, bad], ["baseline", "precision"])
        assert ev2.calls == []
        assert np.isnan(values2[1]) and "poisoned" in errors2[1]
        # Budget respected: max_claims executions, then quarantine.
        assert len(ev.calls) == 1 + 2

    def test_expired_foreign_lease_is_reclaimed(self, tmp_path, model, ds):
        run = tmp_path / "run"
        engine = shared_engine(run, lease_ttl=0.2)
        engine._shared_queue().retry_base = 0.0
        # A worker "died" holding the baseline cell: fabricate its lease.
        lkey = engine._ledger_key(model, ds, TRAIN_CONFIG)
        wq = engine._shared_queue()
        stale = wq.try_claim(f"eval-{engine._cell_tag(lkey)}")
        stale._stop.set()
        stale._thread.join()
        import time
        time.sleep(0.3)
        value = engine.baseline(CountingEvaluator(), model, ds)
        assert value == pytest.approx(90.0)    # TRAIN_CONFIG is clean

    def test_baseline_single_cell_routes_through_claims(self, tmp_path,
                                                        model, ds):
        engine = shared_engine(tmp_path / "run")
        engine.baseline(CountingEvaluator(), model, ds)
        evals = [e for e in engine.ledger.entries()
                 if e.get("kind") == "eval"]
        assert len(evals) == 1
        leases = (tmp_path / "run" / "leases").glob("*.attempts")
        assert any("eval-" in p.name for p in leases)

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode must be"):
            SweepEngine(mode="sharedx")
        with pytest.raises(ValueError, match="lease_ttl"):
            SweepEngine(mode="shared", lease_ttl=0)
        with pytest.raises(ValueError, match="max_claims"):
            SweepEngine(mode="shared", max_claims=0)
