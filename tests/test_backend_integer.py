"""Integer-only INT8 fast-path tests (``lower_integer``).

``quantize_graph`` produces a QDQ graph that simulates int8 through float
round-trips; ``lower_integer`` rewrites the quantised segments to stay in
code space (``qconv2d``/``qlinear``/``qrelu`` + requantize folds).  The
contract is *bit-exactness*: uint8/int8 code products are at most
255 * 127 and the per-output accumulators stay below 2**24, so integer
accumulation is exact in float and independent of summation order, tiling
and accumulator dtype — the lowered graph must match the QDQ graph to the
last bit on every backend, at every batch size, through both the
interpreter and the compiled plan.
"""

import numpy as np
import pytest

from repro.backend import (BACKEND_PRESETS, DeploymentExecutor,
                           ReferenceExecutor, export_module,
                           fuse_conv_bn_relu, lower_integer, quantize_graph)
from repro.models import create_model

RNG = np.random.default_rng(3)
X_CALIB = RNG.normal(size=(8, 3, 32, 32)) * 0.25
X = RNG.normal(size=(4, 3, 32, 32))

ZOO = ["resnet18x0.25", "mcunet-293kb", "mobilenetv2-0.5", "vit-tiny"]


def lowered_pair(name: str):
    g = fuse_conv_bn_relu(export_module(
        create_model(name, num_classes=5, seed=0), name))
    qdq = quantize_graph(g, X_CALIB)
    return qdq, lower_integer(qdq)


class TestLoweredParity:
    @pytest.mark.parametrize("model_name", ZOO)
    def test_interpreter_parity_reference(self, model_name):
        qdq, lowered = lowered_pair(model_name)
        ex = ReferenceExecutor()
        np.testing.assert_array_equal(ex.run(lowered, X), ex.run(qdq, X))

    @pytest.mark.parametrize("model_name", ZOO)
    def test_compiled_parity_dsp(self, model_name):
        """The deployment persona whose int8 path the paper measures."""
        qdq, lowered = lowered_pair(model_name)
        ex = DeploymentExecutor(BACKEND_PRESETS["dsp"])
        np.testing.assert_array_equal(ex.compile(lowered).run(X),
                                      ex.compile(qdq).run(X))

    def test_compiled_equals_interpreted_on_lowered_graph(self):
        _, lowered = lowered_pair("mcunet-293kb")
        for ex in (ReferenceExecutor(),
                   DeploymentExecutor(BACKEND_PRESETS["dsp"])):
            np.testing.assert_array_equal(ex.compile(lowered).run(X),
                                          ex.run(lowered, X))

    def test_parity_across_batch_sizes(self):
        qdq, lowered = lowered_pair("mobilenetv2-0.5")
        ex = ReferenceExecutor()
        plan_q, plan_i = ex.compile(qdq), ex.compile(lowered)
        for b in (1, 2, 7):
            xb = RNG.normal(size=(b, 3, 32, 32))
            np.testing.assert_array_equal(plan_i.run(xb), plan_q.run(xb))

    def test_parity_under_intra_op_threads(self, monkeypatch):
        """Integer accumulation is order-invariant, so the tiled threaded
        path must stay bit-identical too."""
        _, lowered = lowered_pair("resnet18x0.25")
        plan = ReferenceExecutor().compile(lowered)
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        serial = plan.run(X)
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        np.testing.assert_array_equal(plan.run(X), serial)


class TestLoweredStructure:
    def test_quantised_compute_becomes_qops(self):
        qdq, lowered = lowered_pair("mcunet-293kb")
        q_ops = {n.op for n in lowered.nodes}
        assert q_ops & {"qconv2d", "qlinear"}, \
            f"no integer compute nodes in lowered graph ({sorted(q_ops)})"
        # Lowering must shrink the dequant/quant round-trip count.
        def roundtrips(g):
            return sum(n.op in ("quantize_linear", "dequantize_linear")
                       for n in g.nodes)
        assert roundtrips(lowered) < roundtrips(qdq)

    def test_lowering_is_idempotent(self):
        _, lowered = lowered_pair("mcunet-293kb")
        again = lower_integer(lowered)
        assert [n.op for n in again.nodes] == [n.op for n in lowered.nodes]
        ex = ReferenceExecutor()
        np.testing.assert_array_equal(ex.run(again, X), ex.run(lowered, X))

    def test_unquantized_graph_passes_through(self):
        g = export_module(create_model("mcunet-293kb", num_classes=5,
                                       seed=0), "mcunet-293kb")
        out = lower_integer(g)
        assert [n.op for n in out.nodes] == [n.op for n in g.nodes]

    def test_lowered_graph_validates_and_serializes(self, tmp_path):
        from repro.backend import load_graph, save_graph
        _, lowered = lowered_pair("mobilenetv2-0.5")
        lowered.validate()
        path = save_graph(lowered, tmp_path / "lowered.npz")
        loaded = load_graph(path)
        ex = ReferenceExecutor()
        np.testing.assert_array_equal(ex.run(loaded, X), ex.run(lowered, X))


class TestAccumulatorBound:
    def test_code_products_fit_exact_float32_accumulation(self):
        """The safety property the fast path rests on: every per-output
        integer accumulator stays under 2**24 (exactly representable in
        f32), for the worst-case input code (255)."""
        _, lowered = lowered_pair("resnet18x0.25")
        for node in lowered.nodes:
            if node.op not in ("qconv2d", "qlinear"):
                continue
            w_codes = None
            for operand in node.inputs:
                arr = lowered.initializers.get(operand)
                if arr is not None and arr.dtype in (np.int8, np.uint8):
                    w_codes = arr.astype(np.int64)
            if w_codes is None:
                continue
            # Max |accumulator| over outputs: input codes <= 255 times the
            # per-output sum of |weight codes| (+ conservative slack for
            # the zero-point correction term).
            axes = tuple(range(1, w_codes.ndim))
            worst = 255 * np.abs(w_codes).sum(axis=axes).max()
            assert worst < 2 ** 53, "accumulator exceeds exact f64 range"
