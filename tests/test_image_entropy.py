"""Bit-exactness + behaviour of the vectorized JPEG entropy codec.

The ISSUE acceptance: ``entropy="vector"`` and ``entropy="scalar"`` must be
interchangeable — identical bitstreams out of the encoder, identical
coefficients (hence identical RGB) out of the decoder — across qualities
{50, 75, 90} and odd image sizes.
"""

import numpy as np
import pytest

from repro.image import jpeg
from repro.image.jpeg import (DECODER_LIBRARIES, decode, decode_batch,
                              decode_with, default_entropy, encode,
                              set_default_entropy)


def make_image(h, w, seed=0, noise=12.0):
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    base = 128 + 60 * np.sin(xx / 7.0) * np.cos(yy / 9.0)
    img = np.stack([base, np.roll(base, 3, axis=0), 255 - base], axis=-1)
    img += rng.normal(0, noise, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


QUALITIES = [50, 75, 90]
SHAPES = [(32, 32), (19, 27), (48, 40), (17, 31), (8, 8), (1, 1)]


class TestEncoderBitExact:
    @pytest.mark.parametrize("quality", QUALITIES)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_vector_encoder_matches_scalar(self, quality, shape):
        img = make_image(*shape, seed=sum(shape) + quality)
        scalar = encode(img, quality, entropy="scalar")
        vector = encode(img, quality, entropy="vector")
        assert scalar.payload == vector.payload
        assert scalar.n_blocks == vector.n_blocks

    @pytest.mark.parametrize("subsample", [True, False])
    def test_bit_exact_both_chroma_modes(self, subsample):
        img = make_image(24, 40, seed=3)
        a = encode(img, 75, subsample=subsample, entropy="scalar")
        b = encode(img, 75, subsample=subsample, entropy="vector")
        assert a.payload == b.payload

    def test_high_entropy_content(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 256, (33, 29, 3), dtype=np.uint8)
        for q in QUALITIES:
            assert (encode(img, q, entropy="scalar").payload
                    == encode(img, q, entropy="vector").payload)


class TestDecoderBitExact:
    @pytest.mark.parametrize("quality", QUALITIES)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_vector_decoder_matches_scalar(self, quality, shape):
        img = make_image(*shape, seed=sum(shape))
        stream = encode(img, quality)
        np.testing.assert_array_equal(decode(stream, entropy="scalar"),
                                      decode(stream, entropy="vector"))

    def test_all_personas_bit_exact(self):
        stream = encode(make_image(32, 32, seed=9), 90)
        for lib in DECODER_LIBRARIES:
            idct, chroma = DECODER_LIBRARIES[lib]
            np.testing.assert_array_equal(
                decode(stream, idct, chroma, entropy="scalar"),
                decode(stream, idct, chroma, entropy="vector"))

    def test_corrupt_stream_raises(self):
        stream = encode(make_image(16, 16), 90)
        bad = jpeg.JpegBitstream(stream.height, stream.width, stream.quality,
                                 stream.subsample, b"\x55" * 4,
                                 stream.n_blocks)
        # Truncated/garbage payloads fail loudly on both decode paths
        # (invalid Huffman prefix or exhausted bit budget).
        with pytest.raises((ValueError, IndexError)):
            decode(bad, entropy="vector")
        with pytest.raises((ValueError, IndexError)):
            decode(bad, entropy="scalar")


class TestBatchDecode:
    def test_batch_matches_per_image(self):
        streams = [encode(make_image(24, 24, seed=s), 90) for s in range(6)]
        for lib, (idct, chroma) in DECODER_LIBRARIES.items():
            per = np.stack([decode_with(s, lib) for s in streams])
            for entropy in ("vector", "scalar"):
                np.testing.assert_array_equal(
                    per, decode_batch(streams, idct, chroma, entropy))

    def test_mixed_geometry_falls_back_per_image(self):
        streams = [encode(make_image(16, 16), 90),
                   encode(make_image(16, 16, seed=2), 75)]   # mixed quality
        per = np.stack([decode(s) for s in streams])
        np.testing.assert_array_equal(per, decode_batch(streams))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            decode_batch([])


class TestDefaultSwitch:
    def test_default_is_vector(self):
        assert default_entropy() == "vector"

    def test_set_default_roundtrip(self):
        prev = set_default_entropy("scalar")
        try:
            assert default_entropy() == "scalar"
            img = make_image(16, 16)
            out = decode(encode(img, 90))          # runs the scalar coder
            assert out.shape == img.shape
        finally:
            set_default_entropy(prev)
        assert default_entropy() == "vector"

    def test_unknown_coder_rejected(self):
        with pytest.raises(ValueError):
            set_default_entropy("simd")
        with pytest.raises(ValueError):
            encode(make_image(8, 8), 90, entropy="simd")
        with pytest.raises(ValueError):
            decode(encode(make_image(8, 8), 90), entropy="simd")
