"""Tests for STFT variants and the toy TTS pipeline."""

import numpy as np
import pytest

from repro.audio import (FRAMES_PER_TOKEN, FastSpeechLite, TacotronLite,
                         TTSTrainConfig, mel_filterbank, mel_spectrogram,
                         mel_targets, stft_deployed, stft_reference,
                         train_tts, tts_mse)
from repro.data import make_tts_dataset, synthesize_utterance


class TestSTFT:
    def setup_method(self):
        rng = np.random.default_rng(0)
        t = np.arange(2048) / 4000.0
        self.sig = np.sin(2 * np.pi * 220 * t) + 0.3 * rng.standard_normal(2048)

    def test_shapes_match(self):
        a = stft_reference(self.sig)
        b = stft_deployed(self.sig)
        assert a.shape == b.shape

    def test_peak_at_signal_frequency(self):
        mag = stft_reference(np.sin(2 * np.pi * 500 * np.arange(1024) / 4000.0))
        # 500 Hz at fs 4000, n_fft 128 -> bin 16
        assert abs(int(np.mean(mag.argmax(axis=1))) - 16) <= 1

    def test_variants_close_but_not_identical(self):
        a = stft_reference(self.sig)
        b = stft_deployed(self.sig)
        rel = np.abs(a - b).mean() / a.mean()
        assert rel < 0.05          # same spectrogram to the eye...
        assert not np.array_equal(a, b)   # ...but not bit-identical

    def test_magnitude_nonnegative(self):
        assert (stft_deployed(self.sig) >= 0).all()

    def test_mel_filterbank_rows_cover_spectrum(self):
        fb = mel_filterbank(16, 128, 4000)
        assert fb.shape == (16, 65)
        assert (fb.sum(axis=1) > 0).all()

    def test_mel_spectrogram_shape(self):
        mel = mel_spectrogram(self.sig, "reference")
        assert mel.shape[1] == 16

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            mel_spectrogram(self.sig, "fftw")

    def test_variant_changes_mel_output(self):
        a = mel_spectrogram(self.sig, "reference")
        b = mel_spectrogram(self.sig, "deployed")
        assert not np.array_equal(a, b)


@pytest.fixture(scope="module")
def tts_setup():
    ds = make_tts_dataset(n=16, min_len=3, max_len=5, seed=0)
    model = FastSpeechLite(dim=16, seed=0)
    history = train_tts(model, ds, TTSTrainConfig(epochs=30, lr=5e-3))
    return ds, model, history


class TestTTS:
    def test_mel_targets_aligned(self):
        wave = synthesize_utterance(np.array([0, 1, 2]))
        t = mel_targets(wave, 3)
        assert t.shape[1] == 16
        assert abs(t.shape[0] - 3 * FRAMES_PER_TOKEN) <= 1

    def test_fastspeech_output_shape(self):
        m = FastSpeechLite(dim=16)
        out = m(np.array([0, 1, 2, 3]))
        assert out.shape == (4 * FRAMES_PER_TOKEN, 16)

    def test_tacotron_context_dependence(self):
        m = TacotronLite(dim=16, seed=1)
        a = m(np.array([3, 5])).data
        b = m(np.array([4, 5])).data
        # Same second token, different context -> different second block.
        assert not np.allclose(a[FRAMES_PER_TOKEN:], b[FRAMES_PER_TOKEN:])

    def test_training_reduces_loss(self, tts_setup):
        _, _, history = tts_setup
        assert history[-1] < history[0] * 0.5

    def test_trained_mse_beats_untrained(self, tts_setup):
        ds, model, _ = tts_setup
        fresh = FastSpeechLite(dim=16, seed=9)
        assert tts_mse(model, ds) < tts_mse(fresh, ds)

    def test_stft_noise_increases_mse(self, tts_setup):
        ds, model, _ = tts_setup
        clean = tts_mse(model, ds, stft_variant="reference")
        noisy = tts_mse(model, ds, stft_variant="deployed")
        assert noisy != clean

    def test_precision_noise_increases_mse(self, tts_setup):
        ds, model, _ = tts_setup
        clean = tts_mse(model, ds)
        int8 = tts_mse(model, ds, precision="int8")
        assert int8 >= clean
