"""Unit tests for the architecture-wise robustness aggregation."""

import math

import numpy as np
import pytest

from repro.core import (NoiseResult, family_summaries, render_family_table,
                        size_trend)


def fake_row(combined: float, deltas: dict[str, float],
             baseline: float = 80.0) -> dict:
    """Build a noise_row-shaped dict from per-noise mean deltas."""
    noises = {}
    for name, delta in deltas.items():
        if delta is None:
            noises[name] = None
        else:
            noises[name] = NoiseResult(name, baseline, [baseline - delta])
    return {"trained": baseline, "noises": noises, "combined": combined}


FAMILIES = {"r-small": "resnet", "r-big": "resnet", "m-one": "mobilenet"}

ROWS = {
    "r-small": fake_row(6.0, {"decoder": 2.0, "resize": 3.0}),
    "r-big": fake_row(4.0, {"decoder": 1.0, "resize": 2.0}),
    "m-one": fake_row(9.0, {"decoder": 4.0, "resize": 5.0, "ceil": None}),
}


class TestFamilySummaries:
    def test_grouping_and_members(self):
        summaries = family_summaries(ROWS, FAMILIES.get)
        assert set(summaries) == {"resnet", "mobilenet"}
        assert set(summaries["resnet"].models) == {"r-small", "r-big"}

    def test_aggregates(self):
        s = family_summaries(ROWS, FAMILIES.get)["resnet"]
        assert s.mean_combined == pytest.approx(5.0)
        assert s.mean_single == pytest.approx((2 + 3 + 1 + 2) / 4)
        assert s.worst_single == pytest.approx(3.0)
        assert s.spread == pytest.approx(1.0)

    def test_inapplicable_noises_skipped(self):
        s = family_summaries(ROWS, FAMILIES.get)["mobilenet"]
        assert s.mean_single == pytest.approx(4.5)   # the None is excluded
        assert s.spread == 0.0                       # single member

    def test_lightweight_family_ranks_most_fragile(self):
        text = render_family_table(family_summaries(ROWS, FAMILIES.get))
        first_data_line = text.splitlines()[2]
        assert first_data_line.startswith("mobilenet")


class TestSizeTrend:
    def test_negative_slope_when_big_models_are_robust(self):
        slope = size_trend(ROWS, ["r-small", "r-big"])
        assert slope == pytest.approx(-2.0)

    def test_missing_members_ignored(self):
        slope = size_trend(ROWS, ["r-small", "ghost", "r-big"])
        assert not math.isnan(slope)

    def test_single_point_is_nan(self):
        assert math.isnan(size_trend(ROWS, ["r-small"]))

    def test_flat_family(self):
        rows = {f"x{i}": fake_row(3.0, {"decoder": 1.0}) for i in range(4)}
        assert size_trend(rows, sorted(rows)) == pytest.approx(0.0)
