"""Backend executor tests: kernels, vendor options, and divergence bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.backend import (BACKEND_PRESETS, BackendOptions, DeploymentExecutor,
                           GraphBuilder, ReferenceExecutor, create_backend,
                           export_module)
from repro.backend import ops
from repro.models import create_model

RNG = np.random.default_rng(11)
X = RNG.normal(size=(2, 3, 32, 32))


def small_graph():
    model = create_model("resnet18x0.25", num_classes=5, seed=0)
    return export_module(model)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

class TestMatmulAccum:
    def test_fused_matches_numpy(self):
        a, b = RNG.normal(size=(5, 7)), RNG.normal(size=(7, 3))
        np.testing.assert_allclose(ops.matmul_accum(a, b), a @ b)

    def test_tiled_float64_close_but_order_sensitive(self):
        a, b = RNG.normal(size=(16, 64)), RNG.normal(size=(64, 16))
        tiled = ops.matmul_accum(a, b, accum_chunk=8)
        np.testing.assert_allclose(tiled, a @ b, rtol=1e-12)

    def test_tiled_float32_differs_in_low_bits(self):
        a = RNG.normal(size=(32, 256))
        b = RNG.normal(size=(256, 32))
        fused = ops.matmul_accum(a, b, dtype=np.float32)
        tiled = ops.matmul_accum(a, b, dtype=np.float32, accum_chunk=16)
        dev = np.abs(fused - tiled).max()
        assert 0 < dev < 1e-3          # different rounding order, tiny effect

    def test_chunk_larger_than_k_is_fused(self):
        a, b = RNG.normal(size=(4, 8)), RNG.normal(size=(8, 4))
        np.testing.assert_array_equal(
            ops.matmul_accum(a, b, dtype=np.float32, accum_chunk=100),
            ops.matmul_accum(a, b, dtype=np.float32))

    def test_batched_lhs(self):
        a, b = RNG.normal(size=(3, 4, 8)), RNG.normal(size=(8, 5))
        np.testing.assert_allclose(
            ops.matmul_accum(a, b, accum_chunk=3), a @ b, rtol=1e-12)


class TestActivationApproximations:
    @given(arrays(np.float64, array_shapes(max_dims=2, max_side=16),
                  elements=st.floats(-8, 8)))
    @settings(max_examples=50, deadline=None)
    def test_gelu_tanh_close_to_exact(self, x):
        assert np.abs(ops.gelu_tanh(x) - ops.gelu(x)).max() < 5e-3

    @given(arrays(np.float64, array_shapes(max_dims=2, max_side=16),
                  elements=st.floats(-30, 30)))
    @settings(max_examples=50, deadline=None)
    def test_hard_sigmoid_bounded_and_monotone_regions(self, x):
        h = ops.hard_sigmoid(x)
        assert np.all((h >= 0) & (h <= 1))
        assert np.all(h[x <= -3] == 0)
        assert np.all(h[x >= 3] == 1)

    @given(arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(2, 8)),
                  elements=st.floats(-20, 20)))
    @settings(max_examples=50, deadline=None)
    def test_exp_poly_relative_error(self, x):
        rel = np.abs(ops.exp_poly(x) - np.exp(x)) / np.exp(x)
        assert rel.max() < 1e-4

    @given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(2, 10)),
                  elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_softmax_fast_is_a_distribution(self, x):
        p = ops.softmax_fast(x)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-6)
        # And close to the exact softmax.
        assert np.abs(p - ops.softmax(x)).max() < 1e-4


class TestPoolKernels:
    def test_ceil_mode_changes_output_shape(self):
        x = RNG.normal(size=(1, 1, 8, 8))
        floor = ops.max_pool2d(x, 3, 2, 0, ceil_mode=False)
        ceil = ops.max_pool2d(x, 3, 2, 0, ceil_mode=True)
        assert floor.shape == (1, 1, 3, 3)
        assert ceil.shape == (1, 1, 4, 4)

    def test_maxpool_matches_nn_functional(self):
        from repro.nn import Tensor
        from repro.nn import functional as F
        x = RNG.normal(size=(2, 3, 9, 9))
        for ceil in (False, True):
            want = F.max_pool2d(Tensor(x), 3, 2, 1, ceil_mode=ceil).data
            got = ops.max_pool2d(x, 3, 2, 1, ceil_mode=ceil)
            np.testing.assert_allclose(got, want)

    def test_upsample_nearest_vs_bilinear_differ(self):
        x = RNG.normal(size=(1, 2, 4, 4))
        near = ops.upsample2d(x, 2, "nearest")
        bil = ops.upsample2d(x, 2, "bilinear")
        assert near.shape == bil.shape == (1, 2, 8, 8)
        assert np.abs(near - bil).max() > 0

    def test_upsample_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown upsample mode"):
            ops.upsample2d(X, 2, "cubic")


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class TestCreateBackend:
    def test_presets_all_construct(self):
        for name in BACKEND_PRESETS:
            create_backend(name)

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("tpu-v9")

    def test_custom_options(self):
        ex = create_backend(BackendOptions(dtype="float16"))
        assert isinstance(ex, DeploymentExecutor)
        assert ex.options.np_dtype == np.float16


class TestDeploymentBackends:
    def test_fp32_default_close_to_reference(self):
        g = small_graph()
        ref = ReferenceExecutor().run(g, X)
        dep = DeploymentExecutor(BackendOptions(dtype="float32",
                                                fuse_conv_bn=False)).run(g, X)
        assert np.abs(ref - dep).max() < 1e-4

    def test_fp16_storage_deviates_more_than_fp32(self):
        g = small_graph()
        ref = ReferenceExecutor().run(g, X)
        dev32 = np.abs(ref - create_backend(
            BackendOptions(dtype="float32")).run(g, X)).max()
        dev16 = np.abs(ref - create_backend("gpu-fp16").run(g, X)).max()
        assert dev16 > dev32

    def test_fusion_is_semantically_neutral_at_fp64(self):
        g = small_graph()
        ref = ReferenceExecutor().run(g, X)
        fused = DeploymentExecutor(BackendOptions(
            dtype="float64", fuse_conv_bn=True)).run(g, X)
        np.testing.assert_allclose(fused, ref, rtol=1e-8, atol=1e-9)

    def test_ceil_override_changes_intermediate_shapes(self):
        g = small_graph()
        ex = DeploymentExecutor(BackendOptions(dtype="float64",
                                               fuse_conv_bn=False,
                                               ceil_mode_override=True),
                                keep_intermediates=True)
        ex.run(g, X)
        ref = ReferenceExecutor(keep_intermediates=True)
        ref.run(g, X)
        assert ex.intermediates["model.pool"].shape \
            != ref.intermediates["model.pool"].shape

    def test_predictions_mostly_stable_under_fp16(self):
        g = small_graph()
        ref = ReferenceExecutor().run(g, X).argmax(axis=1)
        fp16 = create_backend("gpu-fp16").run(g, X).argmax(axis=1)
        # Tiny logits gaps may flip, but wholesale prediction changes would
        # indicate a kernel bug rather than precision noise.
        assert (ref == fp16).mean() >= 0.5

    def test_intermediates_only_kept_on_request(self):
        g = small_graph()
        ex = ReferenceExecutor()
        ex.run(g, X)
        assert ex.intermediates == {}

    def test_deployment_outputs_use_backend_dtype(self):
        g = small_graph()
        out = create_backend("gpu-fp16").run(g, X)
        assert out.dtype == np.float16


class TestReferenceOps:
    """Direct coverage of ops the zoo graphs do not exercise."""

    def _run_single(self, op, x, attrs=None, executor=None):
        b = GraphBuilder("single")
        out = b.emit(op, ["x"], attrs=attrs or {})
        g = b.finish(out)
        return (executor or ReferenceExecutor()).run(g, x)

    def test_softmax_node(self):
        out = self._run_single("softmax", RNG.normal(size=(4, 9)),
                               attrs=dict(axis=-1))
        np.testing.assert_allclose(out.sum(axis=-1), 1.0)

    def test_clip_node(self):
        out = self._run_single("clip", RNG.normal(size=(10,)) * 10,
                               attrs=dict(lo=-1.0, hi=1.0))
        assert out.min() >= -1 and out.max() <= 1

    def test_quant_dequant_roundtrip(self):
        b = GraphBuilder("qdq")
        q = b.emit("quantize_linear", ["x"],
                   attrs=dict(scale=0.05, zero_point=0))
        dq = b.emit("dequantize_linear", [q],
                    attrs=dict(scale=0.05, zero_point=0))
        g = b.finish(dq)
        x = RNG.uniform(-3, 3, size=(64,))
        out = ReferenceExecutor().run(g, x)
        assert np.abs(out - x).max() <= 0.05 / 2 + 1e-12

    def test_constant_node(self):
        b = GraphBuilder("const")
        c = b.emit("constant", [], attrs=dict(value=np.ones((2, 2))))
        out = b.emit("add", ["x", c])
        g = b.finish(out)
        np.testing.assert_array_equal(
            ReferenceExecutor().run(g, np.zeros((2, 2))), np.ones((2, 2)))

    def test_reshape_zero_copies_dim(self):
        out = self._run_single("reshape", RNG.normal(size=(4, 6)),
                               attrs=dict(shape=(0, -1, 1, 1)))
        assert out.shape == (4, 6, 1, 1)

    def test_softmax_fast_option_applies(self):
        x = RNG.normal(size=(4, 9))
        exact = self._run_single("softmax", x, attrs=dict(axis=-1))
        fast = self._run_single(
            "softmax", x, attrs=dict(axis=-1),
            executor=DeploymentExecutor(BackendOptions(dtype="float64",
                                                       fast_softmax=True)))
        dev = np.abs(exact - fast).max()
        assert 0 < dev < 1e-4
