"""Tests for the mitigation registry: parity, identity, and sweep plumbing.

PR 9 promotes mitigations to first-class citizens.  This suite pins the
three contracts that migration must not break:

1. **Parity** — training/evaluating through the registered hooks is
   bit-identical to the legacy direct-call API (which now only warns).
2. **Sweep determinism** — mitigated sweeps return the same bytes in
   serial, process and shared modes, and the episodic TENT protocol is
   invariant to how the dataset is sharded (at fixed batch geometry).
3. **Ledger identity** — mitigation identity folds into the cell digest
   and the run manifest, so mitigated and unmitigated results can never
   splice, and resuming with a different mitigation set is an error.
"""

import threading

import numpy as np
import pytest

import repro.nn as nn
from repro.core import (TRAIN_CONFIG, BenchmarkSession, EvalCache, RunStore,
                        Session, SweepEngine, config_digest, get_task,
                        ledger_table, preprocess_dataset, run_manifest)
from repro.core.mitigations import (MitigationSpec, checkpoint_name,
                                    get_mitigation, mitigated_digest,
                                    mitigation_identity, mitigation_names,
                                    mitigation_partials, mitigation_stage,
                                    mitigation_train, register_mitigation,
                                    split_mitigation_name,
                                    temporary_mitigation)
from repro.core.runstore import expected_cells
from repro.data import make_classification_dataset
from repro.mitigation import (adversarial_train, evaluate_with_tent,
                              get_augmentation, tent_adapt, train_with_mix)
from repro.mitigation.tent import tent_episode
from repro.models import create_model


@pytest.fixture(scope="module")
def small_ds():
    return make_classification_dataset(n=80, native_size=40, input_size=32,
                                       seed=0)


@pytest.fixture(scope="module")
def trained_cnn(small_ds):
    from repro.core import train_classification_model
    return train_classification_model(
        "resnet18x0.25", small_ds,
        nn.TrainConfig(epochs=4, batch_size=32, lr=0.08))


@pytest.fixture(scope="module")
def tiny_cls():
    ds = make_classification_dataset(n=30, native_size=40, input_size=32,
                                     seed=0)
    return ds.split(22)


def _same_weights(a, b):
    sa, sb = a.state_dict(), b.state_dict()
    assert set(sa) == set(sb)
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k], err_msg=k)


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_builtins_registered(self):
        assert {"mix", "augment", "adversarial", "tent"} <= set(
            mitigation_names())

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="tent"):
            get_mitigation("bn_recalibrate")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="momentum"):
            mitigation_identity("tent", momentum=0.9)

    def test_identity_merges_defaults(self):
        ident = mitigation_identity("tent", steps=4)
        assert ident == {"name": "tent",
                         "params": {"steps": 4, "lr": 1e-3}}

    def test_augment_requires_strategy_arg(self):
        with pytest.raises(ValueError, match="suffix"):
            mitigation_identity("augment")
        with pytest.raises(ValueError):
            mitigation_identity("augment:randaugment")
        assert mitigation_identity("augment:augmix")["name"] == \
            "augment:augmix"

    def test_split_name(self):
        assert split_mitigation_name("augment:augmix") == ("augment",
                                                           "augmix")
        assert split_mitigation_name("tent") == ("tent", None)

    def test_duplicate_and_bad_names_rejected(self):
        class Dup(MitigationSpec):
            name = "tent"
            stage = "test"

        with pytest.raises(ValueError, match="already registered"):
            register_mitigation(Dup)

        class Colon(MitigationSpec):
            name = "a:b"

        with pytest.raises(ValueError):
            register_mitigation(Colon)

    def test_temporary_mitigation_scopes_registration(self):
        class Noop(MitigationSpec):
            name = "noop"
            stage = "train"

        with temporary_mitigation(Noop):
            assert "noop" in mitigation_names()
            assert mitigation_stage("noop") == "train"
        assert "noop" not in mitigation_names()

    def test_stage_from_identity_or_name(self):
        assert mitigation_stage(mitigation_identity("tent")) == "test"
        assert mitigation_stage("mix") == "train"

    def test_wrong_stage_dispatch_raises(self, small_ds):
        adapter = get_task("cls")
        with pytest.raises(ValueError, match="train-time"):
            list(mitigation_partials(mitigation_identity("mix"), adapter,
                                     None, small_ds, TRAIN_CONFIG,
                                     [(0, 1)]))
        with pytest.raises(ValueError, match="test-time"):
            mitigation_train(mitigation_identity("tent"), adapter, None,
                             small_ds)


class TestIdentityDigests:
    def test_no_mitigation_digest_is_plain_config_digest(self):
        cfg = TRAIN_CONFIG.with_(decoder="pil")
        assert mitigated_digest(cfg, None) == config_digest(cfg)

    def test_mitigation_folds_into_digest(self):
        cfg = TRAIN_CONFIG.with_(decoder="pil")
        tent = mitigation_identity("tent")
        assert mitigated_digest(cfg, tent) != config_digest(cfg)
        assert (mitigated_digest(cfg, tent)
                != mitigated_digest(cfg, mitigation_identity("tent",
                                                             steps=2)))
        assert (mitigated_digest(cfg, tent)
                == mitigated_digest(cfg, mitigation_identity("tent")))

    def test_checkpoint_name_is_param_sensitive_and_fs_safe(self):
        a = checkpoint_name(mitigation_identity("augment:augmix"))
        b = checkpoint_name(mitigation_identity("augment:augmix",
                                                lr=0.2))
        assert a.startswith("weights-augment-augmix-")
        assert a.endswith(".npz") and ":" not in a
        assert a != b


# ---------------------------------------------------------------------------
# legacy-API parity


class TestLegacyParity:
    def test_mix_registered_matches_legacy(self, small_ds):
        pool = ["pillow-bilinear", "cv-nearest"]
        cfg = nn.TrainConfig(epochs=2, batch_size=32, lr=0.08,
                             weight_decay=1e-4, seed=0)
        with pytest.warns(DeprecationWarning):
            legacy = train_with_mix("resnet18x0.25", small_ds,
                                    resizes=pool, cfg=cfg, seed=0)
        new = mitigation_train(mitigation_identity("mix", resizes=pool),
                               None, None, small_ds,
                               model_name="resnet18x0.25", seed=0, epochs=2)
        _same_weights(legacy, new)

    def test_augment_registered_matches_legacy(self, small_ds):
        cfg = nn.TrainConfig(epochs=2, batch_size=32, lr=0.1,
                             weight_decay=1e-4, seed=0)
        build = lambda: create_model("resnet18x0.25",
                                     num_classes=small_ds.num_classes,
                                     seed=0)
        legacy = build()
        x = preprocess_dataset(small_ds.streams, small_ds.input_size,
                               TRAIN_CONFIG)
        nn.train_classifier(legacy, x, small_ds.labels, cfg,
                            transform=get_augmentation("augmix"))
        new = mitigation_train(mitigation_identity("augment:augmix"),
                               None, build(), small_ds, seed=0, epochs=2)
        _same_weights(legacy, new)

    def test_adversarial_registered_matches_legacy(self, small_ds):
        cfg = nn.TrainConfig(epochs=2, batch_size=32, lr=0.05,
                             weight_decay=1e-4, seed=0)
        build = lambda: create_model("resnet18x0.25",
                                     num_classes=small_ds.num_classes,
                                     seed=0)
        legacy = build()
        x = preprocess_dataset(small_ds.streams, small_ds.input_size,
                               TRAIN_CONFIG)
        with pytest.warns(DeprecationWarning):
            adversarial_train(legacy, x, small_ds.labels, cfg,
                              epsilon=8 / 255, pgd_steps=1)
        new = mitigation_train(
            mitigation_identity("adversarial", pgd_steps=1), None, build(),
            small_ds, seed=0, epochs=2)
        _same_weights(legacy, new)

    def test_tent_episode_matches_legacy_on_single_batch(self, trained_cnn,
                                                         small_ds):
        """Anchor: when the whole input is one batch, episodic == legacy."""
        x = preprocess_dataset(small_ds.streams[:16], 32, TRAIN_CONFIG)
        with pytest.warns(DeprecationWarning):
            legacy = tent_adapt(trained_cnn, x, steps=2, lr=1e-2,
                                batch_size=len(x))
        res = tent_episode(trained_cnn, x, steps=2, lr=1e-2)
        assert res.adapted
        _same_weights(legacy, res.model)

    def test_evaluate_with_tent_still_works_but_warns(self, trained_cnn,
                                                      small_ds):
        x = preprocess_dataset(small_ds.streams[:16], 32, TRAIN_CONFIG)
        with pytest.warns(DeprecationWarning):
            acc = evaluate_with_tent(trained_cnn, x, small_ds.labels[:16])
        assert 0.0 <= acc <= 100.0


class TestTentNoOp:
    def test_no_batchnorm_is_explicit_noop(self, small_ds):
        vit = create_model("vit-tiny", num_classes=10, seed=0)
        x = preprocess_dataset(small_ds.streams[:8], 32, TRAIN_CONFIG)
        res = tent_episode(vit, x)
        assert res.adapted is False
        assert res.model is vit
        assert "BatchNorm" in res.reason
        # The legacy shim keeps its silent-passthrough contract.
        with pytest.warns(DeprecationWarning):
            assert tent_adapt(vit, x) is vit

    def test_quantised_graph_is_explicit_noop(self, trained_cnn, small_ds):
        from repro.nn.quant import quantize_model_fp16
        x = preprocess_dataset(small_ds.streams[:8], 32, TRAIN_CONFIG)
        quant = quantize_model_fp16(trained_cnn)
        res = tent_episode(quant, x)
        assert res.adapted is False
        assert res.model is quant
        assert "differentiable" in res.reason

    def test_shard_split_invariance_at_fixed_geometry(self, trained_cnn,
                                                      tiny_cls):
        """Episodic TENT partials merge to the same metric no matter how
        the dataset is cut into shards, as long as batch_size is fixed —
        the property the streaming sweep and shared workers rely on."""
        _, val = tiny_cls
        adapter = get_task("cls")
        tent = mitigation_identity("tent", steps=1, lr=1e-2)
        cfg = TRAIN_CONFIG.with_(resize_method="cv-nearest")

        def run(bounds):
            acc = adapter.accumulator(val)
            for _, _, part in mitigation_partials(tent, adapter,
                                                  trained_cnn, val, cfg,
                                                  bounds, batch_size=4):
                acc.merge(part)
            return acc.value()

        whole = run([(0, len(val))])
        halves = run([(0, 4), (4, len(val))])
        assert whole == halves


# ---------------------------------------------------------------------------
# sweep-mode determinism


def _rows_repr(result):
    out = {}
    for label, row in result.rows().items():
        out[label] = (row["trained"],
                      {n: (list(r.values) if r is not None else None)
                       for n, r in row["noises"].items()})
    return out


def _session(val, **store_kw):
    s = (Session().task("cls").model("mcunet-293kb").dataset(val)
         .noises("color", "precision").combined(False)
         .mitigate("tent", steps=1, lr=1e-2))
    if store_kw:
        s.store(**store_kw)
    return s


class TestSweepModeParity:
    def test_serial_process_and_shared_are_byte_identical(
            self, tiny_cls, tmp_path, monkeypatch):
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        _, val = tiny_cls
        serial = _rows_repr(_session(val).run())
        proc = _rows_repr(_session(val).workers(2, "process").run())
        shared = _rows_repr(
            _session(val, path=tmp_path, run_id="shared")
            .workers(None, "shared").run())
        assert serial == proc
        assert serial == shared
        assert set(serial) == {"mcunet-293kb", "mcunet-293kb+tent"}

    def test_session_rejects_duplicate_and_wrong_task(self, tiny_cls):
        _, val = tiny_cls
        s = Session().task("cls").model("mcunet-293kb").dataset(val)
        s.mitigate("tent")
        with pytest.raises(ValueError, match="already"):
            s.mitigate("tent")
        with pytest.raises(ValueError, match="unknown mitigation"):
            s.mitigate("fog")


# ---------------------------------------------------------------------------
# ledger identity


class Raw:
    def __init__(self, b):
        self._b = b

    def tobytes(self):
        return self._b


class FakeDataset:
    def __init__(self, payloads=(b"stream-a", b"stream-b")):
        self.streams = [Raw(p) for p in payloads]


class FakeModel:
    pass


class CountingEvaluator:
    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, model, ds, cfg):
        with self.lock:
            self.calls.append(cfg)
        return 90.0 - 2.0 * (cfg.decoder != "dali")


class TestLedgerIdentity:
    def _manifest(self, mitigations):
        return run_manifest(task="cls", model="fake", seed=0,
                            noises=["decoder"], metric="ACC",
                            mitigations=mitigations)

    def test_expected_cells_scales_with_mitigation_axis(self):
        clean = self._manifest([])
        both = self._manifest([mitigation_identity("tent"),
                               mitigation_identity("mix")])
        assert expected_cells(both) == 3 * expected_cells(clean)

    def test_resume_with_different_mitigations_raises(self, tmp_path):
        store = RunStore(tmp_path)
        store.create(self._manifest([mitigation_identity("tent")]),
                     run_id="r")
        with pytest.raises(ValueError, match="mitigations"):
            store.open_or_create(self._manifest([]), run_id="r")

    def test_legacy_manifest_without_field_still_resumes(self, tmp_path):
        manifest = run_manifest(task="cls", model="fake", seed=0,
                                noises=["decoder"], metric="ACC")
        store = RunStore(tmp_path)
        store.create(manifest, run_id="r")
        assert store.open_or_create(dict(manifest), run_id="r") is not None

    def test_mitigated_cells_never_satisfy_unmitigated_lookups(
            self, tmp_path):
        tent = mitigation_identity("tent")
        ledger = RunStore(tmp_path).open_or_create(
            self._manifest([tent]), run_id="r")
        model, ds = FakeModel(), FakeDataset()
        SweepEngine(eval_cache=EvalCache(), ledger=ledger, model_key="fake",
                    mitigation=tent).sweep_noise(
            CountingEvaluator(), model, ds, "decoder")
        before = ledger.counts()["ok"]
        assert before > 0
        # A clean engine over the same ledger must recompute everything...
        ev = CountingEvaluator()
        SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                    model_key="fake").sweep_noise(ev, model, ds, "decoder")
        assert len(ev.calls) == before
        # ...while a same-mitigation engine resumes purely from disk.
        ev2 = CountingEvaluator()
        SweepEngine(eval_cache=EvalCache(), ledger=ledger, model_key="fake",
                    mitigation=tent).sweep_noise(ev2, model, ds, "decoder")
        assert ev2.calls == []

    def test_ledger_table_renders_one_row_per_mitigation(self, tmp_path):
        tent = mitigation_identity("tent")
        store = RunStore(tmp_path)
        ledger = store.open_or_create(self._manifest([tent]), run_id="r")
        model, ds = FakeModel(), FakeDataset()
        for mit in (None, tent):
            SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                        model_key="fake", mitigation=mit).sweep_noise(
                CountingEvaluator(), model, ds, "decoder")
        text = ledger_table(store.open("r"))
        assert "fake" in text and "fake+tent" in text
