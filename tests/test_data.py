"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (CLASS_NAMES, NUM_CLASSES, make_classification_dataset,
                        make_detection_dataset, make_nlp_suite,
                        make_segmentation_dataset, make_tts_dataset,
                        render_class_image, synthesize_utterance)
from repro.data import shapes
from repro.image import decode


class TestShapes:
    def test_masks_in_unit_range(self):
        rng = np.random.default_rng(0)
        for mask in [shapes.disk(16, 16, 8, 8, 5),
                     shapes.ring(16, 16, 8, 8, 5),
                     shapes.rectangle(16, 16, 8, 8, 4, 4),
                     shapes.triangle(16, 16, 8, 8, 5),
                     shapes.cross(16, 16, 8, 8, 5),
                     shapes.stripes(16, 16, 0.3, 4),
                     shapes.checkerboard(16, 16, 4),
                     shapes.blob(16, 16, rng)]:
            assert mask.shape == (16, 16)
            assert mask.min() >= 0.0 and mask.max() <= 1.0 + 1e-9

    def test_disk_interior_exterior(self):
        m = shapes.disk(20, 20, 10, 10, 6)
        assert m[10, 10] == 1.0
        assert m[0, 0] == 0.0

    def test_disk_edge_antialiased(self):
        m = shapes.disk(20, 20, 10.0, 10.0, 5.2)
        frac = ((m > 0) & (m < 1)).sum()
        assert frac > 0  # soft boundary exists

    def test_rectangle_rotation_changes_mask(self):
        a = shapes.rectangle(20, 20, 10, 10, 6, 3, angle=0.0)
        b = shapes.rectangle(20, 20, 10, 10, 6, 3, angle=0.6)
        assert not np.allclose(a, b)

    def test_paste_composites(self):
        canvas = np.zeros((4, 4, 3))
        mask = np.ones((4, 4))
        out = shapes.paste(canvas, mask, np.array([10.0, 20.0, 30.0]))
        np.testing.assert_array_equal(out[0, 0], [10, 20, 30])


class TestClassificationDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_classification_dataset(n=40, native_size=32, seed=0)

    def test_sizes_and_types(self, ds):
        assert len(ds) == 40
        assert ds.images.shape == (40, 32, 32, 3)
        assert ds.images.dtype == np.uint8
        assert len(ds.streams) == 40

    def test_labels_balanced(self, ds):
        counts = np.bincount(ds.labels, minlength=NUM_CLASSES)
        assert counts.min() >= 3

    def test_streams_decode_close_to_images(self, ds):
        out = decode(ds.streams[0])
        err = np.abs(out.astype(int) - ds.images[0].astype(int))
        assert err.mean() < 8.0

    def test_deterministic_given_seed(self):
        a = make_classification_dataset(n=8, native_size=24, seed=5)
        b = make_classification_dataset(n=8, native_size=24, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_different_data(self):
        a = make_classification_dataset(n=8, native_size=24, seed=1)
        b = make_classification_dataset(n=8, native_size=24, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_split(self, ds):
        tr, va = ds.split(30)
        assert len(tr) == 30 and len(va) == 10

    def test_classes_visually_distinct(self):
        """Mean inter-class distance must dominate intra-class distance."""
        rng = np.random.default_rng(3)
        per_class = [np.stack([render_class_image(c, 32, rng).astype(float)
                               for _ in range(4)]) for c in range(NUM_CLASSES)]
        means = np.stack([p.mean(axis=0) for p in per_class])
        inter = np.abs(means[:, None] - means[None, :]).mean()
        assert inter > 5.0

    def test_all_class_names_render(self):
        rng = np.random.default_rng(0)
        for c, name in enumerate(CLASS_NAMES):
            img = render_class_image(c, 24, rng)
            assert img.shape == (24, 24, 3)

    def test_invalid_label_raises(self):
        with pytest.raises(ValueError):
            render_class_image(10, 24, np.random.default_rng(0))


class TestDetectionDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_detection_dataset(n=12, size=48, seed=0)

    def test_shapes(self, ds):
        assert len(ds) == 12
        assert ds.native_size == 60          # 48 * 1.25
        assert ds.images.shape == (12, 60, 60, 3)

    def test_gt_boxes_in_input_coordinates(self, ds):
        for gt in ds.gt_boxes:
            assert gt.shape[1] == 5
            cls, x1, y1, x2, y2 = gt.T if len(gt) else (np.empty(0),) * 5
            if len(gt):
                assert (x2 > x1).all() and (y2 > y1).all()
                assert (x1 >= -1).all() and (x2 <= 49).all()
                assert set(np.unique(cls)).issubset({0, 1, 2})

    def test_native_scale_one_keeps_native(self):
        ds = make_detection_dataset(n=2, size=32, seed=1, native_scale=1.0)
        assert ds.images.shape[1] == 32

    def test_at_least_one_object_usually(self, ds):
        n_obj = [len(g) for g in ds.gt_boxes]
        assert np.mean(n_obj) >= 1.0

    def test_deterministic(self):
        a = make_detection_dataset(n=4, size=32, seed=7)
        b = make_detection_dataset(n=4, size=32, seed=7)
        np.testing.assert_array_equal(a.images, b.images)


class TestSegmentationDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return make_segmentation_dataset(n=8, size=40, seed=0)

    def test_shapes(self, ds):
        assert ds.images.shape == (8, 50, 50, 3)    # native = 40 * 1.25
        assert ds.labels.shape == (8, 40, 40)       # labels at input res

    def test_labels_in_range(self, ds):
        assert ds.labels.min() >= 0 and ds.labels.max() <= 3

    def test_road_band_at_bottom(self, ds):
        # Last row should mostly be road (label 1)
        bottom = ds.labels[:, -1, :]
        assert (bottom == 1).mean() > 0.9

    def test_sky_at_top(self, ds):
        top = ds.labels[:, 0, :]
        assert (top == 0).mean() > 0.5


class TestNLPSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return make_nlp_suite(n_per_task=20, seed=0)

    def test_four_tasks(self, suite):
        _, tasks = suite
        assert set(tasks) == {"piqa", "lambada", "hellaswag", "winogrande"}

    def test_task_sizes(self, suite):
        _, tasks = suite
        for t in tasks.values():
            assert len(t) == 20
            assert len(t.prefixes) == len(t.choices) == 20

    def test_answers_within_choice_count(self, suite):
        _, tasks = suite
        for t in tasks.values():
            for i, ans in enumerate(t.answers):
                assert 0 <= ans < len(t.choices[i])

    def test_recall_rule_consistent(self, suite):
        grammar, _ = suite
        rng = np.random.default_rng(0)
        seq = grammar.sample_recall(16, rng)
        marker_pos = int(np.argmax(seq == grammar.marker))
        payload = seq[marker_pos + 1]
        assert seq[-1] == grammar.perm[payload]

    def test_corpus_shape_and_range(self, suite):
        grammar, _ = suite
        corpus = grammar.corpus(n_sequences=10, length=16)
        assert corpus.shape == (10, 16)
        assert corpus.min() >= 0 and corpus.max() < grammar.vocab_size

    def test_chain_respects_successor_structure(self, suite):
        grammar, _ = suite
        rng = np.random.default_rng(1)
        seq = grammar.sample_chain(50, rng)
        for a, b in zip(seq[:-1], seq[1:]):
            assert b in grammar.successors[a]


class TestTTSDataset:
    def test_dataset_sizes(self):
        ds = make_tts_dataset(n=5, seed=0)
        assert len(ds) == 5
        for toks, wave in zip(ds.token_seqs, ds.waveforms):
            assert len(wave) == len(toks) * 256

    def test_waveform_bounded(self):
        wave = synthesize_utterance(np.array([0, 5, 11]))
        assert np.abs(wave).max() < 4.0

    def test_deterministic_without_jitter(self):
        a = synthesize_utterance(np.array([1, 2, 3]))
        b = synthesize_utterance(np.array([1, 2, 3]))
        np.testing.assert_array_equal(a, b)

    def test_different_tokens_different_audio(self):
        a = synthesize_utterance(np.array([0]))
        b = synthesize_utterance(np.array([7]))
        assert not np.allclose(a, b)
