"""CLI tests: every command via repro.cli.main with captured stdout."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_help_lists_commands(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        for cmd in ("list-noises", "sweep", "backend-diff", "report"):
            assert cmd in out


class TestListCommands:
    def test_list_noises(self, capsys):
        code, out = run_cli(capsys, "list-noises")
        assert code == 0
        for noise in ("decoder", "resize", "ceil_mode", "proposal"):
            assert noise in out

    def test_list_noises_variants(self, capsys):
        code, out = run_cli(capsys, "list-noises", "--variants")
        assert code == 0
        assert "deployment variants" in out
        assert "cv-nearest" in out

    def test_list_models(self, capsys):
        code, out = run_cli(capsys, "list-models")
        assert code == 0
        assert "resnet-50" in out and "swin-base" in out
        assert out.count("\n") >= 26          # all zoo rows + header

    def test_list_models_params_sorted_by_capacity(self, capsys):
        code, out = run_cli(capsys, "list-models", "--params")
        assert code == 0
        rows = {line.split()[0]: int(line.split()[-1])
                for line in out.splitlines()[2:]}
        assert rows["resnet-50"] > rows["resnet18x0.25"]

    def test_list_backends(self, capsys):
        code, out = run_cli(capsys, "list-backends")
        assert code == 0
        for preset in ("reference", "gpu-fp16", "dsp", "npu-bilinear"):
            assert preset in out
        assert "fuse_conv_bn" in out


class TestBackendDiff:
    def test_diff_report_printed(self, capsys):
        code, out = run_cli(capsys, "backend-diff", "--model", "resnet18x0.25",
                            "--backend", "gpu-fp16", "--batch", "2", "--top", "3")
        assert code == 0
        assert "worst by relative error" in out

    def test_reference_vs_reference_rejected(self, capsys):
        code, out = run_cli(capsys, "backend-diff", "--backend", "reference")
        assert code == 2
        assert "error" in out

    def test_unknown_backend_rejected(self, capsys):
        code, out = run_cli(capsys, "backend-diff", "--backend", "fpga")
        assert code == 2

    def test_vit_diff_supported(self, capsys):
        """Transformers export too — attention softmax is diffable."""
        code, out = run_cli(capsys, "backend-diff", "--model", "vit-tiny",
                            "--backend", "dsp", "--batch", "2")
        assert code == 0
        assert "softmax" in out or "worst by relative error" in out

    def test_unknown_model_graceful(self, capsys):
        code, out = run_cli(capsys, "backend-diff", "--model", "alexnet-9000")
        assert code == 2
        assert "error" in out


class TestVisualize:
    def test_heatmaps_printed(self, capsys):
        code, out = run_cli(capsys, "visualize")
        assert code == 0
        for panel in ("decode", "resize", "color", "int8"):
            assert f"== {panel} ==" in out

    def test_panels_saved(self, capsys, tmp_path):
        code, out = run_cli(capsys, "visualize", "--out", str(tmp_path / "p"))
        assert code == 0
        saved = sorted(f.name for f in (tmp_path / "p").glob("*.npy"))
        assert saved == ["color.npy", "decode.npy", "int8.npy", "resize.npy"]
        panel = np.load(tmp_path / "p" / "resize.npy")
        assert panel.dtype == np.uint8


class TestReport:
    def test_missing_results_dir(self, capsys, tmp_path):
        code, out = run_cli(capsys, "report", "--results", str(tmp_path))
        assert code == 2
        assert "error" in out

    def test_tables_ordered_and_concatenated(self, capsys, tmp_path):
        for stem in ("table10_z", "table2_b", "table1_a", "fig3_c", "ablation_x"):
            (tmp_path / f"{stem}.txt").write_text(f"body of {stem}")
        code, out = run_cli(capsys, "report", "--results", str(tmp_path))
        assert code == 0
        order = [line[3:] for line in out.splitlines() if line.startswith("## ")]
        assert order == ["table1_a", "table2_b", "table10_z", "fig3_c",
                         "ablation_x"]

    def test_report_to_file(self, capsys, tmp_path):
        (tmp_path / "table1_a.txt").write_text("hello")
        out_file = tmp_path / "combined.md"
        code, out = run_cli(capsys, "report", "--results", str(tmp_path),
                            "--out", str(out_file))
        assert code == 0
        assert "hello" in out_file.read_text()


class TestSweep:
    """End-to-end sweep at the smallest viable scale (slow-ish but real)."""

    def test_bad_noise_rejected(self, capsys):
        code, out = run_cli(capsys, "sweep", "--noises", "gamma-rays",
                            "--n", "8", "--epochs", "1")
        assert code == 2
        assert "unknown classification noise" in out

    def test_sweep_prints_table(self, capsys):
        code, out = run_cli(capsys, "sweep", "--model", "mcunet-293kb",
                            "--n", "40", "--epochs", "2",
                            "--noises", "color", "--no-combined")
        assert code == 0
        assert "SysNoise sweep" in out
        assert "mcunet-293kb" in out

    def test_worst_case_prints_curve(self, capsys):
        code, out = run_cli(capsys, "worst-case", "--model", "mcunet-293kb",
                            "--n", "40", "--epochs", "2")
        assert code == 0
        assert "cumulative" in out


class TestExport:
    def test_export_writes_graph(self, capsys, tmp_path):
        out = tmp_path / "model.npz"
        code, text = run_cli(capsys, "export", "--model", "resnet18x0.25",
                             "--out", str(out))
        assert code == 0 and out.exists()
        from repro.backend import load_graph
        graph = load_graph(out)
        assert len(graph.nodes) > 10

    def test_export_optimized_is_smaller(self, capsys, tmp_path):
        from repro.backend import load_graph
        plain, opt = tmp_path / "a.npz", tmp_path / "b.npz"
        run_cli(capsys, "export", "--model", "resnet18x0.25",
                "--out", str(plain))
        run_cli(capsys, "export", "--model", "resnet18x0.25",
                "--out", str(opt), "--optimize")
        assert len(load_graph(opt).nodes) < len(load_graph(plain).nodes)

    def test_export_with_checkpoint(self, capsys, tmp_path):
        from repro.backend import load_graph
        from repro.models import create_model
        from repro.nn import save_checkpoint
        model = create_model("resnet18x0.25", seed=7)
        for p in model.parameters():
            p.data[...] = 0.125
        ckpt = save_checkpoint(model, tmp_path / "w.npz")
        out = tmp_path / "g.npz"
        code, _ = run_cli(capsys, "export", "--model", "resnet18x0.25",
                          "--out", str(out), "--checkpoint", str(ckpt))
        assert code == 0
        graph = load_graph(out)
        conv_w = next(v for k, v in graph.initializers.items()
                      if k.endswith("stem.0.weight"))
        assert np.all(conv_w == 0.125)

    def test_export_missing_checkpoint_graceful(self, capsys, tmp_path):
        code, out = run_cli(capsys, "export", "--model", "resnet18x0.25",
                            "--out", str(tmp_path / "g.npz"),
                            "--checkpoint", str(tmp_path / "nope.npz"))
        assert code == 2 and "error" in out


class TestInteraction:
    def test_unknown_noise_rejected(self, capsys):
        code, out = run_cli(capsys, "interaction", "--noises", "tachyons",
                            "--n", "8", "--epochs", "1")
        assert code == 2
        assert "unknown noise" in out

    def test_interaction_matrix_printed(self, capsys):
        code, out = run_cli(capsys, "interaction", "--model", "mcunet-293kb",
                            "--n", "40", "--epochs", "2",
                            "--noises", "decoder,color")
        assert code == 0
        assert "pairwise" in out and "strongest" in out


class TestProfile:
    def test_profile_printed(self, capsys):
        code, out = run_cli(capsys, "profile", "--model", "resnet18x0.25",
                            "--top", "4")
        assert code == 0
        assert "MFLOPs" in out and "conv2d" in out

    def test_profile_with_shapes(self, capsys):
        code, out = run_cli(capsys, "profile", "--model", "vit-tiny",
                            "--shapes")
        assert code == 0
        assert "(N, 3, 32, 32)" in out

    def test_profile_with_timing(self, capsys):
        code, out = run_cli(capsys, "profile", "--model", "mcunet-293kb",
                            "--time")
        assert code == 0
        assert "ms/sample" in out

    def test_profile_unknown_model(self, capsys):
        code, out = run_cli(capsys, "profile", "--model", "gpt-7")
        assert code == 2 and "error" in out


class TestExportInt8:
    def test_export_int8_inserts_qdq(self, capsys, tmp_path):
        from repro.backend import load_graph
        out = tmp_path / "q.npz"
        code, _ = run_cli(capsys, "export", "--model", "resnet18x0.25",
                          "--out", str(out), "--optimize", "--int8")
        assert code == 0
        graph = load_graph(out)
        assert any(n.op == "quantize_linear" for n in graph.nodes)
        assert graph.name.endswith(".int8")
