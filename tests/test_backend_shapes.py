"""Shape inference and profiler tests (repro.backend.shapes / .profile)."""

import numpy as np
import pytest

from repro.backend import (GraphBuilder, ReferenceExecutor, ShapeError,
                           export_module, infer_shapes, profile_graph,
                           render_profile, summary_with_shapes)
from repro.models import create_model

X = np.random.default_rng(3).normal(size=(2, 3, 32, 32))

ZOO = ["resnet18x0.25", "resnet-50", "mobilenetv2-0.5", "efficientnet-b0",
       "regnetx-400m", "mcunet-293kb", "vit-tiny", "swin-base"]


@pytest.mark.parametrize("name", ZOO)
def test_inference_matches_execution(name):
    """Static shapes must equal runtime shapes for every node in the zoo."""
    graph = export_module(create_model(name, num_classes=5, seed=0), name)
    shapes = infer_shapes(graph)
    ex = ReferenceExecutor(keep_intermediates=True)
    ex.run(graph, X)
    for node in graph.nodes:
        got = ex.intermediates[node.name or node.output].shape
        want = shapes[node.output]
        assert len(want) == len(got), node.name
        resolved = tuple(g if w is None else w for w, g in zip(want, got))
        assert resolved == got, (node.name, want, got)


class TestShapeRules:
    def _infer_single(self, op, in_shape, attrs=None, extra_inits=()):
        b = GraphBuilder("s")
        ins = ["x"]
        for name, arr in extra_inits:
            ins.append(b.add_initializer(name, arr))
        out = b.emit(op, ins, attrs=attrs or {})
        g = b.finish(out)
        return infer_shapes(g, input_shape=in_shape)[out]

    def test_ceil_mode_changes_static_shape(self):
        floor = self._infer_single("maxpool", (None, 4, 8, 8),
                                   dict(kernel_size=3, stride=2, padding=0,
                                        ceil_mode=False))
        ceil = self._infer_single("maxpool", (None, 4, 8, 8),
                                  dict(kernel_size=3, stride=2, padding=0,
                                       ceil_mode=True))
        assert floor == (None, 4, 3, 3)
        assert ceil == (None, 4, 4, 4)

    def test_conv_shape(self):
        w = np.zeros((8, 4, 3, 3))
        out = self._infer_single("conv2d", (None, 4, 16, 16),
                                 dict(stride=2, padding=1, dilation=1,
                                      groups=1), [("w", w)])
        assert out == (None, 8, 8, 8)

    def test_symbolic_batch_survives_broadcast_add(self):
        b = GraphBuilder("b")
        pos = b.add_initializer("pos", np.zeros((1, 17, 24)))
        out = b.emit("add", ["x", pos])
        g = b.finish(out)
        assert infer_shapes(g, (None, 17, 24))[out] == (None, 17, 24)

    def test_incompatible_broadcast_rejected(self):
        b = GraphBuilder("b")
        c = b.add_initializer("c", np.zeros((5, 7)))
        out = b.emit("add", ["x", c])
        g = b.finish(out)
        with pytest.raises(ShapeError, match="broadcast"):
            infer_shapes(g, (None, 5, 9))

    def test_reshape_batch_fold_is_symbolic(self):
        """Window partitioning folds batch into -1 -> symbolic extent."""
        out = self._infer_single("reshape", (None, 4, 4, 8),
                                 dict(shape=(-1, 16, 8)))
        assert out == (None, 16, 8)

    def test_reshape_zero_copies(self):
        out = self._infer_single("reshape", (None, 6, 4),
                                 dict(shape=(0, -1)))
        assert out == (None, 24)

    def test_matmul_contraction_mismatch_rejected(self):
        b = GraphBuilder("m")
        out = b.emit("matmul", ["x", "x"], attrs=dict(transpose_b=False))
        g = b.finish(out)
        with pytest.raises(ShapeError, match="contraction"):
            infer_shapes(g, (None, 4, 5))

    def test_matmul_transpose_b(self):
        b = GraphBuilder("m")
        out = b.emit("matmul", ["x", "x"], attrs=dict(transpose_b=True))
        g = b.finish(out)
        assert infer_shapes(g, (None, 4, 5))[out] == (None, 4, 4)

    def test_transpose_rank_mismatch_rejected(self):
        with pytest.raises(ShapeError, match="perm"):
            self._infer_single("transpose", (None, 4, 5),
                               dict(perm=(0, 2, 1, 3)))

    def test_slice_and_mean(self):
        assert self._infer_single("slice", (None, 17, 24),
                                  dict(axis=1, start=0, stop=1)) \
            == (None, 1, 24)
        assert self._infer_single("mean", (None, 16, 24), dict(axis=1)) \
            == (None, 24)

    def test_upsample_shape(self):
        assert self._infer_single("upsample", (None, 2, 5, 5),
                                  dict(mode="nearest", scale_factor=2)) \
            == (None, 2, 10, 10)


class TestSummaryWithShapes:
    def test_summary_renders_symbolic_batch(self):
        graph = export_module(create_model("resnet18x0.25", num_classes=5),
                              "m")
        text = summary_with_shapes(graph)
        assert "(N, 3, 32, 32)" in text
        assert "(N, 5)" in text            # the logits
        assert text.count("\n") == len(graph.nodes)


class TestProfiler:
    def test_flops_scale_with_model_size(self):
        small = profile_graph(export_module(
            create_model("resnet18x0.25", num_classes=5)))
        big = profile_graph(export_module(
            create_model("resnet-50", num_classes=5)))
        assert big.total_flops > small.total_flops
        assert big.total_params > small.total_params

    def test_params_match_graph(self):
        graph = export_module(create_model("mobilenetv2-0.5", num_classes=5))
        profile = profile_graph(graph)
        assert profile.total_params == graph.num_parameters()

    def test_conv_flops_formula(self):
        b = GraphBuilder("c")
        w = b.add_initializer("w", np.zeros((8, 4, 3, 3)))
        out = b.emit("conv2d", ["x", w],
                     attrs=dict(stride=1, padding=1, dilation=1, groups=1))
        g = b.finish(out)
        profile = profile_graph(g, (None, 4, 10, 10))
        # out 8×10×10 elements × (4·3·3) MACs × 2
        assert profile.ops[0].flops == 2 * 8 * 10 * 10 * 4 * 9

    def test_measured_time_recorded(self):
        graph = export_module(create_model("mcunet-293kb", num_classes=5))
        profile = profile_graph(graph, x=X[:2], repeats=1)
        assert profile.wall_time_s is not None and profile.wall_time_s > 0
        assert profile.batch == 2

    def test_render_profile_readable(self):
        graph = export_module(create_model("vit-tiny", num_classes=5))
        text = render_profile(profile_graph(graph), top=5)
        assert "MFLOPs" in text and "% FLOPs" in text
        # Attention matmuls and linears should be among the heavy hitters.
        assert "linear" in text or "matmul" in text

    def test_ceil_mode_asymmetry(self):
        """The paper's core asymmetry: the pool is compute-trivial yet is
        the largest ΔACC source — its FLOPs share must be tiny."""
        graph = export_module(create_model("resnet-18", num_classes=5), "m")
        profile = profile_graph(graph)
        pool = next(o for o in profile.ops if o.op == "maxpool")
        assert pool.flops / profile.total_flops < 0.01
