"""Unit tests for the backend graph IR (repro.backend.ir)."""

import numpy as np
import pytest

from repro.backend import Graph, GraphBuilder, GraphError, Node


def tiny_graph() -> Graph:
    """x -> relu -> linear(w) -> out"""
    b = GraphBuilder("tiny")
    h = b.emit("relu", ["x"], name="act")
    w = b.add_initializer("w", np.eye(3))
    out = b.emit("linear", [h, w], name="head")
    return b.finish(out)


class TestNode:
    def test_unknown_op_rejected(self):
        with pytest.raises(GraphError, match="unknown op"):
            Node("convolve", ("x",), "y")

    def test_missing_required_attr_rejected(self):
        with pytest.raises(GraphError, match="missing attrs"):
            Node("conv2d", ("x", "w"), "y", attrs={"stride": 1})

    def test_with_attrs_returns_modified_copy(self):
        n = Node("maxpool", ("x",), "y",
                 attrs=dict(kernel_size=2, stride=2, padding=0,
                            ceil_mode=False))
        m = n.with_attrs(ceil_mode=True)
        assert m.attrs["ceil_mode"] is True
        assert n.attrs["ceil_mode"] is False         # original untouched
        assert m.attrs["kernel_size"] == 2

    def test_nodes_are_frozen(self):
        n = Node("relu", ("x",), "y")
        with pytest.raises(AttributeError):
            n.op = "gelu"


class TestGraphValidation:
    def test_valid_graph_passes(self):
        tiny_graph().validate()

    def test_undefined_operand_rejected(self):
        g = tiny_graph()
        g.nodes.append(Node("relu", ("ghost",), "z"))
        with pytest.raises(GraphError, match="undefined"):
            g.validate()

    def test_double_definition_rejected(self):
        g = tiny_graph()
        g.nodes.append(Node("relu", ("x",), g.nodes[0].output))
        with pytest.raises(GraphError, match="defined twice"):
            g.validate()

    def test_out_of_order_nodes_rejected(self):
        g = tiny_graph()
        g.nodes.reverse()
        with pytest.raises(GraphError):
            g.validate()

    def test_missing_output_rejected(self):
        g = tiny_graph()
        g.output = "nowhere"
        with pytest.raises(GraphError, match="never defined"):
            g.validate()

    def test_output_shadowing_input_rejected(self):
        b = GraphBuilder("bad")
        b.emit("relu", ["x"], output="x2")
        g = b.graph
        g.nodes.append(Node("relu", ("x2",), "x"))
        g.output = "x"
        with pytest.raises(GraphError, match="shadows"):
            g.validate()

    def test_batchnorm_weight_arity_checked(self):
        b = GraphBuilder("bn")
        b.add_initializer("gamma", np.ones(3))
        out = b.emit("batchnorm", ["x", "gamma"], attrs=dict(eps=1e-5))
        b.graph.output = out
        with pytest.raises(GraphError, match="weight operand"):
            b.graph.validate()


class TestGraphQueries:
    def test_producer_and_users(self):
        g = tiny_graph()
        relu = g.nodes[0]
        assert g.producer_of(relu.output) is relu
        assert g.producer_of("x") is None
        assert g.users_of(relu.output) == [g.nodes[1]]
        assert g.users_of(g.output) == []

    def test_node_named(self):
        g = tiny_graph()
        assert g.node_named("act").op == "relu"
        with pytest.raises(KeyError):
            g.node_named("missing")

    def test_data_vs_weight_inputs(self):
        g = tiny_graph()
        head = g.node_named("head")
        assert g.data_inputs(head) == (g.nodes[0].output,)
        assert g.weight_inputs(head) == ("w",)

    def test_op_histogram_and_params(self):
        g = tiny_graph()
        assert g.op_histogram() == {"linear": 1, "relu": 1}
        assert g.num_parameters() == 9

    def test_summary_mentions_every_node(self):
        g = tiny_graph()
        text = g.summary()
        for node in g.nodes:
            assert node.output in text
        assert "tiny" in text


class TestGraphBuilder:
    def test_fresh_names_unique(self):
        b = GraphBuilder("g")
        names = {b.fresh("v") for _ in range(50)}
        assert len(names) == 50

    def test_duplicate_initializer_rejected(self):
        b = GraphBuilder("g")
        b.add_initializer("w", np.ones(2))
        with pytest.raises(GraphError, match="already present"):
            b.add_initializer("w", np.ones(2))

    def test_finish_validates(self):
        b = GraphBuilder("g")
        b.emit("relu", ["ghost"])
        with pytest.raises(GraphError):
            b.finish("whatever")
