"""Tests for the SweepEngine, EvalCache, and shared-baseline memoisation."""

import threading

import numpy as np
import pytest

from repro.core import (TRAIN_CONFIG, EvalCache, NoiseConfig, SweepEngine,
                        eval_key, noise_row, object_token, sweep_noise,
                        worst_case_curve)
from repro.core.cache import DecodeCache, dataset_token


class FakeDataset:
    """Stands in for a dataset; content identity comes from streams."""

    def __init__(self, payloads):
        class Raw:
            def __init__(self, b):
                self._b = b

            def tobytes(self):
                return self._b

        self.streams = [Raw(p) for p in payloads]


class CountingEvaluator:
    """Deterministic metric keyed on the config; counts invocations."""

    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, model, ds, cfg):
        with self.lock:
            self.calls.append(cfg)
        # Any deterministic function of the config works as a fake metric.
        return 90.0 - 2.0 * (cfg.decoder != "dali") \
            - 1.0 * (cfg.resize_method != "pillow-bilinear") \
            - 4.0 * (cfg.precision != "fp32")


class FakeModel:
    """Weak-referenceable stand-in (bare ``object()`` has no weakref slot,
    so it would — correctly — never be memoised)."""


@pytest.fixture
def model():
    return FakeModel()


@pytest.fixture
def ds():
    return FakeDataset([b"stream-a", b"stream-b"])


class TestEvalCache:
    def test_baseline_computed_once_across_rows(self, model, ds):
        ev = CountingEvaluator()
        engine = SweepEngine(eval_cache=EvalCache())
        engine.noise_row(ev, model, ds, ["decoder"])
        baseline_calls = sum(cfg == TRAIN_CONFIG for cfg in ev.calls)
        engine.noise_row(ev, model, ds, ["resize"])
        engine.worst_case_curve(ev, model, ds, ["decoder", "resize"])
        # The clean baseline ran exactly once for the whole session.
        assert sum(cfg == TRAIN_CONFIG for cfg in ev.calls) == baseline_calls == 1

    def test_variant_metrics_shared_between_apis(self, model, ds):
        ev = CountingEvaluator()
        engine = SweepEngine(eval_cache=EvalCache())
        engine.sweep_noise(ev, model, ds, "decoder")
        n_calls = len(ev.calls)
        # Same variants again: everything is a cache hit.
        engine.sweep_noise(ev, model, ds, "decoder")
        assert len(ev.calls) == n_calls

    def test_key_distinguishes_models(self, ds):
        m1, m2 = FakeModel(), FakeModel()
        assert eval_key(m1, ds, TRAIN_CONFIG) != eval_key(m2, ds, TRAIN_CONFIG)

    def test_key_distinguishes_configs(self, model, ds):
        assert (eval_key(model, ds, TRAIN_CONFIG)
                != eval_key(model, ds, TRAIN_CONFIG.with_(precision="int8")))

    def test_dataset_key_is_content_based(self):
        a = FakeDataset([b"one", b"two"])
        b = FakeDataset([b"one", b"two"])     # distinct objects, same bytes
        assert dataset_token(a) == dataset_token(b)
        assert dataset_token(a) != dataset_token(FakeDataset([b"three"]))

    def test_invalidation_via_clear(self, model, ds):
        ev = CountingEvaluator()
        cache = EvalCache()
        engine = SweepEngine(eval_cache=cache)
        engine.baseline(ev, model, ds)
        engine.baseline(ev, model, ds)
        assert len(ev.calls) == 1 and cache.hits == 1
        cache.clear()                          # e.g. the model was retrained
        engine.baseline(ev, model, ds)
        assert len(ev.calls) == 2

    def test_lru_bound(self):
        cache = EvalCache(maxsize=2)
        for i in range(4):
            cache.evaluate(("k", i), lambda i=i: float(i))
        assert len(cache) == 2

    def test_object_token_not_recycled(self):
        class Thing:
            pass

        t = Thing()
        token = object_token(t)
        assert object_token(t) == token        # stable for the same object
        del t
        assert object_token(Thing()) != token  # never reissued

    def test_unweakrefable_objects_never_share_tokens(self):
        # Lists can't be weak-referenced; rather than falling back to an
        # id()-style key (reusable after gc), each call gets a fresh token —
        # no memoisation, but no stale hits either.
        payload = [1, 2, 3]
        assert object_token(payload) != object_token(payload)

    def test_unhashable_custom_variant_does_not_crash(self, model, ds):
        """Custom noises may carry unhashable variants (dict/list params);
        they skip memoisation instead of aborting the sweep."""
        from repro.core import NoiseSource, temporary_noise

        class DictNoise(NoiseSource):
            name = "dictnoise"
            stage = "pre-processing"
            tasks = ("cls",)

            def variants(self):
                return [{"gain": 1.2}, {"gain": 0.8}]

        ev = CountingEvaluator()
        with temporary_noise(DictNoise):
            row = SweepEngine(eval_cache=EvalCache()).noise_row(
                ev, model, ds, ["dictnoise"], include_combined=False)
        assert len(row["noises"]["dictnoise"].values) == 2

    def test_int8_deployment_not_shared_across_datasets(self):
        """A quantised model calibrated on one dataset must not be served
        for another dataset sharing the same pipeline cache."""
        from repro.core.pipeline import deployment_model

        calibrated_on = []

        class FakeModel:
            training = False

            def __deepcopy__(self, memo):
                return FakeModel()

        import repro.core.pipeline as pipeline
        original = pipeline.apply_precision

        def fake_apply_precision(model, precision, calibrate):
            calibrate(model)
            return model

        cache = DecodeCache()
        model = FakeModel()
        cfg = TRAIN_CONFIG.with_(precision="int8")
        pipeline.apply_precision = fake_apply_precision
        try:
            for name in ("ds-A", "ds-B"):
                deployment_model(model, cfg,
                                 calibrate=lambda m, n=name:
                                     calibrated_on.append(n),
                                 cache=cache, calib_key=name)
        finally:
            pipeline.apply_precision = original
        assert calibrated_on == ["ds-A", "ds-B"]   # B did not reuse A's copy


class TestSweepEngine:
    def test_parallel_results_identical_to_serial(self, model, ds):
        serial = SweepEngine(workers=None, eval_cache=EvalCache()).noise_row(
            CountingEvaluator(), model, ds, ["decoder", "resize", "precision"])
        parallel = SweepEngine(workers=4, eval_cache=EvalCache()).noise_row(
            CountingEvaluator(), model, ds, ["decoder", "resize", "precision"])
        assert serial["trained"] == parallel["trained"]
        assert serial["combined"] == parallel["combined"]
        for name in ("decoder", "resize", "precision"):
            assert (serial["noises"][name].values
                    == parallel["noises"][name].values)

    def test_effective_workers_capped_by_cores(self):
        engine = SweepEngine(workers=64)
        from repro.core.sweep import available_cores
        assert engine.effective_workers <= max(1, available_cores())
        assert SweepEngine(workers=None).effective_workers == 1

    def test_effective_workers_respects_affinity(self, monkeypatch):
        """The cap follows the cores *available to the process* (container /
        cgroup limits), not the raw machine core count."""
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 3)
        assert SweepEngine(workers=64).effective_workers == 3
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 1)
        assert SweepEngine(workers=4).effective_workers == 1

    def test_available_cores_positive(self):
        from repro.core.sweep import available_cores
        assert available_cores() >= 1

    def test_skip_reported_as_none(self, model, ds):
        row = SweepEngine().noise_row(CountingEvaluator(), model, ds,
                                      ["decoder", "ceil_mode"],
                                      skip={"ceil_mode"})
        assert row["noises"]["ceil_mode"] is None
        assert row["noises"]["decoder"] is not None

    def test_worst_case_curve_matches_legacy_shape(self, model, ds):
        curve = SweepEngine().worst_case_curve(
            CountingEvaluator(), model, ds, ["resize", "decoder"])
        assert [name for name, _ in curve] == ["decoder", "resize"]
        assert all(isinstance(delta, float) for _, delta in curve)

    def test_module_level_functions_still_serial(self, model, ds):
        ev = CountingEvaluator()
        result = sweep_noise(ev, model, ds, "decoder")
        assert len(result.values) == 3
        row = noise_row(ev, model, ds, ["decoder"], include_combined=False)
        assert set(row["noises"]) == {"decoder"}
        curve = worst_case_curve(ev, model, ds, ["decoder"])
        assert len(curve) == 1


class TestDecodeCachePreproc:
    def test_memo_and_drop_prefix(self):
        cache = DecodeCache(maxsize=8)
        cache.memo(("model", 1, "int8"), lambda: "quantised")
        cache.memo(("preproc", "digest"), lambda: np.zeros(3))
        assert len(cache) == 2
        cache.drop_prefix("model")
        assert len(cache) == 1
        # preproc entry survived
        out = cache.memo(("preproc", "digest"), lambda: np.ones(3))
        np.testing.assert_array_equal(out, np.zeros(3))

    def test_byte_budget_evicts(self):
        cache = DecodeCache(maxsize=100, max_bytes=4000)
        for i in range(8):
            cache.memo(("preproc", i), lambda: np.zeros(128))   # 1 KB each
        assert len(cache) <= 4


# ---------------------------------------------------------------------------
# Process-parallel sweeps
# ---------------------------------------------------------------------------

def _tiny_cls_fixture():
    from repro.core import get_task
    from repro.data import make_classification_dataset
    from repro.models import create_model

    ds = make_classification_dataset(n=12, native_size=48, input_size=32,
                                     seed=3)
    m = create_model("mcunet-293kb", num_classes=ds.num_classes, seed=0)
    m.eval()
    return get_task("cls"), m, ds


class TestProcessMode:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SweepEngine(mode="fiber")

    def test_process_results_identical_to_serial(self, monkeypatch):
        """A 2-worker process sweep returns exactly the serial metrics (the
        core count is patched so the pool engages on single-core CI too)."""
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        adapter, m, ds = _tiny_cls_fixture()
        serial = SweepEngine(eval_cache=EvalCache()).noise_row(
            adapter.evaluate, m, ds, ["decoder", "precision"])
        proc = SweepEngine(workers=2, eval_cache=EvalCache(),
                           mode="process").noise_row(
            adapter.evaluate, m, ds, ["decoder", "precision"])
        assert serial["trained"] == proc["trained"]
        assert serial["combined"] == proc["combined"]
        for name in ("decoder", "precision"):
            assert (serial["noises"][name].values
                    == proc["noises"][name].values)

    def test_process_results_land_in_parent_eval_cache(self, monkeypatch):
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        adapter, m, ds = _tiny_cls_fixture()
        cache = EvalCache()
        engine = SweepEngine(workers=2, eval_cache=cache, mode="process")
        engine.sweep_noise(adapter.evaluate, m, ds, "decoder")
        assert cache.misses > 0
        before = cache.hits
        engine.sweep_noise(adapter.evaluate, m, ds, "decoder")
        assert cache.hits > before          # re-sweep served from the cache

    def test_unpicklable_evaluate_falls_back_to_threads(self, monkeypatch):
        import repro.core.sweep as sweep_mod
        monkeypatch.setattr(sweep_mod, "available_cores", lambda: 2)
        lock = threading.Lock()             # unpicklable capture

        def evaluate(model, ds, cfg):
            with lock:
                return 42.0 - (cfg.precision != "fp32")

        engine = SweepEngine(workers=2, eval_cache=EvalCache(),
                             mode="process")
        result = engine.sweep_noise(evaluate, FakeModel(),
                                    FakeDataset([b"s"]), "precision")
        assert result.values                # computed despite the fallback

    def test_session_process_eval_fn_is_picklable(self):
        import pickle

        from repro.core import BenchmarkSession
        session = BenchmarkSession().task("cls").workers(2, mode="process")
        fn = session._eval_fn(session.adapter)
        pickle.dumps(fn)
