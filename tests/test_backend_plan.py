"""Compiled execution-plan tests: bit-exactness, fusion passes, memory plan.

The plan layer's contract is *exact* numeric parity with the interpreted
executors — same graph, same backend options, same bits — plus safety of
the liveness-analysed buffer reuse under aliasing (views of live buffers
must never be clobbered by in-place rewrites).
"""

import numpy as np
import pytest

from repro.backend import (BACKEND_PRESETS, DeploymentExecutor, GraphBuilder,
                           PLAN_PASSES, ReferenceExecutor, compile_plan,
                           export_module, fold_movement, fuse_conv_bn_relu,
                           fuse_conv_relu, fuse_elementwise, infer_shapes,
                           quantize_graph)
from repro.models import create_model

RNG = np.random.default_rng(7)
X = RNG.normal(size=(4, 3, 32, 32))


def graph_for(name: str):
    return export_module(create_model(name, num_classes=5, seed=0), name)


# ---------------------------------------------------------------------------
# Bit-exact parity: interpreted vs compiled
# ---------------------------------------------------------------------------

class TestPlanParity:
    @pytest.mark.parametrize("model_name", [
        "resnet18x0.25", "mcunet-293kb", "mobilenetv2-0.5", "vit-tiny",
    ])
    @pytest.mark.parametrize("backend", ["reference", "gpu-fp16", "dsp"])
    def test_bit_exact_across_zoo_and_backends(self, model_name, backend):
        g = graph_for(model_name)
        ex = (ReferenceExecutor() if backend == "reference"
              else DeploymentExecutor(BACKEND_PRESETS[backend]))
        want = ex.run(g, X)
        got = ex.compile(g).run(X)
        assert got.dtype == want.dtype
        np.testing.assert_array_equal(got, want)

    def test_bit_exact_int8_graph(self):
        """The QDQ-quantised graph runs bit-equal through the plan (fp32 and
        int8 deployment flavours of the backend stack)."""
        g = graph_for("resnet18x0.25")
        qg = quantize_graph(g, X)
        for ex in (ReferenceExecutor(),
                   DeploymentExecutor(BACKEND_PRESETS["dsp"])):
            np.testing.assert_array_equal(ex.compile(qg).run(X),
                                          ex.run(qg, X))

    def test_unoptimized_plan_is_also_exact(self):
        g = graph_for("mcunet-293kb")
        ex = ReferenceExecutor()
        plan = compile_plan(g, ex, optimize=False)
        np.testing.assert_array_equal(plan.run(X), ex.run(g, X))

    def test_plan_handles_varying_batch_sizes(self):
        g = graph_for("resnet18x0.25")
        ex = ReferenceExecutor()
        plan = ex.compile(g)
        for b in (1, 2, 7):
            xb = RNG.normal(size=(b, 3, 32, 32))
            np.testing.assert_array_equal(plan.run(xb), ex.run(g, xb))

    def test_plan_does_not_mutate_caller_input(self):
        b = GraphBuilder("g")
        out = b.emit("relu", ["x"])
        g = b.finish(out)
        x = RNG.normal(size=(2, 3, 4, 4))
        keep = x.copy()
        ReferenceExecutor().compile(g).run(x)
        np.testing.assert_array_equal(x, keep)


# ---------------------------------------------------------------------------
# run_batch
# ---------------------------------------------------------------------------

class TestRunBatch:
    def test_single_batch_equals_run(self):
        g = graph_for("resnet18x0.25")
        plan = ReferenceExecutor().compile(g)
        np.testing.assert_array_equal(plan.run_batch([X]), plan.run(X))

    def test_pieces_are_carried_in_one_pass(self):
        g = graph_for("resnet18x0.25")
        plan = ReferenceExecutor().compile(g)
        a, b = X[:1], X[1:]
        np.testing.assert_array_equal(
            plan.run_batch([a, b]), plan.run(np.concatenate([a, b])))

    def test_empty_rejected(self):
        g = graph_for("resnet18x0.25")
        plan = ReferenceExecutor().compile(g)
        with pytest.raises(ValueError):
            plan.run_batch([])


# ---------------------------------------------------------------------------
# Buffer reuse / aliasing safety
# ---------------------------------------------------------------------------

class TestMemoryPlan:
    def test_slots_fewer_than_values(self):
        """Liveness analysis must actually reuse arena slots."""
        g = graph_for("resnet18x0.25")
        plan = ReferenceExecutor().compile(g)
        assert plan.n_slots < len(plan.graph.nodes) + 1

    def test_view_of_live_buffer_is_not_clobbered(self):
        """relu would write in place if the slice view did not pin its base
        buffer's alias group; the late concat still needs the original."""
        b = GraphBuilder("alias")
        h = b.emit("relu", ["x"])                       # fresh buffer
        view = b.emit("slice", [h], attrs=dict(axis=2, start=0, stop=2))
        gated = b.emit("relu", [view])                  # in-place candidate
        cat = b.emit("concat", [gated, h], attrs=dict(axis=2))
        g = b.finish(cat)
        x = RNG.normal(size=(2, 3, 4, 4))
        np.testing.assert_array_equal(
            ReferenceExecutor().compile(g).run(x),
            ReferenceExecutor().run(g, x))

    def test_concurrent_runs_share_one_plan_safely(self):
        """compile_cached hands the same plan to every caller and sweeps run
        from thread pools: concurrent run() calls must not corrupt the
        per-closure scratch buffers."""
        from concurrent.futures import ThreadPoolExecutor

        g = graph_for("resnet18x0.25")
        ex = ReferenceExecutor()
        plan = ex.compile(g)
        want = ex.run(g, X)
        with ThreadPoolExecutor(max_workers=4) as pool:
            outs = list(pool.map(lambda _: plan.run(X), range(8)))
        for out in outs:
            np.testing.assert_array_equal(out, want)

    def test_shared_input_of_binary_op_stays_intact(self):
        """add(y, y) and a later reader of y: in-place must not fire while
        another consumer still needs the operand."""
        b = GraphBuilder("shared")
        y = b.emit("relu", ["x"])
        s = b.emit("add", [y, y])
        m = b.emit("mul", [s, y])
        g = b.finish(m)
        x = RNG.normal(size=(2, 3, 4, 4))
        np.testing.assert_array_equal(
            ReferenceExecutor().compile(g).run(x),
            ReferenceExecutor().run(g, x))


# ---------------------------------------------------------------------------
# Fusion passes
# ---------------------------------------------------------------------------

class TestFusionPasses:
    def test_fuse_conv_relu_marks_convs_and_is_exact(self):
        # Direct conv->relu pairs appear once BN is folded away (the raw
        # export interleaves batchnorm); the relu attachment itself must be
        # numerically exact on that graph.
        from repro.backend import fuse_conv_bn
        g = fuse_conv_bn(graph_for("resnet18x0.25"))
        fused = fuse_conv_relu(g)
        marked = [n for n in fused.nodes
                  if n.op == "conv2d" and n.attrs.get("activation") == "relu"]
        assert marked
        assert len(fused.nodes) < len(g.nodes)
        np.testing.assert_array_equal(ReferenceExecutor().run(fused, X),
                                      ReferenceExecutor().run(g, X))

    def test_fuse_conv_bn_relu_folds_bn_and_attaches_relu(self):
        g = graph_for("resnet18x0.25")
        fused = fuse_conv_bn_relu(g)
        assert not any(n.op == "batchnorm" for n in fused.nodes)
        assert any(n.attrs.get("activation") == "relu" for n in fused.nodes
                   if n.op == "conv2d")
        # BN folding is numerically non-neutral by design; the relu
        # attachment itself must be exact on the BN-folded graph.
        from repro.backend import fuse_conv_bn
        np.testing.assert_array_equal(
            ReferenceExecutor().run(fused, X),
            ReferenceExecutor().run(fuse_conv_bn(g), X))

    def test_fuse_elementwise_collapses_chains_exactly(self):
        b = GraphBuilder("chain")
        h = b.emit("relu", ["x"])
        h = b.emit("scale", [h], attrs=dict(factor=1.5))
        h = b.emit("clip", [h], attrs=dict(lo=-1.0, hi=1.0))
        h = b.emit("sigmoid", [h])
        g = b.finish(h)
        fused = fuse_elementwise(g)
        assert [n.op for n in fused.nodes] == ["fused_elementwise"]
        assert len(fused.nodes[0].attrs["chain"]) == 4
        x = RNG.normal(size=(2, 3, 4, 4))
        for ex in (ReferenceExecutor(),
                   DeploymentExecutor(BACKEND_PRESETS["dsp"])):
            np.testing.assert_array_equal(ex.run(fused, x), ex.run(g, x))

    def test_fuse_elementwise_respects_fan_out(self):
        b = GraphBuilder("fan")
        h = b.emit("relu", ["x"])
        s = b.emit("sigmoid", [h])       # h also feeds the add below
        g = b.finish(b.emit("add", [h, s]))
        fused = fuse_elementwise(g)
        assert all(n.op != "fused_elementwise" for n in fused.nodes)

    def test_fold_movement_composes_transposes(self):
        b = GraphBuilder("t")
        h = b.emit("transpose", ["x"], attrs=dict(perm=(0, 2, 3, 1)))
        h = b.emit("transpose", [h], attrs=dict(perm=(0, 3, 1, 2)))
        h = b.emit("relu", [h])
        g = b.finish(h)
        folded = fold_movement(g)
        # perm composition yields the identity permutation -> both vanish
        assert [n.op for n in folded.nodes] == ["relu"]
        x = RNG.normal(size=(2, 3, 4, 4))
        np.testing.assert_array_equal(ReferenceExecutor().run(folded, x),
                                      ReferenceExecutor().run(g, x))

    def test_fold_movement_merges_reshapes(self):
        b = GraphBuilder("r")
        h = b.emit("reshape", ["x"], attrs=dict(shape=(2, 48)))
        h = b.emit("reshape", [h], attrs=dict(shape=(2, 3, 16)))
        g = b.finish(b.emit("relu", [h]))
        folded = fold_movement(g)
        assert sum(n.op == "reshape" for n in folded.nodes) == 1
        x = RNG.normal(size=(2, 3, 4, 4))
        np.testing.assert_array_equal(ReferenceExecutor().run(folded, x),
                                      ReferenceExecutor().run(g, x))

    def test_plan_passes_preserve_shapes(self):
        g = graph_for("vit-tiny")
        opt = g
        for p in PLAN_PASSES:
            opt = p(opt)
        assert (infer_shapes(opt, (None, 3, 32, 32))[opt.output]
                == infer_shapes(g, (None, 3, 32, 32))[g.output])


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_compile_is_memoised_per_graph_and_options(self):
        g = graph_for("resnet18x0.25")
        ex = ReferenceExecutor()
        assert ex.compile(g) is ex.compile(g)
        dep = DeploymentExecutor(BACKEND_PRESETS["gpu-fp16"])
        assert dep.compile(g) is not ex.compile(g)

    def test_distinct_graphs_do_not_share_plans(self):
        ga, gb = graph_for("resnet18x0.25"), graph_for("resnet18x0.25")
        ex = ReferenceExecutor()
        assert ex.compile(ga) is not ex.compile(gb)
