"""Tests for the crash-safe RunStore/RunLedger subsystem and resume."""

import json
import threading

import numpy as np
import pytest

from repro.core import (TRAIN_CONFIG, EvalCache, RunLedger, RunStore,
                        SweepEngine, config_digest, ledger_table,
                        run_manifest)


class Raw:
    def __init__(self, b):
        self._b = b

    def tobytes(self):
        return self._b


class FakeDataset:
    """Content identity comes from streams (stable across processes)."""

    def __init__(self, payloads=(b"stream-a", b"stream-b")):
        self.streams = [Raw(p) for p in payloads]


class FakeModel:
    """Weak-referenceable model stand-in."""


def metric_of(cfg) -> float:
    return (90.0 - 2.0 * (cfg.decoder != "dali")
            - 1.0 * (cfg.resize_method != "pillow-bilinear")
            - 4.0 * (cfg.precision != "fp32"))


class CountingEvaluator:
    def __init__(self):
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, model, ds, cfg):
        with self.lock:
            self.calls.append(cfg)
        return metric_of(cfg)


@pytest.fixture
def manifest():
    return run_manifest(task="cls", model="fake", seed=0,
                        noises=["decoder", "precision"], metric="ACC")


class TestConfigDigest:
    def test_stable_for_equal_configs(self):
        a = TRAIN_CONFIG.with_(decoder="pil")
        b = TRAIN_CONFIG.with_(decoder="pil")
        assert config_digest(a) == config_digest(b)

    def test_distinguishes_configs(self):
        assert (config_digest(TRAIN_CONFIG)
                != config_digest(TRAIN_CONFIG.with_(precision="int8")))

    def test_handles_unhashable_extra_variants(self):
        a = TRAIN_CONFIG.with_extra("blur", {"sigma": 1.5, "k": [3, 3]})
        b = TRAIN_CONFIG.with_extra("blur", {"k": [3, 3], "sigma": 1.5})
        assert config_digest(a) == config_digest(b)   # dict order-insensitive
        c = TRAIN_CONFIG.with_extra("blur", {"sigma": 2.0, "k": [3, 3]})
        assert config_digest(a) != config_digest(c)


class TestRunLedger:
    def test_roundtrip_and_lookup(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r1", manifest)
        ledger.record_eval("m", "ds", "cfg1", status="ok", value=87.5,
                           noise="decoder")
        ledger.record_eval("m", "ds", "cfg2", status="error",
                           error="ValueError: boom")
        reopened = RunLedger(tmp_path / "r1")
        assert reopened.manifest["task"] == "cls"
        assert reopened.lookup("m", "ds", "cfg1")["value"] == 87.5
        # Error entries never satisfy a lookup: resume re-executes them.
        assert reopened.lookup("m", "ds", "cfg2") is None
        assert reopened.counts() == {"entries": 2, "ok": 1, "error": 1,
                                     "corrupt": 0}

    def test_values_roundtrip_bit_identical(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r1", manifest)
        value = 0.1 + 0.2                     # not representable exactly
        ledger.record_eval("m", "ds", "c", status="ok", value=value)
        assert RunLedger(tmp_path / "r1").lookup("m", "ds", "c")["value"] \
            == value

    def test_torn_final_line_tolerated(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r1", manifest)
        ledger.record_eval("m", "ds", "c1", status="ok", value=1.0)
        ledger.record_eval("m", "ds", "c2", status="ok", value=2.0)
        lpath = tmp_path / "r1" / "ledger.jsonl"
        text = lpath.read_text()
        lpath.write_text(text[: len(text) - 9])   # SIGKILL mid-write
        reopened = RunLedger(tmp_path / "r1")
        assert reopened.lookup("m", "ds", "c1")["value"] == 1.0
        assert reopened.lookup("m", "ds", "c2") is None
        assert reopened.counts()["corrupt"] == 1

    def test_later_ok_wins_over_earlier_error(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r1", manifest)
        ledger.record_eval("m", "ds", "c", status="error", error="flaky")
        ledger.record_eval("m", "ds", "c", status="ok", value=3.0)
        assert RunLedger(tmp_path / "r1").lookup("m", "ds", "c")["value"] \
            == 3.0


class TestRunStore:
    def test_create_open_list(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        ledger = store.create(manifest, run_id="run-a")
        assert store.runs() == ["run-a"]
        assert store.latest() == "run-a"
        assert "run-a" in store
        assert store.open("run-a").path == ledger.path

    def test_open_missing_run_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no run"):
            RunStore(tmp_path).open("ghost")

    def test_duplicate_create_raises(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        store.create(manifest, run_id="dup")
        with pytest.raises(ValueError, match="already exists"):
            store.create(manifest, run_id="dup")

    def test_resume_identity_mismatch_raises(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        store.create(manifest, run_id="r")
        other = dict(manifest, seed=99)
        with pytest.raises(ValueError, match="manifest mismatch"):
            store.open_or_create(other, run_id="r")

    def test_resume_dataset_args_mismatch_raises(self, tmp_path, manifest):
        """When both manifests record dataset args (the CLI does), resuming
        with different data would splice two datasets into one table."""
        store = RunStore(tmp_path)
        store.create(dict(manifest, data={"n": 96}), run_id="r")
        with pytest.raises(ValueError, match="manifest mismatch"):
            store.open_or_create(dict(manifest, data={"n": 240}), run_id="r")
        # Backwards compatible: a manifest without 'data' is not compared.
        assert store.open_or_create(dict(manifest), run_id="r") is not None

    def test_read_manifest_without_replay(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        store.create(manifest, run_id="r")
        assert store.read_manifest("r")["task"] == "cls"
        with pytest.raises(ValueError, match="no run"):
            store.read_manifest("ghost")

    def test_open_or_create_resumes(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        created = store.create(manifest, run_id="r")
        created.record_eval("m", "ds", "c", status="ok", value=1.0)
        resumed = store.open_or_create(dict(manifest), run_id="r")
        assert resumed.lookup("m", "ds", "c")["value"] == 1.0


class TestEngineLedger:
    def _engine(self, tmp_path, manifest, **kw):
        ledger = RunStore(tmp_path).open_or_create(manifest, run_id="r")
        return SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                           model_key="fake", **kw), ledger

    def test_sweep_appends_every_evaluation(self, tmp_path, manifest):
        engine, ledger = self._engine(tmp_path, manifest)
        ev = CountingEvaluator()
        row = engine.noise_row(ev, FakeModel(), FakeDataset(),
                               ["decoder", "precision"])
        # baseline + 3 decoder + 2 precision + combined
        assert ledger.counts()["ok"] == len(ev.calls) == 7
        assert row["combined"] == pytest.approx(
            row["trained"] - metric_of(
                TRAIN_CONFIG.with_(decoder="pil", precision="int8")), abs=3)

    def test_resume_skips_ledger_complete_cells(self, tmp_path, manifest):
        first = CountingEvaluator()
        engine, _ = self._engine(tmp_path, manifest)
        row1 = engine.noise_row(first, FakeModel(), FakeDataset(),
                                ["decoder", "precision"])
        # A fresh engine + fresh cache, as a new process would have.
        second = CountingEvaluator()
        engine2, ledger2 = self._engine(tmp_path, manifest)
        row2 = engine2.noise_row(second, FakeModel(), FakeDataset(),
                                 ["decoder", "precision"])
        assert second.calls == []             # everything came from disk
        assert row2["trained"] == row1["trained"]
        assert row2["combined"] == row1["combined"]
        for name in ("decoder", "precision"):
            assert (row2["noises"][name].values
                    == row1["noises"][name].values)

    def test_partial_ledger_reexecutes_only_remainder(self, tmp_path,
                                                      manifest):
        engine, ledger = self._engine(tmp_path, manifest)
        engine.sweep_noise(CountingEvaluator(), FakeModel(), FakeDataset(),
                           "decoder")            # baseline + 3 variants
        before = ledger.counts()["entries"]
        ev = CountingEvaluator()
        engine2, ledger2 = self._engine(tmp_path, manifest)
        engine2.noise_row(ev, FakeModel(), FakeDataset(),
                          ["decoder", "precision"])
        # Only the precision variants and the combined config were computed.
        assert len(ev.calls) == 3
        assert ledger2.counts()["entries"] - before == 3

    def test_ledger_write_failure_does_not_abort_the_sweep(self, tmp_path,
                                                           manifest):
        """ENOSPC/deleted-run-dir mid-sweep degrades to 'unledgered', never
        to an aborted row: values stay intact, one warning, no raise."""
        ledger = RunStore(tmp_path).open_or_create(manifest, run_id="r")

        class FullDisk:
            run_id = "r"

            def lookup(self, *key):
                return None

            def record_eval(self, *a, **kw):
                raise OSError(28, "No space left on device")

        engine = SweepEngine(eval_cache=EvalCache(), ledger=FullDisk(),
                             model_key="fake")
        row = engine.noise_row(CountingEvaluator(), FakeModel(),
                               FakeDataset(), ["decoder", "precision"])
        assert row["noises"]["decoder"].errors == {}
        assert not np.isnan(row["combined"])
        assert ledger.counts()["entries"] == 0

    def test_cache_hits_are_backfilled_into_the_ledger(self, tmp_path,
                                                       manifest):
        """Cells cached before the store was attached must still land on
        disk — 'every completed evaluation is appended' has no cache
        exception."""
        cache = EvalCache()
        model, ds = FakeModel(), FakeDataset()
        SweepEngine(eval_cache=cache).sweep_noise(
            CountingEvaluator(), model, ds, "decoder")   # warm, no ledger
        ledger = RunStore(tmp_path).open_or_create(manifest, run_id="r")
        engine = SweepEngine(eval_cache=cache, ledger=ledger,
                             model_key="fake")
        ev = CountingEvaluator()
        engine.sweep_noise(ev, model, ds, "decoder")
        assert ev.calls == []                 # pure cache hits...
        assert ledger.counts()["ok"] == 4     # ...yet all persisted

    def test_dataset_without_streams_is_not_ledgered(self, tmp_path,
                                                     manifest):
        """No content digest means no stable cross-process identity: the
        sweep still runs, but nothing lands in the ledger (a per-process
        identity token could collide with a different dataset on resume)."""
        class StreamlessDataset:
            pass

        engine, ledger = self._engine(tmp_path, manifest)
        result = engine.sweep_noise(CountingEvaluator(), FakeModel(),
                                    StreamlessDataset(), "decoder")
        assert len(result.values) == 3 and result.errors == {}
        assert ledger.counts()["entries"] == 0

    def test_failures_recorded_as_structured_entries(self, tmp_path,
                                                     manifest):
        engine, ledger = self._engine(tmp_path, manifest)

        def flaky(model, ds, cfg):
            if cfg.decoder == "opencv":
                raise RuntimeError("transient decode crash")
            return metric_of(cfg)

        result = engine.sweep_noise(flaky, FakeModel(), FakeDataset(),
                                    "decoder")
        assert result.n_failed == 1 and not result.all_failed
        errors = [e for e in ledger.entries() if e["status"] == "error"]
        assert len(errors) == 1
        assert "transient decode crash" in errors[0]["error"]
        assert errors[0]["attempts"] == 1

    def test_retry_budget_recovers_flaky_cell(self, tmp_path, manifest):
        engine, ledger = self._engine(tmp_path, manifest, retries=1)
        strikes = []

        def flaky_once(model, ds, cfg):
            if cfg.decoder == "opencv" and not strikes:
                strikes.append(cfg)
                raise RuntimeError("one-off")
            return metric_of(cfg)

        result = engine.sweep_noise(flaky_once, FakeModel(), FakeDataset(),
                                    "decoder")
        assert result.errors == {}
        recovered = [e for e in ledger.entries()
                     if e["status"] == "ok" and e.get("attempts") == 2]
        assert len(recovered) == 1

    def test_resume_after_failure_fills_in_the_cell(self, tmp_path, manifest):
        engine, _ = self._engine(tmp_path, manifest)

        def broken(model, ds, cfg):
            if cfg.decoder == "opencv":
                raise RuntimeError("boom")
            return metric_of(cfg)

        first = engine.sweep_noise(broken, FakeModel(), FakeDataset(),
                                   "decoder")
        assert first.n_failed == 1
        ev = CountingEvaluator()
        engine2, ledger2 = self._engine(tmp_path, manifest)
        second = engine2.sweep_noise(ev, FakeModel(), FakeDataset(),
                                     "decoder")
        assert second.errors == {}
        assert len(ev.calls) == 1             # only the failed cell re-ran
        clean = SweepEngine(eval_cache=EvalCache()).sweep_noise(
            CountingEvaluator(), FakeModel(), FakeDataset(), "decoder")
        assert second.values == clean.values  # bit-identical result


class TestLedgerTable:
    def test_renders_complete_run(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        ledger = store.open_or_create(manifest, run_id="r")
        engine = SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                             model_key="fake")
        engine.noise_row(CountingEvaluator(), FakeModel(), FakeDataset(),
                         ["decoder", "precision"])
        text = ledger_table(store.open("r"))
        assert "fake" in text and "decoder" in text
        assert "!" not in text.split("\n", 2)[2]   # no failed cells

    def test_failed_and_missing_cells_render_bang(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        ledger = store.open_or_create(manifest, run_id="r")
        engine = SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                             model_key="fake")

        def broken(model, ds, cfg):
            if cfg.precision != "fp32":
                raise RuntimeError("quantizer exploded")
            return metric_of(cfg)

        engine.noise_row(broken, FakeModel(), FakeDataset(),
                         ["decoder", "precision"])
        text = ledger_table(store.open("r"))
        row_line = [l for l in text.splitlines() if l.startswith("fake")][0]
        assert "!" in row_line                 # precision column failed

    def test_entries_from_other_dataset_digest_ignored(self, tmp_path,
                                                       manifest):
        """A mis-resumed run that wrote entries against a different dataset
        must not have them spliced into the rendered table."""
        store = RunStore(tmp_path)
        ledger = store.open_or_create(manifest, run_id="r")

        def shifted(model, ds, cfg):
            return metric_of(cfg) + 1.0       # the *old* dataset's metrics

        old_engine = SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                                 model_key="fake")
        old_engine.noise_row(shifted, FakeModel(),
                             FakeDataset((b"old-data",)),
                             ["decoder", "precision"])
        new_engine = SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                                 model_key="fake")
        new_engine.noise_row(CountingEvaluator(), FakeModel(), FakeDataset(),
                             ["decoder", "precision"])
        text = ledger_table(store.open("r"))
        row_line = [l for l in text.splitlines() if l.startswith("fake")][0]
        assert "90.00" in row_line            # the latest dataset's baseline
        assert "91.00" not in row_line        # never the old one's
        assert "!" not in row_line            # and the row is complete

    def test_unregistered_noise_renders_failed_not_crash(self, tmp_path):
        """A run recorded with a custom noise must still report (as '!')
        in a process that never registered that noise."""
        manifest = run_manifest(task="cls", model="fake", seed=0,
                                noises=["decoder", "warpdrive"],
                                metric="ACC")
        store = RunStore(tmp_path)
        ledger = store.open_or_create(manifest, run_id="r")
        engine = SweepEngine(eval_cache=EvalCache(), ledger=ledger,
                             model_key="fake")
        engine.sweep_noise(CountingEvaluator(), FakeModel(), FakeDataset(),
                           "decoder")
        text = ledger_table(store.open("r"))
        row_line = [l for l in text.splitlines() if l.startswith("fake")][0]
        assert "!" in row_line                 # warpdrive column, not a crash

    def test_manifest_default_repr_roundtrip(self, tmp_path):
        manifest = run_manifest(task="cls", model="m", seed=0,
                                noises=["decoder"], metric="ACC",
                                odd=np.float64(3.5))
        ledger = RunLedger.create(tmp_path / "r", manifest)
        assert json.loads((tmp_path / "r" / "manifest.json").read_text())
        assert ledger.manifest["task"] == "cls"


class TestLedgerSubscribe:
    def test_listener_sees_every_append(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r", manifest)
        seen = []
        ledger.subscribe(seen.append)
        ledger.record_eval("m", "ds", "c1", status="ok", value=1.0)
        ledger.record_eval("m", "ds", "c2", status="error", error="boom")
        assert [e["cfg"] for e in seen] == ["c1", "c2"]
        assert seen[0]["value"] == 1.0

    def test_unsubscribe_stops_delivery(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r", manifest)
        seen = []
        ledger.subscribe(seen.append)
        ledger.record_eval("m", "ds", "c1", status="ok", value=1.0)
        ledger.unsubscribe(seen.append)
        ledger.unsubscribe(seen.append)       # double-remove is a no-op
        ledger.record_eval("m", "ds", "c2", status="ok", value=2.0)
        assert len(seen) == 1

    def test_raising_listener_never_breaks_append(self, tmp_path, manifest):
        ledger = RunLedger.create(tmp_path / "r", manifest)

        def bad(entry):
            raise RuntimeError("listener bug")

        ledger.subscribe(bad)
        ledger.record_eval("m", "ds", "c", status="ok", value=1.0)
        assert ledger.lookup("m", "ds", "c")["value"] == 1.0

    def test_listener_may_reenter_ledger(self, tmp_path, manifest):
        """Listeners run outside the lock, so re-entrant reads can't
        deadlock (the serve event feed reads counts() from its listener)."""
        ledger = RunLedger.create(tmp_path / "r", manifest)
        counts = []
        ledger.subscribe(lambda e: counts.append(ledger.counts()["ok"]))
        ledger.record_eval("m", "ds", "c", status="ok", value=1.0)
        assert counts == [1]


class TestRunStatusReplay:
    """expected_cells / run_info / list_runs — status from the ledger alone."""

    def _expected(self, manifest):
        from repro.core import get_noise
        total = 1 + (1 if manifest["include_combined"] else 0)
        return total + sum(len(get_noise(n).variants())
                           for n in manifest["noises"]
                           if n not in set(manifest["skip"]))

    def test_expected_cells_counts_variants(self, manifest):
        from repro.core import expected_cells
        assert expected_cells(manifest) == self._expected(manifest)
        no_comb = dict(manifest, include_combined=False)
        assert expected_cells(no_comb) == expected_cells(manifest) - 1
        skipped = dict(manifest, skip=["precision"])
        assert expected_cells(skipped) < expected_cells(manifest)

    def test_expected_cells_unregistered_noise_is_unknowable(self, manifest):
        from repro.core import expected_cells
        assert expected_cells(dict(manifest, noises=["warpdrive"])) is None

    def test_run_info_status_ladder(self, tmp_path, manifest):
        from repro.core import expected_cells, run_info
        store = RunStore(tmp_path)
        ledger = store.create(manifest, run_id="r")
        assert run_info(ledger)["status"] == "pending"
        ledger.record_eval("m", "ds", "c0", status="ok", value=1.0)
        info = run_info(ledger)
        assert info["status"] == "partial" and info["ok"] == 1
        assert info["expected"] == expected_cells(manifest)
        for i in range(1, expected_cells(manifest)):
            ledger.record_eval("m", "ds", f"c{i}", status="ok", value=1.0)
        assert run_info(ledger)["status"] == "complete"
        ledger.record_eval("m", "ds", "cx", status="error", error="boom")
        assert run_info(ledger)["status"] == "failed"

    def test_run_info_survives_reopen(self, tmp_path, manifest):
        """The restart story: a fresh process replaying the same directory
        reports the same status (this is what `repro serve` recovery and
        `repro report --store` rely on)."""
        from repro.core import run_info
        store = RunStore(tmp_path)
        ledger = store.create(manifest, run_id="r")
        ledger.record_eval("m", "ds", "c0", status="ok", value=1.0)
        before = run_info(ledger)
        after = run_info(RunStore(tmp_path).open("r"))
        assert after == before and after["status"] == "partial"

    def test_list_runs_isolates_rotten_directories(self, tmp_path, manifest):
        store = RunStore(tmp_path)
        store.create(manifest, run_id="good")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text("{not json")
        listing = {info["run_id"]: info for info in store.list_runs()}
        assert listing["good"]["status"] == "pending"
        assert listing["bad"]["status"] == "unreadable"
        assert "error" in listing["bad"]
