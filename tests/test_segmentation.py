"""Tests for segmentation models and mIoU evaluation."""

import numpy as np
import pytest

from repro.data import make_segmentation_dataset
from repro.nn import Tensor
from repro.segmentation import (DeepLabLite, SegTrainConfig, UNetLite,
                                confusion_matrix, create_segmenter,
                                evaluate_segmenter, mean_iou, train_segmenter)


class TestMIoU:
    def test_perfect_prediction(self):
        y = np.random.default_rng(0).integers(0, 4, size=(2, 8, 8))
        assert mean_iou(y, y, 4) == pytest.approx(100.0)

    def test_all_wrong(self):
        t = np.zeros((1, 4, 4), dtype=int)
        p = np.ones((1, 4, 4), dtype=int)
        assert mean_iou(p, t, 2) == 0.0

    def test_half_right(self):
        t = np.zeros((1, 2, 2), dtype=int)
        p = np.array([[[0, 0], [1, 1]]])
        # class 0: inter 2, union 4 -> 0.5; class 1 absent in GT -> skipped
        assert mean_iou(p, t, 2) == pytest.approx(50.0)

    def test_confusion_matrix_counts(self):
        t = np.array([0, 0, 1, 1])
        p = np.array([0, 1, 1, 1])
        cm = confusion_matrix(p, t, 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 2]])

    def test_ignores_out_of_range_labels(self):
        t = np.array([0, -1, 5])
        p = np.array([0, 0, 0])
        cm = confusion_matrix(p, t, 2)
        assert cm.sum() == 1


class TestModels:
    def setup_method(self):
        self.x = Tensor(np.random.default_rng(0).standard_normal((2, 3, 32, 32)))

    def test_unet_output_shape(self):
        model = UNetLite(num_classes=4, width=4)
        assert model(self.x).shape == (2, 4, 32, 32)

    def test_deeplab_output_shape(self):
        model = DeepLabLite(num_classes=4, width=6)
        assert model(self.x).shape == (2, 4, 32, 32)

    def test_deeplab_has_ceil_mode_door_unet_does_not(self):
        dl = DeepLabLite(num_classes=4)
        assert hasattr(dl, "pool") and dl.pool.ceil_mode is False
        un = UNetLite(num_classes=4)
        assert not hasattr(un, "pool")

    def test_upsample_mode_flip_changes_output(self):
        model = UNetLite(num_classes=4, width=4)
        model.eval()
        base = model(self.x).data
        model.set_upsample_mode("bilinear")
        flipped = model(self.x).data
        assert not np.allclose(base, flipped)

    def test_deeplab_ceil_mode_flip_keeps_output_shape(self):
        model = DeepLabLite(num_classes=4, width=6)
        model.eval()
        x = Tensor(np.random.default_rng(1).standard_normal((1, 3, 36, 36)))
        base = model(x)
        model.pool.ceil_mode = True
        flipped = model(x)
        assert base.shape == flipped.shape     # logits upsampled to input size
        assert not np.allclose(base.data, flipped.data)

    def test_factory(self):
        assert isinstance(create_segmenter("unet"), UNetLite)
        assert isinstance(create_segmenter("deeplab-resnet50"), DeepLabLite)
        assert create_segmenter("deeplab-resnet101").backbone_name == "resnet-101"
        with pytest.raises(ValueError):
            create_segmenter("segformer")
        with pytest.raises(ValueError):
            DeepLabLite(backbone="resnet-18")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def data(self):
        ds = make_segmentation_dataset(n=24, size=32, seed=0, native_scale=1.0)
        x = ds.images.astype(np.float64).transpose(0, 3, 1, 2) / 255.0 - 0.5
        return x, ds.labels

    def test_unet_learns(self, data):
        x, y = data
        model = UNetLite(num_classes=4, width=6, seed=0)
        hist = train_segmenter(model, x, y,
                               SegTrainConfig(epochs=8, batch_size=8, lr=5e-3))
        assert hist[-1] < hist[0]
        miou = evaluate_segmenter(model, x, y, 4)
        # Sky/road bands alone give a strong baseline; must beat random (25)
        assert miou > 40.0

    def test_deeplab_learns(self, data):
        x, y = data
        model = DeepLabLite(num_classes=4, width=8, seed=0)
        hist = train_segmenter(model, x, y,
                               SegTrainConfig(epochs=8, batch_size=8, lr=5e-3))
        miou = evaluate_segmenter(model, x, y, 4)
        assert miou > 40.0

    def test_upsample_flip_moves_miou(self, data):
        x, y = data
        model = UNetLite(num_classes=4, width=6, seed=0)
        train_segmenter(model, x, y, SegTrainConfig(epochs=6, batch_size=8))
        base = evaluate_segmenter(model, x, y, 4)
        model.set_upsample_mode("bilinear")
        flipped = evaluate_segmenter(model, x, y, 4)
        assert base != flipped
